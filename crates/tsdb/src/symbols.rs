//! String interning for series keys, with reference-counted lifecycle.
//!
//! Every metric name, label key and label value stored by the database is
//! interned exactly once.  A series key then becomes a small
//! `(SymbolId, [(SymbolId, SymbolId)])` tuple instead of an owned
//! `(String, Labels)` pair, so key comparisons are integer comparisons and a
//! ten-thousand-series database with three label keys shared by every series
//! stores each key string once, not ten thousand times.
//!
//! Interned strings are handed out as `Arc<str>` so read paths (snapshots,
//! query results) can share them without copying.
//!
//! # Lifecycle
//!
//! Unlike the original append-only interner, the table reference-counts every
//! binding: series creation [`SymbolTable::acquire`]s each symbol its key
//! uses, and `drop_series`/retention eviction [`SymbolTable::release`]s them.
//! A binding whose refcount reaches zero is not freed immediately — it joins
//! a cooling queue and becomes reclaimable only after **two** durable WAL
//! commits have passed ([`SymbolTable::commit_durable`]).  That cooling window
//! guarantees the shard-log record that performed the release is itself
//! durable before the slot can be freed, so replay can never observe a reused
//! id without also observing the drop that made the reuse legal.
//!
//! [`SymbolTable::sweep`] (called at meta-log rotation, so segment snapshots
//! stay self-consistent) frees matured zero-ref slots: the string is dropped,
//! the slot joins a free list, the slot's generation is bumped (mirroring the
//! `SeriesHandle` generation discipline) and the table-wide epoch advances.
//! The generation check means a stale cooling-queue entry — or any other
//! holder of a pre-free id — can never free or resolve a slot that has since
//! been rebound to a different string.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Estimated heap overhead per interned string beyond its byte length: the
/// `Arc` header, the two map/slot pointers that share it, and the hash-map
/// entry.  Used for incremental `symbol_bytes` accounting; an estimate in the
/// same spirit as `StorageStats::resident_bytes`.
const SLOT_OVERHEAD_BYTES: u64 = 64;

/// First character of the placeholder strings WAL replay binds to symbol
/// ids whose real binding was legitimately swept before the crash (see
/// `resolve_or_hole` in the storage layer).  A control character keeps the
/// namespace disjoint from every legal metric and label string, which is
/// what lets [`SymbolTable::finish_recovery`] purge leftovers by prefix.
pub(crate) const REPLAY_HOLE_MARKER: char = '\u{1}';

/// Commits a zero-ref binding must cool for before it may be swept.  Two
/// boundaries, not one: a release staged under the shard lock can race an
/// in-flight flush whose shard drain already passed, landing the releasing
/// record in the *next* flush — the second boundary covers that flush.
const COOLING_COMMITS: u64 = 2;

/// Identifier of one interned string inside a [`SymbolTable`].
///
/// Two *live* symbols compare equal if and only if the strings they intern
/// are equal, so label matching on the query path degenerates to `u32`
/// comparisons.  (A freed-and-reused id names a different string, but the
/// refcount lifecycle guarantees no live holder survives a free.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct SymbolId(u32);

impl SymbolId {
    /// The raw table index, for WAL serialisation.
    pub(crate) fn as_u32(self) -> u32 {
        self.0
    }

    /// Rebuilds an id from its WAL-serialised index.  The caller validates it
    /// against the table (see [`SymbolTable::resolve`]) before use.
    pub(crate) fn from_u32(raw: u32) -> Self {
        Self(raw)
    }
}

/// One interner slot.  `string == None` means the slot is free (listed in
/// `SymbolTable::free`); `generation` counts how many times the slot has been
/// rebound, so stale references to a previous occupant can be detected.
#[derive(Debug, Default)]
struct Slot {
    string: Option<Arc<str>>,
    refs: u32,
    generation: u32,
}

/// A zero-ref binding waiting out its cooling window before it may be swept.
#[derive(Debug)]
struct Cooling {
    /// Value of `commits` when the refcount hit zero.
    since_commit: u64,
    slot: u32,
    /// Generation of the slot at release time; a mismatch at sweep means the
    /// slot was already freed and rebound — the entry is stale and ignored.
    generation: u32,
}

/// The interner: deduplicated refcounted strings, addressable by
/// [`SymbolId`] in O(1) and by string content through a hash lookup.
#[derive(Debug, Default)]
pub(crate) struct SymbolTable {
    slots: Vec<Slot>,
    ids: HashMap<Arc<str>, u32>,
    /// Slot indices whose `string` is `None`, reusable by `intern`.
    free: Vec<u32>,
    /// Zero-ref bindings cooling toward sweep eligibility, oldest first.
    cooling: VecDeque<Cooling>,
    /// Slot indices bound (interned or rebound) since the last WAL capture;
    /// drained by [`SymbolTable::take_dirty_bindings`].
    dirty: Vec<u32>,
    /// Durable WAL commits observed, advanced by
    /// [`SymbolTable::commit_durable`].
    commits: u64,
    /// Bumped once per sweep that frees at least one slot; recorded in the
    /// meta-log snapshot at rotation.
    epoch: u64,
    /// Estimated heap bytes held by live bindings, maintained incrementally.
    bytes: u64,
    /// Number of bound (live) slots.
    live: usize,
}

impl SymbolTable {
    fn slot(&self, id: SymbolId) -> Option<&Slot> {
        self.slots.get(id.0 as usize)
    }

    fn slot_mut(&mut self, id: SymbolId) -> Option<&mut Slot> {
        self.slots.get_mut(id.0 as usize)
    }

    /// Looks up the symbol for `s` without interning it.  Allocation-free.
    pub(crate) fn get(&self, s: &str) -> Option<SymbolId> {
        self.ids.get(s).copied().map(SymbolId)
    }

    /// Interns `s`, returning the existing symbol when already present.
    /// A fresh binding reuses a swept slot when one is free (bumping its
    /// generation) and is recorded as dirty for the next WAL symbol delta.
    ///
    /// Interning does **not** take a reference; callers that store the id
    /// pair it with [`SymbolTable::acquire`] (or use
    /// [`SymbolTable::intern_acquire`]).
    pub(crate) fn intern(&mut self, s: &str) -> SymbolId {
        if let Some(idx) = self.ids.get(s) {
            return SymbolId(*idx);
        }
        let string: Arc<str> = Arc::from(s);
        let idx = match self.free.pop() {
            Some(idx) => {
                if let Some(slot) = self.slots.get_mut(idx as usize) {
                    slot.string = Some(Arc::clone(&string));
                    slot.refs = 0;
                    slot.generation = slot.generation.wrapping_add(1);
                }
                idx
            }
            None => {
                // teemon-verify: allow(no-unwrap, no-panic): 2^32 distinct live strings exceeds addressable memory.
                let idx = u32::try_from(self.slots.len()).expect("fewer than 2^32 symbols");
                self.slots.push(Slot { string: Some(Arc::clone(&string)), refs: 0, generation: 0 });
                idx
            }
        };
        self.bytes += string.len() as u64 + SLOT_OVERHEAD_BYTES;
        self.live += 1;
        self.ids.insert(string, idx);
        self.dirty.push(idx);
        SymbolId(idx)
    }

    /// Interns `s`, takes one reference, and returns the shared string —
    /// the one-stop call for series creation.
    pub(crate) fn intern_acquire(&mut self, s: &str) -> (SymbolId, Arc<str>) {
        let id = self.intern(s);
        self.acquire(id);
        let string = self
            .slot(id)
            .and_then(|slot| slot.string.as_ref())
            .map(Arc::clone)
            .unwrap_or_else(|| Arc::from(s));
        (id, string)
    }

    /// Takes one reference on `id`.  Ignores unbound ids (callers only
    /// acquire ids they just interned or replayed).
    pub(crate) fn acquire(&mut self, id: SymbolId) {
        if let Some(slot) = self.slot_mut(id) {
            if slot.string.is_some() {
                slot.refs = slot.refs.saturating_add(1);
            }
        }
    }

    /// Drops one reference on `id`.  A refcount reaching zero parks the
    /// binding in the cooling queue; it stays resolvable (and resurrectable
    /// by a same-string `intern`) until [`SymbolTable::sweep`] frees it.
    pub(crate) fn release(&mut self, id: SymbolId) {
        let commits = self.commits;
        let mut cooled: Option<Cooling> = None;
        if let Some(slot) = self.slot_mut(id) {
            if slot.string.is_some() && slot.refs > 0 {
                slot.refs -= 1;
                if slot.refs == 0 {
                    cooled = Some(Cooling {
                        since_commit: commits,
                        slot: id.0,
                        generation: slot.generation,
                    });
                }
            }
        }
        if let Some(entry) = cooled {
            self.cooling.push_back(entry);
        }
    }

    /// The interned string behind `id`, if the slot is live.  Bounds- and
    /// liveness-checked: an id from disk (WAL replay) or a stale holder gets
    /// `None`, never a different slot's string.
    pub(crate) fn resolve(&self, id: SymbolId) -> Option<&Arc<str>> {
        self.slot(id).and_then(|slot| slot.string.as_ref())
    }

    /// Records one durable WAL commit, aging the cooling queue.
    pub(crate) fn commit_durable(&mut self) {
        self.commits = self.commits.saturating_add(1);
    }

    /// Frees every cooled zero-ref binding, returning how many were freed.
    ///
    /// Called at meta-log rotation (after a durable commit), so freed slots
    /// never disappear out from under an unflushed segment snapshot.  A slot
    /// is freed only if its cooling entry matured ([`COOLING_COMMITS`] durable
    /// commits), its generation still matches (it was not already freed and
    /// rebound) and its refcount is still zero (it was not resurrected by a
    /// same-string re-intern).
    pub(crate) fn sweep(&mut self) -> usize {
        let mut freed = 0;
        while let Some(front) = self.cooling.front() {
            if front.since_commit + COOLING_COMMITS > self.commits {
                break;
            }
            // teemon-verify: allow(no-unwrap): front() above proved non-empty.
            let entry = self.cooling.pop_front().expect("cooling front checked");
            let mut released: Option<Arc<str>> = None;
            if let Some(slot) = self.slots.get_mut(entry.slot as usize) {
                if slot.generation == entry.generation && slot.refs == 0 {
                    released = slot.string.take();
                }
            }
            let Some(string) = released else { continue };
            self.bytes = self.bytes.saturating_sub(string.len() as u64 + SLOT_OVERHEAD_BYTES);
            self.live = self.live.saturating_sub(1);
            self.ids.remove(&string);
            self.free.push(entry.slot);
            freed += 1;
        }
        if freed > 0 {
            self.epoch = self.epoch.saturating_add(1);
        }
        freed
    }

    /// Drains the bindings recorded since the last capture, as
    /// `(raw id, string)` pairs for the WAL symbol delta.  The caller writes
    /// them before the commit record of the round that references them; on a
    /// failed meta write the loss is moot — meta failure is sticky.
    pub(crate) fn take_dirty_bindings(&mut self) -> Vec<(u32, Arc<str>)> {
        let dirty = std::mem::take(&mut self.dirty);
        dirty
            .into_iter()
            .filter_map(|idx| {
                let slot = self.slots.get(idx as usize)?;
                Some((idx, Arc::clone(slot.string.as_ref()?)))
            })
            .collect()
    }

    /// Every live binding, for the sparse meta-log rotation snapshot.
    /// Rotation clears the dirty list afterwards (the snapshot subsumes it)
    /// via [`SymbolTable::clear_dirty`].
    pub(crate) fn live_bindings(&self) -> Vec<(u32, Arc<str>)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let string = Arc::clone(slot.string.as_ref()?);
                Some((idx as u32, string))
            })
            .collect()
    }

    /// Forgets pending deltas after a rotation snapshot captured every live
    /// binding.
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Installs a recovered binding at an exact slot, growing the table as
    /// needed.  Later installs for the same slot win (WAL file order), which
    /// makes the snapshot/delta overlap of an interrupted rotation
    /// idempotent.  Recovered bindings are durable by definition, so they are
    /// *not* marked dirty.
    pub(crate) fn install_binding(&mut self, raw: u32, s: &str) {
        let idx = raw as usize;
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, Slot::default);
        }
        let Some(slot) = self.slots.get_mut(idx) else {
            return;
        };
        if let Some(old) = slot.string.take() {
            self.bytes = self.bytes.saturating_sub(old.len() as u64 + SLOT_OVERHEAD_BYTES);
            self.live = self.live.saturating_sub(1);
            self.ids.remove(&old);
        }
        let string: Arc<str> = Arc::from(s);
        slot.string = Some(Arc::clone(&string));
        slot.refs = 0;
        self.bytes += string.len() as u64 + SLOT_OVERHEAD_BYTES;
        self.live += 1;
        self.ids.insert(string, raw);
    }

    /// Restores the sweep epoch recorded in a meta-log snapshot.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Finishes recovery: unoccupied slots join the free list and recovered
    /// bindings that ended replay unreferenced (their series were dropped
    /// before the crash) enter the cooling queue so a later sweep reclaims
    /// them instead of leaking across restarts.
    ///
    /// Unreferenced bindings carrying the [`REPLAY_HOLE_MARKER`] are freed
    /// outright instead of cooled: they are placeholders replay installed so
    /// a series record referencing a legitimately swept symbol could be
    /// materialised and then dropped — no acked state ever held them, and
    /// cooling one would let it leak into the next rotation snapshot.
    pub(crate) fn finish_recovery(&mut self) {
        self.free.clear();
        self.cooling.clear();
        for idx in 0..self.slots.len() {
            let Some(slot) = self.slots.get_mut(idx) else { break };
            let idx = idx as u32;
            let Some(string) = &slot.string else {
                self.free.push(idx);
                continue;
            };
            if slot.refs > 0 {
                continue;
            }
            if string.starts_with(REPLAY_HOLE_MARKER) {
                // teemon-verify: allow(no-unwrap): starts_with above proved the slot bound.
                let string = slot.string.take().expect("bound slot checked");
                self.bytes = self.bytes.saturating_sub(string.len() as u64 + SLOT_OVERHEAD_BYTES);
                self.live = self.live.saturating_sub(1);
                self.ids.remove(&string);
                self.free.push(idx);
            } else {
                self.cooling.push_back(Cooling {
                    since_commit: self.commits,
                    slot: idx,
                    generation: slot.generation,
                });
            }
        }
    }

    /// Number of live (bound) symbols.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Estimated heap bytes held by live bindings.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Sweep epoch: how many rotations have freed at least one symbol.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resolve_str(table: &SymbolTable, id: SymbolId) -> &str {
        table.resolve(id).map(|s| &**s).unwrap_or("<unbound>")
    }

    #[test]
    fn interning_deduplicates() {
        let mut table = SymbolTable::default();
        let a = table.intern("node");
        let b = table.intern("syscall");
        assert_ne!(a, b);
        assert_eq!(table.intern("node"), a);
        assert_eq!(table.len(), 2);
        assert_eq!(resolve_str(&table, a), "node");
        assert_eq!(table.get("syscall"), Some(b));
        assert_eq!(table.get("missing"), None);
    }

    #[test]
    fn resolved_strings_are_shared() {
        let mut table = SymbolTable::default();
        let (id, first) = table.intern_acquire("teemon_syscalls_total");
        let (again, second) = table.intern_acquire("teemon_syscalls_total");
        assert_eq!(id, again);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn release_needs_two_commits_before_sweep() {
        let mut table = SymbolTable::default();
        let (id, _s) = table.intern_acquire("ephemeral");
        table.release(id);
        assert_eq!(table.sweep(), 0, "uncooled binding must not be swept");
        table.commit_durable();
        assert_eq!(table.sweep(), 0, "one commit is not enough");
        table.commit_durable();
        assert_eq!(table.sweep(), 1);
        assert_eq!(table.resolve(id), None);
        assert_eq!(table.len(), 0);
        assert_eq!(table.epoch(), 1);
    }

    #[test]
    fn reuse_bumps_generation_and_stale_entries_are_inert() {
        let mut table = SymbolTable::default();
        let (old, _s) = table.intern_acquire("short-lived");
        table.release(old); // entry A, matures after two commits
        table.commit_durable();
        // Resurrect and release again: entry B matures one commit after A.
        let (again, _t) = table.intern_acquire("short-lived");
        assert_eq!(again, old);
        table.release(again);
        table.commit_durable();
        // Entry A matured and the refcount is back to zero: the slot frees.
        assert_eq!(table.sweep(), 1);

        // Reuse the freed slot for a different string (generation bump).
        let (new_id, _u) = table.intern_acquire("replacement");
        assert_eq!(new_id.as_u32(), old.as_u32(), "slot reused off the free list");
        assert_eq!(resolve_str(&table, new_id), "replacement");

        // Entry B matures now, but its generation predates the rebind — it
        // must not free the new occupant.
        table.commit_durable();
        assert_eq!(table.sweep(), 0, "generation mismatch keeps the rebind alive");
        assert_eq!(resolve_str(&table, new_id), "replacement");
    }

    #[test]
    fn resurrection_by_reintern_cancels_sweep() {
        let mut table = SymbolTable::default();
        let (id, _s) = table.intern_acquire("phoenix");
        table.release(id);
        table.commit_durable();
        // Re-interning the same string before the sweep resurrects the slot.
        let (again, _t) = table.intern_acquire("phoenix");
        assert_eq!(id, again);
        table.commit_durable();
        assert_eq!(table.sweep(), 0, "live refcount blocks the matured entry");
        assert_eq!(resolve_str(&table, id), "phoenix");
    }

    #[test]
    fn bytes_accounting_returns_to_baseline() {
        let mut table = SymbolTable::default();
        assert_eq!(table.bytes(), 0);
        let (a, _sa) = table.intern_acquire("alpha");
        let (b, _sb) = table.intern_acquire("beta");
        let peak = table.bytes();
        assert!(peak > 0);
        table.release(a);
        table.release(b);
        table.commit_durable();
        table.commit_durable();
        assert_eq!(table.sweep(), 2);
        assert_eq!(table.bytes(), 0);
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn dirty_capture_and_snapshot_round_trip() {
        let mut table = SymbolTable::default();
        let (a, _sa) = table.intern_acquire("one");
        let (_b, _sb) = table.intern_acquire("two");
        let delta = table.take_dirty_bindings();
        assert_eq!(delta.len(), 2);
        assert!(table.take_dirty_bindings().is_empty());

        let mut restored = SymbolTable::default();
        for (raw, s) in table.live_bindings() {
            restored.install_binding(raw, &s);
        }
        restored.finish_recovery();
        assert_eq!(resolve_str(&restored, a), "one");
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.bytes(), table.bytes());
    }
}
