//! The pull-based scrape loop.
//!
//! The paper argues for pull over push (§4, "Push vs. Pull in Monitoring"):
//! the aggregator scrapes each exporter's metrics endpoint on an interval,
//! which smooths bursts, centralises ingestion and doubles as a health check
//! ("the monitoring service also acts as a health checker and can alert in
//! case the monitoring target is unreachable").  [`Scraper`] implements that
//! loop against in-process [`MetricsEndpoint`]s.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_metrics::{exposition, Labels};

use crate::storage::TimeSeriesDb;

/// Something that can be scraped: returns an OpenMetrics text document.
///
/// Exporters implement this; a real deployment would put an HTTP server in
/// front, but the contract — "GET /metrics returns the current exposition" —
/// is the same.
pub trait MetricsEndpoint: Send + Sync {
    /// Renders the current metrics as exposition text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable error when the endpoint is unreachable or
    /// failing, which the scraper records as `up == 0`.
    fn scrape(&self) -> Result<String, String>;
}

impl<F> MetricsEndpoint for F
where
    F: Fn() -> Result<String, String> + Send + Sync,
{
    fn scrape(&self) -> Result<String, String> {
        (self)()
    }
}

/// Configuration of one scrape target.
#[derive(Clone, Serialize, Deserialize)]
pub struct ScrapeTargetConfig {
    /// Job name (`sgx_exporter`, `ebpf_exporter`, `node_exporter`, `cadvisor`).
    pub job: String,
    /// Instance identifier, typically `<node>:<port>`.
    pub instance: String,
    /// Additional labels attached to every sample from this target (e.g. the
    /// Kubernetes node name).
    #[serde(default)]
    pub extra_labels: BTreeMap<String, String>,
}

impl ScrapeTargetConfig {
    /// Creates a target configuration.
    pub fn new(job: impl Into<String>, instance: impl Into<String>) -> Self {
        Self { job: job.into(), instance: instance.into(), extra_labels: BTreeMap::new() }
    }

    /// Adds an extra label.
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_labels.insert(key.into(), value.into());
        self
    }

    fn target_labels(&self) -> Labels {
        let mut labels = Labels::from_pairs([
            ("job", self.job.clone()),
            ("instance", self.instance.clone()),
        ]);
        for (k, v) in &self.extra_labels {
            labels.insert(k.clone(), v.clone());
        }
        labels
    }
}

/// Result of scraping one target once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrapeOutcome {
    /// Job of the target.
    pub job: String,
    /// Instance of the target.
    pub instance: String,
    /// `true` when the scrape succeeded.
    pub up: bool,
    /// Samples ingested.
    pub samples: u64,
    /// Parse or transport error, when failed.
    pub error: Option<String>,
}

struct Target {
    config: ScrapeTargetConfig,
    endpoint: Arc<dyn MetricsEndpoint>,
}

/// The scrape manager: a set of targets feeding one [`TimeSeriesDb`].
#[derive(Clone)]
pub struct Scraper {
    db: TimeSeriesDb,
    targets: Arc<RwLock<Vec<Target>>>,
    scrape_interval_ms: u64,
}

impl Scraper {
    /// Default scrape interval: the paper queries exporters every 5 seconds.
    pub const DEFAULT_INTERVAL_MS: u64 = 5_000;

    /// Creates a scraper feeding `db`.
    pub fn new(db: TimeSeriesDb) -> Self {
        Self { db, targets: Arc::new(RwLock::new(Vec::new())), scrape_interval_ms: Self::DEFAULT_INTERVAL_MS }
    }

    /// Sets the scrape interval in milliseconds.
    #[must_use]
    pub fn with_interval_ms(mut self, interval_ms: u64) -> Self {
        self.scrape_interval_ms = interval_ms.max(1);
        self
    }

    /// The configured scrape interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.scrape_interval_ms
    }

    /// The database being fed.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// Registers a scrape target.
    pub fn add_target(&self, config: ScrapeTargetConfig, endpoint: Arc<dyn MetricsEndpoint>) {
        self.targets.write().push(Target { config, endpoint });
    }

    /// Removes every target whose instance equals `instance` (e.g. a node that
    /// left the cluster).  Returns how many targets were removed.
    pub fn remove_instance(&self, instance: &str) -> usize {
        let mut targets = self.targets.write();
        let before = targets.len();
        targets.retain(|t| t.config.instance != instance);
        before - targets.len()
    }

    /// Number of registered targets.
    pub fn target_count(&self) -> usize {
        self.targets.read().len()
    }

    /// Scrapes every target once, stamping samples with `now_ms`.
    pub fn scrape_once(&self, now_ms: u64) -> Vec<ScrapeOutcome> {
        let targets = self.targets.read();
        let mut outcomes = Vec::with_capacity(targets.len());
        for target in targets.iter() {
            outcomes.push(self.scrape_target(target, now_ms));
        }
        outcomes
    }

    fn scrape_target(&self, target: &Target, now_ms: u64) -> ScrapeOutcome {
        let base_labels = target.config.target_labels();
        let up_labels = base_labels.clone();
        match target.endpoint.scrape().and_then(|text| {
            exposition::parse_text(&text).map_err(|e| e.to_string())
        }) {
            Ok(parsed) => {
                let mut ingested = 0;
                for sample in &parsed.samples {
                    let labels = sample.labels.merged(&base_labels);
                    let ts = sample.timestamp_ms.unwrap_or(now_ms);
                    if self.db.append(&sample.name, &labels, ts, sample.value) {
                        ingested += 1;
                    }
                }
                self.db.append("up", &up_labels, now_ms, 1.0);
                self.db.append(
                    "scrape_samples_scraped",
                    &up_labels,
                    now_ms,
                    parsed.samples.len() as f64,
                );
                ScrapeOutcome {
                    job: target.config.job.clone(),
                    instance: target.config.instance.clone(),
                    up: true,
                    samples: ingested,
                    error: None,
                }
            }
            Err(error) => {
                self.db.append("up", &up_labels, now_ms, 0.0);
                ScrapeOutcome {
                    job: target.config.job.clone(),
                    instance: target.config.instance.clone(),
                    up: false,
                    samples: 0,
                    error: Some(error),
                }
            }
        }
    }

    /// Instances whose most recent `up` sample is 0 at `now_ms` — the health
    /// checker view.
    pub fn unhealthy_instances(&self, now_ms: u64) -> Vec<String> {
        use crate::query::Selector;
        self.db
            .query_instant(&Selector::metric("up"), now_ms)
            .into_iter()
            .filter(|r| r.points.last().map(|(_, v)| *v == 0.0).unwrap_or(false))
            .filter_map(|r| r.labels.get("instance").map(str::to_string))
            .collect()
    }
}

impl std::fmt::Debug for Scraper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scraper")
            .field("targets", &self.target_count())
            .field("interval_ms", &self.scrape_interval_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selector;
    use teemon_metrics::Registry;

    fn registry_endpoint(registry: Registry) -> Arc<dyn MetricsEndpoint> {
        Arc::new(move || Ok(exposition::encode_text(&registry.gather())))
    }

    #[test]
    fn scrape_ingests_samples_with_target_labels() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        registry.gauge_family("sgx_nr_free_pages", "free pages").default_instance().set(24_000.0);
        scraper.add_target(
            ScrapeTargetConfig::new("sgx_exporter", "node-1:9090").with_label("node", "node-1"),
            registry_endpoint(registry.clone()),
        );

        let outcomes = scraper.scrape_once(5_000);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].up);
        assert_eq!(outcomes[0].samples, 1);

        let results = db.query_instant(&Selector::metric("sgx_nr_free_pages"), 10_000);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].labels.get("job"), Some("sgx_exporter"));
        assert_eq!(results[0].labels.get("node"), Some("node-1"));
        assert_eq!(results[0].points[0].1, 24_000.0);

        // The up meta-metric is recorded too.
        let up = db.query_instant(&Selector::metric("up"), 10_000);
        assert_eq!(up[0].points[0].1, 1.0);
        assert!(scraper.unhealthy_instances(10_000).is_empty());
    }

    #[test]
    fn repeated_scrapes_build_series() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone()).with_interval_ms(5_000);
        let registry = Registry::new();
        let counter = registry.counter_family("events_total", "events");
        scraper.add_target(
            ScrapeTargetConfig::new("ebpf_exporter", "node-1:9435"),
            registry_endpoint(registry.clone()),
        );
        for round in 0..5u64 {
            counter.default_instance().inc_by(10.0);
            scraper.scrape_once(round * scraper.interval_ms());
        }
        let results = db.query_range(&Selector::metric("events_total"), 0, u64::MAX);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].points.len(), 5);
        let r = crate::query::rate(&results[0].points).unwrap();
        assert!((r - 2.0).abs() < 1e-9, "10 events per 5s = 2/s, got {r}");
    }

    #[test]
    fn failing_target_marks_up_zero() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        scraper.add_target(
            ScrapeTargetConfig::new("sgx_exporter", "node-2:9090"),
            Arc::new(|| Err("connection refused".to_string())),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(!outcomes[0].up);
        assert!(outcomes[0].error.as_deref().unwrap().contains("refused"));
        assert_eq!(scraper.unhealthy_instances(1_000), vec!["node-2:9090".to_string()]);
    }

    #[test]
    fn malformed_exposition_counts_as_failure() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        scraper.add_target(
            ScrapeTargetConfig::new("broken", "node-3:1"),
            Arc::new(|| Ok("this is { not valid".to_string())),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(!outcomes[0].up);
        assert!(outcomes[0].error.is_some());
    }

    #[test]
    fn targets_can_be_removed() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db);
        let registry = Registry::new();
        scraper.add_target(
            ScrapeTargetConfig::new("node_exporter", "node-1:9100"),
            registry_endpoint(registry.clone()),
        );
        scraper.add_target(
            ScrapeTargetConfig::new("sgx_exporter", "node-1:9090"),
            registry_endpoint(registry),
        );
        assert_eq!(scraper.target_count(), 2);
        assert_eq!(scraper.remove_instance("node-1:9100"), 1);
        assert_eq!(scraper.target_count(), 1);
        assert_eq!(scraper.remove_instance("unknown"), 0);
    }
}
