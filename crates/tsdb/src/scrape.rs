//! The pull-based scrape loop.
//!
//! The paper argues for pull over push (§4, "Push vs. Pull in Monitoring"):
//! the aggregator scrapes each exporter's metrics endpoint on an interval,
//! which smooths bursts, centralises ingestion and doubles as a health check
//! ("the monitoring service also acts as a health checker and can alert in
//! case the monitoring target is unreachable").  [`Scraper`] implements that
//! loop against in-process endpoints.
//!
//! Unlike the paper's deployment — where exporters and Prometheus are
//! separate processes and every scrape round-trips through OpenMetrics text —
//! the default path here is **typed**: a [`MetricsEndpoint`] returns owned
//! [`FamilySnapshot`]s and the scraper appends their samples straight into
//! the [`TimeSeriesDb`].  The text wire format remains available at the
//! edges: [`TextEndpoint`] renders any [`Collector`] as exposition text for
//! external consumers (and can itself be scraped, paying the encode/parse
//! round-trip deliberately), while [`Scraper::add_text_source`] ingests raw
//! exposition documents from targets that only speak text.
//!
//! # The ingest fast lane
//!
//! A scrape target emits the *same* series set round after round, so paying
//! key hashing, label merging, symbol interning and an index lookup per
//! sample per round is almost pure waste.  The scraper therefore keeps a
//! **per-target scrape cache** (the default, [`IngestMode::FastLane`]): one
//! entry per wire sample, holding the sample's structural identity
//! ([`teemon_metrics::SeriesKey`]), the target-label-merged key and a
//! resolved [`crate::SeriesHandle`].  A steady-state round walks the
//! borrowed snapshots positionally, verifies identity with a cheap
//! structural hash plus real equality, and hands the whole round to
//! [`TimeSeriesDb::append_batch`], which takes each shard lock once per
//! round.  No allocation (for plain counter/gauge/untyped points —
//! histogram and summary families allocate their `le`/`quantile` label
//! expansions in the snapshot walk itself), no interning, no index
//! traffic.  Churn (new,
//! vanished or reordered series) flips the round into a repair pass that
//! reuses every surviving entry's handle and resolves only what actually
//! changed; stale handles (series evicted by retention or dropped) are
//! re-resolved by key, so the fast lane can miss a beat but never writes to
//! the wrong series.  [`IngestMode::PerSample`] keeps the pre-cache path —
//! merge + [`TimeSeriesDb::append`] per sample — as the correctness oracle
//! and bench baseline.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, Mutex, RwLock};
use serde::{Deserialize, Serialize};
use teemon_metrics::{
    exposition, identity, CollectError, Collector, FamilySnapshot, Labels, MetricError, SeriesKey,
};
use teemon_obs::{probes, SelfSnapshot, Stopwatch};

use crate::storage::{HandleAppend, SeriesHandle, TimeSeriesDb};

/// Why scraping one target failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScrapeError {
    /// The target was unreachable or refused to produce metrics.
    Unreachable(String),
    /// The target's collector failed.
    Collect(CollectError),
    /// A text target produced a malformed exposition document.
    Parse(MetricError),
}

impl std::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScrapeError::Unreachable(reason) => write!(f, "target unreachable: {reason}"),
            ScrapeError::Collect(err) => write!(f, "{err}"),
            ScrapeError::Parse(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ScrapeError {}

impl From<CollectError> for ScrapeError {
    fn from(err: CollectError) -> Self {
        ScrapeError::Collect(err)
    }
}

impl From<MetricError> for ScrapeError {
    fn from(err: MetricError) -> Self {
        ScrapeError::Parse(err)
    }
}

/// Something that can be scraped: returns the current typed family snapshots.
///
/// This is the in-process scrape contract.  Every [`Collector`] can be turned
/// into an endpoint with [`CollectorEndpoint`] (or [`Scraper::add_collector`]);
/// closures returning snapshots work directly.
pub trait MetricsEndpoint: Send + Sync {
    /// Produces the current family snapshots.
    ///
    /// # Errors
    ///
    /// Returns a [`ScrapeError`] when the endpoint is unreachable or failing,
    /// which the scraper records as `up == 0`.
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError>;

    /// Hands the current snapshots to `visit` by reference instead of
    /// returning them by value.  The scraper ingests through this method, so
    /// an endpoint that maintains its snapshots in place (updating values
    /// without reallocating points) can override it and make a steady-state
    /// scrape round allocation-free end to end; the default simply wraps
    /// [`MetricsEndpoint::scrape`] and visits the freshly collected
    /// families.
    ///
    /// Contract: implementations must invoke `visit` **exactly once** on
    /// success, passing the complete round (chunked delivery would make the
    /// scraper's per-round sample accounting and scrape cache see partial
    /// rounds), and must not scrape the same target from *inside* `visit`
    /// (the scraper holds the target's ingest-cache lock while `visit`
    /// runs; collecting before calling `visit` — as the default does — is
    /// always safe).
    ///
    /// # Errors
    ///
    /// Returns a [`ScrapeError`] when the endpoint is unreachable or
    /// failing; `visit` is not called in that case.
    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let families = self.scrape()?;
        visit(&families);
        Ok(())
    }
}

impl<F> MetricsEndpoint for F
where
    F: Fn() -> Result<Vec<FamilySnapshot>, ScrapeError> + Send + Sync,
{
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        (self)()
    }
}

/// Typed endpoint over any [`Collector`]: refresh, then hand over snapshots.
/// No serialisation of any kind is involved.
pub struct CollectorEndpoint(Arc<dyn Collector>);

impl CollectorEndpoint {
    /// Wraps a collector.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Self(collector)
    }
}

impl MetricsEndpoint for CollectorEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        self.0.refresh();
        Ok(self.0.collect()?)
    }
}

/// The outbound text edge: renders a [`Collector`] as an OpenMetrics text
/// document, the way an HTTP `/metrics` handler would serve it to an external
/// Prometheus.
///
/// `TextEndpoint` also implements [`MetricsEndpoint`] by encoding to text and
/// parsing the document back into snapshots — the full wire round-trip the
/// paper's deployment pays on every scrape.  The in-process pipeline never
/// needs this; it exists for interoperability tests and for measuring what
/// the typed path saves (see `teemon-bench`'s `micro` bench).
pub struct TextEndpoint(Arc<dyn Collector>);

impl TextEndpoint {
    /// Wraps a collector.
    pub fn new(collector: Arc<dyn Collector>) -> Self {
        Self(collector)
    }

    /// Renders the collector's current state as exposition text.
    ///
    /// # Errors
    ///
    /// Propagates the collector's [`CollectError`].
    pub fn render(&self) -> Result<String, CollectError> {
        exposition::render_collector(self.0.as_ref())
    }
}

impl MetricsEndpoint for TextEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        let text = self.render()?;
        Ok(exposition::parse_families(&text)?)
    }
}

/// A source of raw exposition text (an external process's `/metrics` output).
/// The inbound text edge: use [`Scraper::add_text_source`] to scrape it.
pub trait TextSource: Send + Sync {
    /// Fetches the current exposition document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable transport error when the target is down.
    fn fetch(&self) -> Result<String, String>;
}

impl<F> TextSource for F
where
    F: Fn() -> Result<String, String> + Send + Sync,
{
    fn fetch(&self) -> Result<String, String> {
        (self)()
    }
}

/// Endpoint adapter parsing a [`TextSource`]'s document into snapshots.
/// The document crossed a process (and possibly a network) boundary, so the
/// parse is bounded by [`exposition::ParseLimits::network`]: a document over
/// a limit fails the scrape with a typed [`ScrapeError::Parse`] carrying
/// [`MetricError::LimitExceeded`] — never a silent truncation that would
/// report a broken target as healthy.
struct TextSourceEndpoint(Arc<dyn TextSource>);

impl MetricsEndpoint for TextSourceEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        let text = self.0.fetch().map_err(ScrapeError::Unreachable)?;
        Ok(exposition::parse_families_bounded(&text, exposition::ParseLimits::network())?)
    }
}

/// The engine's own telemetry as an **in-place** scrape endpoint: a
/// [`teemon_obs::SelfSnapshot`] refreshed under a private lock on every
/// scrape, handed to the scraper by reference.  Point positions never move
/// between rounds, so the fast lane's positional cache verifies every time
/// and a warm self-scrape round is allocation-free like any other in-place
/// endpoint — the engine monitors itself at the same cost it monitors
/// everyone else.
///
/// Register it with [`Scraper::add_self_target`] (or `add_target` under a
/// custom config); for text exposition or registry composition use
/// [`teemon_obs::ObsCollector`] instead.
pub struct ObsEndpoint {
    snapshot: Mutex<SelfSnapshot>,
}

impl ObsEndpoint {
    /// Creates the endpoint (builds the initial probe snapshot).
    pub fn new() -> Self {
        Self { snapshot: Mutex::named(SelfSnapshot::new(), LockClass::new("scrape.self_snapshot")) }
    }
}

impl Default for ObsEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsEndpoint for ObsEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        let mut snapshot = self.snapshot.lock();
        snapshot.refresh();
        Ok(snapshot.families().to_vec())
    }

    fn scrape_visit(&self, visit: &mut dyn FnMut(&[FamilySnapshot])) -> Result<(), ScrapeError> {
        let mut snapshot = self.snapshot.lock();
        snapshot.refresh();
        visit(snapshot.families());
        Ok(())
    }
}

/// Configuration of one scrape target.
#[derive(Clone, Serialize, Deserialize)]
pub struct ScrapeTargetConfig {
    /// Job name (`sgx_exporter`, `ebpf_exporter`, `node_exporter`, `cadvisor`).
    pub job: String,
    /// Instance identifier, typically `<node>:<port>`.
    pub instance: String,
    /// Additional labels attached to every sample from this target (e.g. the
    /// Kubernetes node name).
    #[serde(default)]
    pub extra_labels: BTreeMap<String, String>,
    /// Per-target scrape interval in milliseconds; `None` follows the
    /// scraper's global interval.  Targets with a longer interval are skipped
    /// by [`Scraper::scrape_due`] until they are due again.
    #[serde(default)]
    pub interval_ms: Option<u64>,
    /// Cardinality budget: the most distinct series this target may hold in
    /// storage at once; `None` is unlimited.  Over-budget series are not
    /// created — their samples are counted into the
    /// `teemon_overflow_series_total` roll-up instead (see
    /// [`CardinalityBudgets`] for the per-job analogue and the admission
    /// rules).
    #[serde(default)]
    pub series_budget: Option<u64>,
}

impl ScrapeTargetConfig {
    /// Creates a target configuration.
    pub fn new(job: impl Into<String>, instance: impl Into<String>) -> Self {
        Self {
            job: job.into(),
            instance: instance.into(),
            extra_labels: BTreeMap::new(),
            interval_ms: None,
            series_budget: None,
        }
    }

    /// Caps how many distinct series this target may hold in storage (see
    /// [`ScrapeTargetConfig::series_budget`]).
    #[must_use]
    pub fn with_series_budget(mut self, budget: u64) -> Self {
        self.series_budget = Some(budget);
        self
    }

    /// Adds an extra label.
    #[must_use]
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra_labels.insert(key.into(), value.into());
        self
    }

    /// Sets a per-target scrape interval.
    #[must_use]
    pub fn with_interval_ms(mut self, interval_ms: u64) -> Self {
        self.interval_ms = Some(interval_ms.max(1));
        self
    }

    /// Builds the merged target label set (`job`, `instance`, extras).  The
    /// scraper calls this **once at registration** and reuses the result
    /// every round — not per scrape.
    fn target_labels(&self) -> Labels {
        let mut labels =
            Labels::from_pairs([("job", self.job.clone()), ("instance", self.instance.clone())]);
        for (k, v) in &self.extra_labels {
            labels.insert(k.clone(), v.clone());
        }
        labels
    }
}

/// Result of scraping one target once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrapeOutcome {
    /// Job of the target.
    pub job: String,
    /// Instance of the target.
    pub instance: String,
    /// `true` when the scrape succeeded.
    pub up: bool,
    /// Samples ingested.
    pub samples: u64,
    /// Scrape duration in seconds (also recorded as the
    /// `scrape_duration_seconds` meta-metric).  Measured from the monotonic
    /// clock by default; deterministic simulations opt into the sample-count
    /// model with [`Scraper::with_modelled_durations`] (see
    /// [`DurationMode`]).
    pub duration_seconds: f64,
    /// Collect, parse or transport error, when failed.
    pub error: Option<String>,
}

/// Shared per-**job** cardinality accounting, enforced at scrape-cache
/// repair time (the cold path — the warm positional round never touches it).
///
/// One instance is shared by every admission point that should draw from the
/// same pool: register it on a [`Scraper`] with [`Scraper::with_budgets`]
/// and on [`PushLane`]s with [`PushLane::with_budgets`].  A job with no
/// configured limit is unlimited.  The internal lock (`scrape.budgets`) is a
/// leaf: it is taken briefly at the start and end of a cache rebuild and is
/// never held across storage calls.
///
/// Admission is per *stored series*: when a target's cache repairs, its
/// series are admitted in snapshot order until either its own
/// [`ScrapeTargetConfig::series_budget`] or the job's remaining allowance is
/// exhausted; the rest become overflow entries — tracked by identity so the
/// warm round stays positional, but never created in storage.  Series that
/// vanish from the target release their admission at the next repair.
pub struct CardinalityBudgets {
    jobs: Mutex<HashMap<String, JobBudget>>,
}

#[derive(Default)]
struct JobBudget {
    limit: Option<u64>,
    used: u64,
}

impl CardinalityBudgets {
    /// Creates an empty budget table (every job unlimited until configured).
    pub fn new() -> Arc<Self> {
        Arc::new(Self { jobs: Mutex::named(HashMap::new(), LockClass::new("scrape.budgets")) })
    }

    /// Sets (or replaces) `job`'s series limit.
    pub fn set_job_limit(&self, job: impl Into<String>, limit: u64) {
        self.jobs.lock().entry(job.into()).or_default().limit = Some(limit);
    }

    /// The configured limit for `job`, if any.
    pub fn job_limit(&self, job: &str) -> Option<u64> {
        self.jobs.lock().get(job).and_then(|b| b.limit)
    }

    /// Series currently admitted under `job` across every admission point.
    pub fn job_used(&self, job: &str) -> u64 {
        self.jobs.lock().get(job).map(|b| b.used).unwrap_or(0)
    }

    /// Allowance for one admission point that currently holds `prior`
    /// admitted series and is about to recompute its set: the job limit
    /// minus everyone *else's* usage (`u64::MAX` when unlimited).
    fn begin(&self, job: &str, prior: u64) -> u64 {
        let jobs = self.jobs.lock();
        match jobs.get(job).and_then(|b| b.limit.map(|l| (l, b.used))) {
            Some((limit, used)) => limit.saturating_sub(used.saturating_sub(prior)),
            None => u64::MAX,
        }
    }

    /// Replaces an admission point's contribution: `prior` series released,
    /// `now` admitted.
    fn commit(&self, job: &str, prior: u64, now: u64) {
        let mut jobs = self.jobs.lock();
        let budget = jobs.entry(job.to_string()).or_default();
        budget.used = budget.used.saturating_sub(prior).saturating_add(now);
    }

    /// Releases an admission point's whole contribution (target removed,
    /// lane dropped).
    fn release(&self, job: &str, prior: u64) {
        if prior == 0 {
            return;
        }
        let mut jobs = self.jobs.lock();
        if let Some(budget) = jobs.get_mut(job) {
            budget.used = budget.used.saturating_sub(prior);
        }
    }
}

/// The admission rules one cache rebuild runs under: the target's own cap,
/// the job pool (when shared budgets are registered), and the job name the
/// pool is keyed by.
struct BudgetCtx<'a> {
    job: &'a str,
    target_limit: Option<u64>,
    shared: Option<&'a CardinalityBudgets>,
}

struct Target {
    config: ScrapeTargetConfig,
    endpoint: Arc<dyn MetricsEndpoint>,
    /// `job`/`instance`/extra labels, merged once at registration.
    base_labels: Labels,
    /// The per-target ingest cache of the fast lane.
    cache: Mutex<TargetCache>,
    /// Virtual time of the last scrape; `u64::MAX` = never scraped.
    last_scrape_ms: AtomicU64,
}

const NEVER: u64 = u64::MAX;

/// One cached wire sample of a target: the sample's structural identity as
/// the exporter emits it, the storage key (exporter labels merged with the
/// target labels) and the resolved series handle.
struct CacheEntry {
    key: SeriesKey,
    merged: Labels,
    handle: SeriesHandle,
    /// Whether this series fit its target/job cardinality budget at the last
    /// repair.  Unadmitted entries keep their wire identity (so the warm
    /// positional pass stays intact) but carry an unresolved handle, never
    /// reach the batch, and count as overflow instead.
    admitted: bool,
}

/// The per-target scrape cache: one [`CacheEntry`] per wire sample in
/// snapshot order, plus the reusable batch buffer handed to
/// [`TimeSeriesDb::append_batch`].  Steady state, the cache turns a scrape
/// round into: one structural hash + one equality check per sample, one
/// batch append.  Any churn — a series appearing, vanishing or moving —
/// fails the positional check and triggers [`TargetCache::rebuild`], which
/// reuses every surviving entry and resolves only what changed.
#[derive(Default)]
struct TargetCache {
    entries: Vec<CacheEntry>,
    batch: Vec<(SeriesHandle, u64, f64)>,
    /// Batch position → entry index.  Unadmitted entries are skipped when
    /// the batch fills, so batch position and entry index diverge as soon as
    /// a budget clips the target; stale-handle repair maps through this.
    batch_entry: Vec<u32>,
    /// Series currently admitted — this cache's contribution to its job's
    /// shared budget.
    admitted: u64,
    /// Cumulative overflow samples (matched the cache, rejected by budget)
    /// across the cache's lifetime — the `teemon_overflow_series_total`
    /// roll-up value.
    overflow_total: u64,
}

impl TargetCache {
    /// The fast positional pass: verifies every wire sample against the
    /// cached identity at its position and fills `batch` with
    /// handle-addressed samples.  Returns `false` — without touching storage
    /// — as soon as the round's shape deviates from the cache (new, vanished
    /// or reordered series).  Sets `scraped` to the number of wire samples
    /// seen and `overflow` to the matched-but-unadmitted samples the round's
    /// budget clipped.  Allocation-free apart from first-round `batch`
    /// growth.
    fn fill(
        &mut self,
        families: &[FamilySnapshot],
        now_ms: u64,
        scraped: &mut u64,
        overflow: &mut u64,
    ) -> bool {
        self.batch.clear();
        self.batch_entry.clear();
        let mut idx = 0usize;
        let mut matched = true;
        let mut clipped = 0u64;
        for family in families {
            family.for_each_sample(|name, labels, value, timestamp_ms| {
                let position = idx;
                idx += 1;
                if !matched {
                    return;
                }
                let hash = identity::series_hash(name, labels);
                match self.entries.get(position) {
                    Some(entry) if entry.key.matches(hash, name, labels) => {
                        if entry.admitted {
                            self.batch.push((entry.handle, timestamp_ms.unwrap_or(now_ms), value));
                            self.batch_entry.push(position as u32);
                        } else {
                            clipped += 1;
                        }
                    }
                    _ => matched = false,
                }
            });
        }
        *scraped = idx as u64;
        *overflow = clipped;
        matched && idx == self.entries.len()
    }

    /// The repair pass after churn: rebuilds the entry list in snapshot
    /// order, reusing the handle of every series that survived (validated
    /// against a generation snapshot, re-resolved when its shard moved on)
    /// and resolving only genuinely new series.  Entries whose series
    /// vanished from the snapshot are dropped with the old list.
    ///
    /// This is also the admission point of the cardinality defense: series
    /// are admitted in snapshot order until the target's own budget or the
    /// job's shared allowance runs out, and only admitted series ever touch
    /// [`TimeSeriesDb::resolve`] — an over-budget series is never created in
    /// storage.  The shared-budget lock is taken once before the walk (to
    /// read the allowance) and once after (to commit the new contribution),
    /// never across storage calls.
    fn rebuild(
        &mut self,
        families: &[FamilySnapshot],
        base_labels: &Labels,
        db: &TimeSeriesDb,
        budget: &BudgetCtx<'_>,
    ) {
        let prior = self.admitted;
        let allowance = match budget.shared {
            Some(shared) => shared.begin(budget.job, prior),
            None => u64::MAX,
        };
        let cap = budget.target_limit.unwrap_or(u64::MAX).min(allowance);
        let old = std::mem::take(&mut self.entries);
        let mut reuse: HashMap<u64, Vec<CacheEntry>> = HashMap::with_capacity(old.len());
        for entry in old {
            reuse.entry(entry.key.hash()).or_default().push(entry);
        }
        let generations = db.shard_generations();
        let mut admitted = 0u64;
        for family in families {
            family.for_each_sample(|name, labels, _, _| {
                let hash = identity::series_hash(name, labels);
                let reused = reuse.get_mut(&hash).and_then(|candidates| {
                    candidates
                        .iter()
                        .position(|e| e.key.matches(hash, name, labels))
                        .map(|at| candidates.swap_remove(at))
                });
                let admit = admitted < cap;
                let entry = match reused {
                    Some(mut entry) => {
                        entry.admitted = admit;
                        if admit {
                            if !db.handle_live_under(entry.handle, &generations) {
                                entry.handle = db.resolve(entry.key.name(), &entry.merged);
                            }
                        } else {
                            entry.handle = SeriesHandle::unresolved();
                        }
                        entry
                    }
                    None => {
                        let merged = labels.merged(base_labels);
                        let handle = if admit {
                            db.resolve(name, &merged)
                        } else {
                            SeriesHandle::unresolved()
                        };
                        CacheEntry {
                            key: SeriesKey::capture(name, labels),
                            merged,
                            handle,
                            admitted: admit,
                        }
                    }
                };
                admitted += u64::from(admit);
                self.entries.push(entry);
            });
        }
        if let Some(shared) = budget.shared {
            shared.commit(budget.job, prior, admitted);
        }
        self.admitted = admitted;
    }
}

/// Appends a filled [`TargetCache`] batch through
/// [`TimeSeriesDb::append_batch`] and repairs stale handles.  A stale handle
/// means the series was evicted or dropped after the cache resolved it: the
/// entry is re-resolved by key (re-creating the series if need be) and the
/// held-back sample appended individually.  A concurrent drop can race the
/// re-resolve and stale it again, so the second attempt falls back to the
/// by-key append, which cannot be stale — a stale handle may cost extra work
/// but never loses a sample.  Returns the number of samples storage
/// accepted.  Shared by the scraper's fast lane and [`PushLane`].
fn append_batch_repairing(db: &TimeSeriesDb, cache: &mut TargetCache) -> u64 {
    let outcome = db.append_batch(&cache.batch);
    let mut ingested = outcome.appended;
    for &index in &outcome.stale {
        // Stale indices address the batch the appender just consumed;
        // `batch_entry` maps them back to entry indices (the two diverge
        // when a budget clips unadmitted entries out of the batch).  The
        // get-based destructuring keeps the round panic-free even if that
        // invariant ever broke.
        let entry_at = cache.batch_entry.get(index).map(|&at| at as usize);
        let (Some(&(_, timestamp_ms, value)), Some(entry)) =
            (cache.batch.get(index), entry_at.and_then(|at| cache.entries.get_mut(at)))
        else {
            continue;
        };
        entry.handle = db.resolve(entry.key.name(), &entry.merged);
        match db.append_handle(entry.handle, timestamp_ms, value) {
            HandleAppend::Appended => ingested += 1,
            HandleAppend::Rejected => {}
            HandleAppend::Stale => {
                if db.append(entry.key.name(), &entry.merged, timestamp_ms, value) {
                    ingested += 1;
                }
            }
        }
    }
    ingested
}

/// Outcome of one [`PushLane::push`] round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushOutcome {
    /// Wire samples the pushed families contained.
    pub scraped: u64,
    /// Samples storage accepted (out-of-order samples are rejected).
    pub ingested: u64,
    /// Samples clipped by a cardinality budget this round (their series were
    /// not admitted to storage).
    pub overflow: u64,
}

/// The push-ingest entry: remote-write batches flow into storage through the
/// **same fast lane** a scrape target uses, via a private `TargetCache`.
///
/// A remote writer behaves exactly like a scrape target seen from storage's
/// side: it sends the same series set batch after batch, so the cache's
/// positional verify + one-shard-lock-per-round [`TimeSeriesDb::append_batch`]
/// apply unchanged.  Create **one lane per connection** (the cache assumes
/// rounds from a single emitter; interleaving two writers through one lane
/// would thrash the positional check into rebuilds — correct, but slow).
/// The lane is deliberately not `Sync`: it is owned, mutable state.
///
/// Durability: pushes ride the database's normal WAL round — they become
/// durable at the next [`TimeSeriesDb::wal_flush`] (the scrape driver's
/// per-round flush, or the serving edge's graceful-drain flush).
pub struct PushLane {
    db: TimeSeriesDb,
    job: String,
    base_labels: Labels,
    cache: TargetCache,
    target_limit: Option<u64>,
    budgets: Option<Arc<CardinalityBudgets>>,
}

impl PushLane {
    /// Creates a lane feeding `db`, attaching `config`'s
    /// `job`/`instance`/extra labels to every pushed sample (merged once
    /// here, like a registered scrape target).  The config's
    /// [`series_budget`](ScrapeTargetConfig::series_budget) caps the lane's
    /// own series set.
    pub fn new(db: TimeSeriesDb, config: &ScrapeTargetConfig) -> Self {
        Self {
            db,
            job: config.job.clone(),
            base_labels: config.target_labels(),
            cache: TargetCache::default(),
            target_limit: config.series_budget,
            budgets: None,
        }
    }

    /// Draws this lane's admissions from `budgets`'s shared per-job pool (on
    /// top of the lane's own per-config budget).  The lane releases its
    /// contribution when dropped.
    #[must_use]
    pub fn with_budgets(mut self, budgets: Arc<CardinalityBudgets>) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// Ingests one pushed batch of families, stamping unstamped samples with
    /// `now_ms`.  Steady state (same series set as the previous push) this
    /// is the allocation-free fast path; churn triggers the same
    /// handle-reusing cache repair a scrape target pays — including budget
    /// admission: over-budget series are clipped into
    /// [`PushOutcome::overflow`] instead of entering storage.
    pub fn push(&mut self, families: &[FamilySnapshot], now_ms: u64) -> PushOutcome {
        let cache = &mut self.cache;
        let budget = BudgetCtx {
            job: &self.job,
            target_limit: self.target_limit,
            shared: self.budgets.as_deref(),
        };
        let mut scraped = 0u64;
        let mut overflow = 0u64;
        let walk_watch = Stopwatch::start();
        if cache.fill(families, now_ms, &mut scraped, &mut overflow) {
            probes::CACHE_HITS.inc();
        } else {
            probes::CACHE_REBUILDS.inc();
            cache.rebuild(families, &self.base_labels, &self.db, &budget);
            let repaired = cache.fill(families, now_ms, &mut scraped, &mut overflow);
            debug_assert!(repaired, "a rebuilt cache must match the snapshots it was built from");
        }
        probes::SCRAPE_CACHE_WALK_NS.record_ns(walk_watch.elapsed_ns());
        let append_watch = Stopwatch::start();
        let ingested = append_batch_repairing(&self.db, cache);
        probes::SCRAPE_APPEND_NS.record_ns(append_watch.elapsed_ns());
        if overflow > 0 {
            cache.overflow_total += overflow;
            probes::SCRAPE_BUDGET_REJECTED.add(overflow);
        }
        if cache.overflow_total > 0 {
            // Cumulative roll-up series so the clipped tail stays observable
            // (and alertable) without creating one series per rejected key —
            // warm-path append, same lane as the scrape meta-metrics.
            self.db.append(
                "teemon_overflow_series_total",
                &self.base_labels,
                now_ms,
                cache.overflow_total as f64,
            );
        }
        PushOutcome { scraped, ingested, overflow }
    }

    /// The job this lane pushes under.
    pub fn job(&self) -> &str {
        &self.job
    }

    /// The database this lane feeds.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }
}

impl Drop for PushLane {
    fn drop(&mut self) {
        // Give the lane's admitted series back to the shared job pool; the
        // series themselves stay in storage for retention to age out.
        if let Some(budgets) = &self.budgets {
            budgets.release(&self.job, self.cache.admitted);
        }
    }
}

/// How the scraper moves samples into storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestMode {
    /// The default: per-target scrape cache + [`TimeSeriesDb::append_batch`]
    /// (one shard lock per round, zero allocation steady state).
    #[default]
    FastLane,
    /// The pre-cache path — merge target labels and call
    /// [`TimeSeriesDb::append`] for every sample, every round.  Retained as
    /// the correctness oracle (see `tests/ingest_equivalence.rs`) and the
    /// bench baseline (`micro/ingest`).
    PerSample,
}

/// How `scrape_duration_seconds` (and [`ScrapeOutcome::duration_seconds`])
/// is charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurationMode {
    /// The default: real wall time of the scrape, read from the monotonic
    /// clock.  This is what operators want on a live monitor — the span
    /// timers feeding `teemon_scrape_round_seconds` use the same clock.
    #[default]
    Measured,
    /// The deterministic model (base cost plus a per-sample cost) the
    /// simulator tests rely on: two identical runs must produce identical
    /// database contents, which host wall-clock readings would break.
    Modelled,
}

/// What one scrape round did, in aggregate — the allocation-free counterpart
/// of a `Vec<ScrapeOutcome>`, returned by [`Scraper::scrape_round`] /
/// [`Scraper::scrape_round_due`] for callers (like the monitor loops) that
/// don't need per-target details.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundSummary {
    /// Targets scraped this round.
    pub targets: usize,
    /// Targets that were up.
    pub healthy: usize,
    /// Wire samples the targets exposed.
    pub samples_scraped: u64,
    /// Samples storage accepted.
    pub samples_added: u64,
}

/// What one target's ingest pass moved: wire samples seen, samples storage
/// accepted, budget-clipped samples this round and cumulatively.
#[derive(Default, Clone, Copy)]
struct IngestStats {
    scraped: u64,
    ingested: u64,
    overflow: u64,
    overflow_total: u64,
}

/// Per-target result of one round, before any strings are cloned for the
/// public [`ScrapeOutcome`].
struct TargetRound {
    up: bool,
    scraped: u64,
    ingested: u64,
    duration_seconds: f64,
    error: Option<String>,
}

/// The scrape manager: a set of targets feeding one [`TimeSeriesDb`].
#[derive(Clone)]
pub struct Scraper {
    db: TimeSeriesDb,
    targets: Arc<RwLock<Vec<Target>>>,
    scrape_interval_ms: u64,
    ingest: IngestMode,
    durations: DurationMode,
    budgets: Option<Arc<CardinalityBudgets>>,
}

impl Scraper {
    /// Default scrape interval: the paper queries exporters every 5 seconds.
    pub const DEFAULT_INTERVAL_MS: u64 = 5_000;

    /// Creates a scraper feeding `db` (fast-lane ingest by default).
    pub fn new(db: TimeSeriesDb) -> Self {
        Self {
            db,
            // Lock order during a round: targets (read) → target cache →
            // storage shard; registered with the audit under those names.
            targets: Arc::new(RwLock::named(Vec::new(), LockClass::new("scrape.targets"))),
            scrape_interval_ms: Self::DEFAULT_INTERVAL_MS,
            ingest: IngestMode::default(),
            durations: DurationMode::default(),
            budgets: None,
        }
    }

    /// Registers a shared [`CardinalityBudgets`] pool: every target's cache
    /// repair draws its admissions from its job's pool (on top of any
    /// per-target [`ScrapeTargetConfig::series_budget`]).
    #[must_use]
    pub fn with_budgets(mut self, budgets: Arc<CardinalityBudgets>) -> Self {
        self.budgets = Some(budgets);
        self
    }

    /// Sets the scrape interval in milliseconds.
    #[must_use]
    pub fn with_interval_ms(mut self, interval_ms: u64) -> Self {
        self.scrape_interval_ms = interval_ms.max(1);
        self
    }

    /// Selects how samples move into storage (see [`IngestMode`]).
    #[must_use]
    pub fn with_ingest_mode(mut self, ingest: IngestMode) -> Self {
        self.ingest = ingest;
        self
    }

    /// The ingest mode in effect.
    pub fn ingest_mode(&self) -> IngestMode {
        self.ingest
    }

    /// Charges `scrape_duration_seconds` from the deterministic sample-count
    /// model instead of measuring wall time (see [`DurationMode`]).
    #[must_use]
    pub fn with_modelled_durations(mut self) -> Self {
        self.durations = DurationMode::Modelled;
        self
    }

    /// The duration mode in effect.
    pub fn duration_mode(&self) -> DurationMode {
        self.durations
    }

    /// The configured scrape interval in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.scrape_interval_ms
    }

    /// The database being fed.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// Registers a typed scrape target.  The target's `job`/`instance`/extra
    /// labels are merged once here; scrape rounds reuse the merged set.
    pub fn add_target(&self, config: ScrapeTargetConfig, endpoint: Arc<dyn MetricsEndpoint>) {
        let base_labels = config.target_labels();
        self.targets.write().push(Target {
            config,
            endpoint,
            base_labels,
            cache: Mutex::named(TargetCache::default(), LockClass::new("scrape.target_cache")),
            last_scrape_ms: AtomicU64::new(NEVER),
        });
    }

    /// Registers a [`Collector`] as a typed scrape target (the default,
    /// zero-serialisation path).
    pub fn add_collector(&self, config: ScrapeTargetConfig, collector: Arc<dyn Collector>) {
        self.add_target(config, Arc::new(CollectorEndpoint::new(collector)));
    }

    /// Registers a raw-text target (the inbound wire-format edge).
    pub fn add_text_source(&self, config: ScrapeTargetConfig, source: Arc<dyn TextSource>) {
        self.add_target(config, Arc::new(TextSourceEndpoint(source)));
    }

    /// Registers the engine's own telemetry as a scrape target (job
    /// `teemon_self`): every round thereafter snapshots the probes —
    /// scrape-stage timings, shard heat, lock contention, query stats —
    /// into this database, where TeeQL, dashboards and alert rules see them
    /// like any other job.
    pub fn add_self_target(&self, instance: impl Into<String>) {
        self.add_target(
            ScrapeTargetConfig::new(teemon_obs::SELF_JOB, instance),
            Arc::new(ObsEndpoint::new()),
        );
    }

    /// Removes every target whose instance equals `instance` (e.g. a node that
    /// left the cluster).  Returns how many targets were removed.
    pub fn remove_instance(&self, instance: &str) -> usize {
        let mut targets = self.targets.write();
        let before = targets.len();
        targets.retain(|t| {
            if t.config.instance != instance {
                return true;
            }
            // A removed target's series go back to the job's shared pool
            // (the series themselves stay for retention to age out).
            if let Some(budgets) = &self.budgets {
                let admitted = t.cache.lock().admitted;
                budgets.release(&t.config.job, admitted);
            }
            false
        });
        before - targets.len()
    }

    /// Number of registered targets.
    pub fn target_count(&self) -> usize {
        self.targets.read().len()
    }

    /// Scrapes every target once, regardless of per-target intervals,
    /// stamping samples with `now_ms`.
    pub fn scrape_once(&self, now_ms: u64) -> Vec<ScrapeOutcome> {
        let mut outcomes = Vec::new();
        self.drive(now_ms, false, |target, round| outcomes.push(Self::outcome(target, round)));
        outcomes
    }

    /// Scrapes every target that is due at `now_ms`: never-scraped targets
    /// are always due, others when their per-target interval (falling back to
    /// the scraper's global interval) has elapsed.
    pub fn scrape_due(&self, now_ms: u64) -> Vec<ScrapeOutcome> {
        let mut outcomes = Vec::new();
        self.drive(now_ms, true, |target, round| outcomes.push(Self::outcome(target, round)));
        outcomes
    }

    /// Like [`Scraper::scrape_once`], but folds the round into a
    /// [`RoundSummary`] instead of materialising per-target outcomes.  This
    /// is the monitoring loop's path: a steady-state round of plain
    /// counter/gauge points performs zero heap allocations end to end
    /// (proved by `tests/alloc_free_scrape.rs`; histogram/summary families
    /// allocate their bucket/quantile label expansions in the snapshot
    /// walk).
    pub fn scrape_round(&self, now_ms: u64) -> RoundSummary {
        self.round(now_ms, false)
    }

    /// Like [`Scraper::scrape_due`], but returning a [`RoundSummary`] — the
    /// allocation-free counterpart for interval-gated loops.
    pub fn scrape_round_due(&self, now_ms: u64) -> RoundSummary {
        self.round(now_ms, true)
    }

    fn due(&self, target: &Target, now_ms: u64) -> bool {
        let last = target.last_scrape_ms.load(Ordering::Relaxed);
        let interval = target.config.interval_ms.unwrap_or(self.scrape_interval_ms);
        last == NEVER || now_ms.saturating_sub(last) >= interval
    }

    fn round(&self, now_ms: u64, due_only: bool) -> RoundSummary {
        let mut summary = RoundSummary::default();
        self.drive(now_ms, due_only, |_, round| {
            summary.targets += 1;
            summary.healthy += usize::from(round.up);
            summary.samples_scraped += round.scraped;
            summary.samples_added += round.ingested;
        });
        summary
    }

    /// The one scrape-round driver behind `scrape_once`/`scrape_due`/the
    /// round summaries: iterates targets (optionally due-gated), scrapes
    /// each, hands the result to `sink`, and records the storage
    /// self-monitoring gauges when at least one target was touched.
    fn drive(&self, now_ms: u64, due_only: bool, mut sink: impl FnMut(&Target, TargetRound)) {
        let round_watch = Stopwatch::start();
        let targets = self.targets.read();
        let mut scraped_any = false;
        for target in targets.iter() {
            if due_only && !self.due(target, now_ms) {
                continue;
            }
            let round = self.scrape_target(target, now_ms);
            scraped_any = true;
            sink(target, round);
        }
        if scraped_any {
            self.publish_storage_stats();
            // Make the round durable before declaring it done: one WAL flush
            // per scrape round (no-op on volatile databases).  The scrape
            // driver is the single flusher the WAL's crash-exactness
            // contract is defined for.  An unclean flush means a write or
            // fsync error lost this round's durability — count it so
            // EveryCommit deployments see the loss when it happens (the
            // `teemon_wal_unclean` self-alert fires on the counter) instead
            // of the round being acked silently.
            if !self.db.wal_flush() {
                probes::WAL_UNCLEAN_ROUNDS.inc();
            }
            probes::SCRAPE_ROUNDS.inc();
            probes::SCRAPE_ROUND_NS.record_ns(round_watch.elapsed_ns());
        }
    }

    fn outcome(target: &Target, round: TargetRound) -> ScrapeOutcome {
        ScrapeOutcome {
            job: target.config.job.clone(),
            instance: target.config.instance.clone(),
            up: round.up,
            samples: round.ingested,
            duration_seconds: round.duration_seconds,
            error: round.error,
        }
    }

    /// Self-monitoring: publishes the storage engine's own footprint into
    /// the `teemon_obs` gauges after every scrape round that touched at
    /// least one target, so chunk-compression wins
    /// (`teemon_tsdb_bytes_per_sample` vs the 16-byte raw sample) and shard
    /// imbalance are observable from inside the system.  The gauges reach
    /// the database through the self-scrape target ([`ObsEndpoint`]) rather
    /// than ad-hoc appends, so they carry proper target labels and flow
    /// through the same ingest path as every other metric.  (`samples` and
    /// `series` are gauges, not `_total`s: retention makes them go down, so
    /// counter names would bait bogus `rate()` queries.)
    fn publish_storage_stats(&self) {
        let stats = self.db.stats();
        probes::STORAGE_RESIDENT_BYTES.set(stats.resident_bytes as f64);
        probes::STORAGE_SAMPLES.set(stats.samples as f64);
        probes::STORAGE_BYTES_PER_SAMPLE.set(stats.bytes_per_sample());
        probes::STORAGE_SERIES.set(stats.series as f64);
        probes::STORAGE_REJECTED_SAMPLES.set(stats.rejected_samples as f64);
        probes::STORAGE_SYMBOLS.set(stats.symbols as f64);
        probes::STORAGE_SYMBOL_BYTES.set(stats.symbol_bytes as f64);
        probes::STORAGE_INDEX_BYTES.set(stats.index_bytes as f64);
        for (shard, count) in self.db.shard_series_counts().iter().enumerate() {
            probes::SHARD_SERIES.set(shard, *count as f64);
        }
        for (shard, generation) in self.db.shard_generations().iter().enumerate() {
            probes::SHARD_GENERATIONS.set(shard, *generation as f64);
        }
    }

    /// Modelled base duration of one scrape in seconds (connection setup and
    /// metadata handling) plus a per-sample cost — the [`DurationMode::Modelled`]
    /// charge.  Simulations run on virtual time, so their
    /// `scrape_duration_seconds` meta-metric is charged from this
    /// deterministic model rather than host wall-clock time — two identical
    /// runs must produce identical database contents.
    const SCRAPE_BASE_SECONDS: f64 = 500e-6;
    const SCRAPE_PER_SAMPLE_SECONDS: f64 = 2e-6;

    fn scrape_target(&self, target: &Target, now_ms: u64) -> TargetRound {
        let watch = Stopwatch::start();
        let result = match self.ingest {
            IngestMode::FastLane => self.ingest_fast(target, now_ms),
            IngestMode::PerSample => self.ingest_per_sample(target, now_ms),
        };
        target.last_scrape_ms.store(now_ms, Ordering::Relaxed);
        let (up, stats, error) = match result {
            Ok(stats) => (true, stats, None),
            Err(error) => (false, IngestStats::default(), Some(error.to_string())),
        };
        let IngestStats { scraped, ingested, overflow, overflow_total } = stats;
        if overflow > 0 {
            probes::SCRAPE_BUDGET_REJECTED.add(overflow);
        }
        let duration_seconds = match self.durations {
            DurationMode::Measured => watch.elapsed_seconds(),
            DurationMode::Modelled => {
                Self::SCRAPE_BASE_SECONDS + scraped as f64 * Self::SCRAPE_PER_SAMPLE_SECONDS
            }
        };
        let base_labels = &target.base_labels;
        self.db.append("up", base_labels, now_ms, if up { 1.0 } else { 0.0 });
        self.db.append("scrape_duration_seconds", base_labels, now_ms, duration_seconds);
        if up {
            // Prometheus semantics: `_scraped` counts the samples the target
            // exposed, `_added` the ones storage accepted (out-of-order
            // samples are rejected by the series).
            self.db.append("scrape_samples_scraped", base_labels, now_ms, scraped as f64);
            self.db.append("scrape_samples_added", base_labels, now_ms, ingested as f64);
            if overflow_total > 0 {
                // Cumulative roll-up of budget-clipped samples for this
                // target — one series per target regardless of how many
                // distinct keys the budget rejected.
                self.db.append(
                    "teemon_overflow_series_total",
                    base_labels,
                    now_ms,
                    overflow_total as f64,
                );
            }
        }
        TargetRound { up, scraped, ingested, duration_seconds, error }
    }

    /// The fast lane: cache-verify the borrowed snapshots, batch-append by
    /// handle, repair the cache on churn and re-resolve stale handles.
    fn ingest_fast(&self, target: &Target, now_ms: u64) -> Result<IngestStats, ScrapeError> {
        let mut scraped = 0u64;
        let mut ingested = 0u64;
        let mut overflow = 0u64;
        let mut overflow_total = 0u64;
        let collect_watch = Stopwatch::start();
        // The cache lock is taken inside the visit, not around the whole
        // scrape, so an endpoint whose *collect* step transitively scrapes
        // this target again (a composing/gateway endpoint) does not deadlock
        // on its own cache.
        target.endpoint.scrape_visit(&mut |families| {
            // The collect stage ends when the endpoint hands its snapshots
            // over; everything before this point was snapshot production.
            probes::SCRAPE_COLLECT_NS.record_ns(collect_watch.elapsed_ns());
            let mut cache = target.cache.lock();
            let cache = &mut *cache;
            let budget = BudgetCtx {
                job: &target.config.job,
                target_limit: target.config.series_budget,
                shared: self.budgets.as_deref(),
            };
            let walk_watch = Stopwatch::start();
            if cache.fill(families, now_ms, &mut scraped, &mut overflow) {
                probes::CACHE_HITS.inc();
            } else {
                probes::CACHE_REBUILDS.inc();
                cache.rebuild(families, &target.base_labels, &self.db, &budget);
                let repaired = cache.fill(families, now_ms, &mut scraped, &mut overflow);
                debug_assert!(
                    repaired,
                    "a rebuilt cache must match the snapshots it was built from"
                );
            }
            probes::SCRAPE_CACHE_WALK_NS.record_ns(walk_watch.elapsed_ns());
            let append_watch = Stopwatch::start();
            ingested = append_batch_repairing(&self.db, cache);
            probes::SCRAPE_APPEND_NS.record_ns(append_watch.elapsed_ns());
            cache.overflow_total += overflow;
            overflow_total = cache.overflow_total;
        })?;
        Ok(IngestStats { scraped, ingested, overflow, overflow_total })
    }

    /// The per-sample oracle path ([`IngestMode::PerSample`]): merge target
    /// labels and append each sample by key, exactly as every round did
    /// before the cache existed.  Budgets do not apply here — the oracle
    /// models the pre-defense engine.
    fn ingest_per_sample(&self, target: &Target, now_ms: u64) -> Result<IngestStats, ScrapeError> {
        let mut scraped = 0u64;
        let mut ingested = 0u64;
        target.endpoint.scrape_visit(&mut |families| {
            for family in families {
                family.for_each_sample(|name, labels, value, timestamp_ms| {
                    scraped += 1;
                    let labels = labels.merged(&target.base_labels);
                    let ts = timestamp_ms.unwrap_or(now_ms);
                    if self.db.append(name, &labels, ts, value) {
                        ingested += 1;
                    }
                });
            }
        })?;
        Ok(IngestStats { scraped, ingested, ..IngestStats::default() })
    }

    /// Instances whose most recent `up` sample is 0 at `now_ms` — the health
    /// checker view.
    pub fn unhealthy_instances(&self, now_ms: u64) -> Vec<String> {
        use crate::query::Selector;
        self.db
            .query_instant(&Selector::metric("up"), now_ms)
            .into_iter()
            .filter(|r| r.points.last().map(|(_, v)| *v == 0.0).unwrap_or(false))
            .filter_map(|r| r.labels.get("instance").map(str::to_string))
            .collect()
    }
}

impl std::fmt::Debug for Scraper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scraper")
            .field("targets", &self.target_count())
            .field("interval_ms", &self.scrape_interval_ms)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selector;
    use teemon_metrics::{Registry, RegistryCollector};

    fn registry_collector(job: &str, registry: Registry) -> Arc<dyn Collector> {
        Arc::new(RegistryCollector::new(job, registry))
    }

    #[test]
    fn typed_scrape_ingests_samples_with_target_labels() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        registry.gauge_family("sgx_nr_free_pages", "free pages").default_instance().set(24_000.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("sgx_exporter", "node-1:9090").with_label("node", "node-1"),
            registry_collector("sgx_exporter", registry.clone()),
        );

        let outcomes = scraper.scrape_once(5_000);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].up);
        assert_eq!(outcomes[0].samples, 1);
        assert!(outcomes[0].duration_seconds > 0.0);

        let results = db.query_instant(&Selector::metric("sgx_nr_free_pages"), 10_000);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].labels.get("job"), Some("sgx_exporter"));
        assert_eq!(results[0].labels.get("node"), Some("node-1"));
        assert_eq!(results[0].points[0].1, 24_000.0);

        // The meta-metrics are recorded too.
        let up = db.query_instant(&Selector::metric("up"), 10_000);
        assert_eq!(up[0].points[0].1, 1.0);
        assert_eq!(db.query_instant(&Selector::metric("scrape_duration_seconds"), 10_000).len(), 1);
        assert!(scraper.unhealthy_instances(10_000).is_empty());
    }

    #[test]
    fn repeated_scrapes_build_series() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone()).with_interval_ms(5_000);
        let registry = Registry::new();
        let counter = registry.counter_family("events_total", "events");
        scraper.add_collector(
            ScrapeTargetConfig::new("ebpf_exporter", "node-1:9435"),
            registry_collector("ebpf_exporter", registry.clone()),
        );
        for round in 0..5u64 {
            counter.default_instance().inc_by(10.0);
            scraper.scrape_once(round * scraper.interval_ms());
        }
        let results = db.query_range(&Selector::metric("events_total"), 0, u64::MAX);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].points.len(), 5);
        let r = crate::query::rate(&results[0].points).unwrap();
        assert!((r - 2.0).abs() < 1e-9, "10 events per 5s = 2/s, got {r}");
    }

    #[test]
    fn storage_self_metrics_are_recorded() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        registry.gauge_family("g", "gauge").default_instance().set(1.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("job", "n1:1"),
            registry_collector("job", registry),
        );
        scraper.add_self_target("self:0");
        // Storage stats publish into the obs gauges at the *end* of a round,
        // after the self target was already scraped — so the db sees them
        // with a one-round lag.  Scrape twice.
        scraper.scrape_once(5_000);
        scraper.scrape_once(10_000);
        let resident = db.query_instant(&Selector::metric("teemon_tsdb_resident_bytes"), 10_000);
        assert_eq!(resident.len(), 1);
        assert!(resident[0].points[0].1 > 0.0);
        let per_sample =
            db.query_instant(&Selector::metric("teemon_tsdb_bytes_per_sample"), 10_000);
        assert!(per_sample[0].points[0].1 > 0.0);
        // The self slice carries the standard target labels like any job.
        assert_eq!(resident[0].labels.get("job"), Some(teemon_obs::SELF_JOB));
        assert_eq!(resident[0].labels.get("instance"), Some("self:0"));
        // Shard diagnostics flow through the same path.
        let shard_series = db.query_instant(&Selector::metric("teemon_tsdb_shard_series"), 10_000);
        assert_eq!(shard_series.len(), probes::SHARDS);
        // No targets, no self metrics: an idle scraper must not grow the db.
        let idle = TimeSeriesDb::new();
        Scraper::new(idle.clone()).scrape_once(1_000);
        assert_eq!(idle.series_count(), 0);
    }

    #[test]
    fn measured_durations_are_positive_and_modelled_ones_deterministic() {
        let registry = Registry::new();
        registry.gauge_family("g", "gauge").default_instance().set(1.0);
        let db = TimeSeriesDb::new();
        let measured = Scraper::new(db.clone());
        assert_eq!(measured.duration_mode(), DurationMode::Measured);
        measured.add_collector(
            ScrapeTargetConfig::new("job", "n1:1"),
            registry_collector("job", registry.clone()),
        );
        let outcome = &measured.scrape_once(1_000)[0];
        assert!(outcome.duration_seconds > 0.0, "a real scrape takes real time");

        let modelled = Scraper::new(TimeSeriesDb::new()).with_modelled_durations();
        modelled.add_collector(
            ScrapeTargetConfig::new("job", "n1:1"),
            registry_collector("job", registry),
        );
        let expected = Scraper::SCRAPE_BASE_SECONDS + 1.0 * Scraper::SCRAPE_PER_SAMPLE_SECONDS;
        for round in 1..=3u64 {
            let outcome = &modelled.scrape_once(round * 1_000)[0];
            assert_eq!(outcome.duration_seconds, expected, "model is deterministic");
        }
    }

    #[test]
    fn failing_target_marks_up_zero() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        scraper.add_target(
            ScrapeTargetConfig::new("sgx_exporter", "node-2:9090"),
            Arc::new(|| Err(ScrapeError::Unreachable("connection refused".to_string()))),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(!outcomes[0].up);
        assert!(outcomes[0].error.as_deref().unwrap().contains("refused"));
        assert_eq!(scraper.unhealthy_instances(1_000), vec!["node-2:9090".to_string()]);
    }

    #[test]
    fn malformed_text_source_counts_as_failure() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        scraper.add_text_source(
            ScrapeTargetConfig::new("broken", "node-3:1"),
            Arc::new(|| Ok("this is { not valid".to_string())),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(!outcomes[0].up);
        assert!(outcomes[0].error.is_some());
    }

    #[test]
    fn text_endpoint_round_trips_through_the_wire_format() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        registry
            .counter_family("teemon_syscalls_total", "syscalls")
            .with(&teemon_metrics::Labels::from_pairs([("syscall", "read")]))
            .inc_by(7.0);
        registry
            .histogram_family("lat_seconds", "latency", vec![0.01, 0.1])
            .default_instance()
            .observe(0.05);
        let collector = registry_collector("text_job", registry);

        // What the typed path would ingest…
        let typed = collector.collect().unwrap();
        // …must equal what survives the text round-trip.
        let endpoint = TextEndpoint::new(collector);
        let text = endpoint.render().unwrap();
        assert!(text.contains("teemon_syscalls_total{syscall=\"read\"} 7"));
        assert_eq!(endpoint.scrape().unwrap(), typed);

        scraper.add_target(ScrapeTargetConfig::new("text_job", "node-1:9090"), Arc::new(endpoint));
        let outcomes = scraper.scrape_once(1_000);
        assert!(outcomes[0].up);
        assert_eq!(db.query_instant(&Selector::metric("lat_seconds_bucket"), 2_000).len(), 3);
    }

    #[test]
    fn per_target_intervals_gate_scrape_due() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db).with_interval_ms(5_000);
        let fast = Registry::new();
        fast.gauge_family("fast_gauge", "").default_instance().set(1.0);
        let slow = Registry::new();
        slow.gauge_family("slow_gauge", "").default_instance().set(1.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("fast", "n1:1"),
            registry_collector("fast", fast),
        );
        scraper.add_collector(
            ScrapeTargetConfig::new("slow", "n1:2").with_interval_ms(15_000),
            registry_collector("slow", slow),
        );

        // First pass: both never scraped, both due.
        assert_eq!(scraper.scrape_due(0).len(), 2);
        // 5 s later only the fast target is due.
        let due: Vec<String> = scraper.scrape_due(5_000).into_iter().map(|o| o.job).collect();
        assert_eq!(due, vec!["fast".to_string()]);
        assert_eq!(scraper.scrape_due(10_000).len(), 1);
        // At 15 s the slow target is due again too.
        assert_eq!(scraper.scrape_due(15_000).len(), 2);
        // scrape_once ignores the gating entirely.
        assert_eq!(scraper.scrape_once(15_500).len(), 2);
    }

    #[test]
    fn fast_lane_round_equals_per_sample_round() {
        // Same registry scraped through both ingest modes: identical
        // contents, and the fast lane keeps working across rounds.
        let registry = Registry::new();
        let family = registry.counter_family("teemon_syscalls_total", "syscalls");
        for syscall in ["read", "write", "futex"] {
            family.with(&Labels::from_pairs([("syscall", syscall)])).inc_by(5.0);
        }
        let make = |mode: IngestMode| {
            let db = TimeSeriesDb::new();
            // Modelled durations: outcome equality below includes
            // `duration_seconds`, which wall time would never reproduce.
            let scraper = Scraper::new(db.clone()).with_ingest_mode(mode).with_modelled_durations();
            scraper.add_collector(
                ScrapeTargetConfig::new("sgx_exporter", "n1:9090").with_label("node", "n1"),
                registry_collector("sgx_exporter", registry.clone()),
            );
            (db, scraper)
        };
        let (fast_db, fast) = make(IngestMode::FastLane);
        let (slow_db, slow) = make(IngestMode::PerSample);
        assert_eq!(fast.ingest_mode(), IngestMode::FastLane);
        for round in 1..=5u64 {
            family.with(&Labels::from_pairs([("syscall", "read")])).inc_by(1.0);
            let a = fast.scrape_once(round * 5_000);
            let b = slow.scrape_once(round * 5_000);
            assert_eq!(a, b);
        }
        assert_eq!(fast_db.stats(), slow_db.stats());
        let series = |db: &TimeSeriesDb| {
            db.select(&Selector::all())
                .iter()
                .map(|s| (s.name().to_string(), s.to_labels(), s.points_in(0, u64::MAX)))
                .collect::<Vec<_>>()
        };
        assert_eq!(series(&fast_db), series(&slow_db));
    }

    #[test]
    fn fast_lane_repairs_cache_on_series_churn() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        let family = registry.gauge_family("proc_cpu", "cpu");
        family.with(&Labels::from_pairs([("process", "redis")])).set(1.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("cadvisor", "n1:8080"),
            registry_collector("cadvisor", registry.clone()),
        );
        scraper.scrape_once(5_000);
        // A process appears: the cached round shape changes mid-stream.
        family.with(&Labels::from_pairs([("process", "nginx")])).set(2.0);
        scraper.scrape_once(10_000);
        scraper.scrape_once(15_000);
        let results = db.query_range(&Selector::metric("proc_cpu"), 0, u64::MAX);
        assert_eq!(results.len(), 2);
        let points_of = |process: &str| {
            results
                .iter()
                .find(|r| r.labels.get("process") == Some(process))
                .map(|r| r.points.len())
                .unwrap()
        };
        assert_eq!(points_of("redis"), 3, "cached series kept appending through the churn");
        assert_eq!(points_of("nginx"), 2, "new series picked up from its first round");
    }

    #[test]
    fn fast_lane_re_resolves_dropped_series_mid_stream() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        let registry = Registry::new();
        let family = registry.gauge_family("g", "gauge");
        family.with(&Labels::from_pairs([("case", "kept")])).set(1.0);
        family.with(&Labels::from_pairs([("case", "dropped")])).set(2.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("job", "n1:1"),
            registry_collector("job", registry),
        );
        scraper.scrape_once(5_000);
        // An operator drops the series between rounds; the target's cache
        // still holds a handle resolved under the old shard generation.
        assert_eq!(db.drop_series(&Selector::metric("g").with_label("case", "dropped")), 1);
        let outcomes = scraper.scrape_once(10_000);
        assert!(outcomes[0].up);
        let results = db.query_range(&Selector::metric("g"), 0, u64::MAX);
        assert_eq!(results.len(), 2, "the dropped series was transparently re-created");
        for r in &results {
            match r.labels.get("case") {
                Some("kept") => {
                    assert_eq!(r.points.iter().map(|p| p.0).collect::<Vec<_>>(), [5_000, 10_000]);
                    assert!(r.points.iter().all(|p| p.1 == 1.0), "no misrouted values");
                }
                Some("dropped") => {
                    assert_eq!(r.points, vec![(10_000, 2.0)], "fresh series, fresh history");
                }
                other => panic!("unexpected series {other:?}"),
            }
        }
    }

    #[test]
    fn push_lane_ingests_like_a_scrape_target() {
        // The same families pushed through a PushLane and scraped through a
        // registered target must store identical series.
        let registry = Registry::new();
        let family = registry.counter_family("pushed_total", "pushed");
        for case in ["a", "b"] {
            family.with(&Labels::from_pairs([("case", case)])).inc_by(3.0);
        }
        let collector = registry_collector("remote", registry.clone());

        let scraped_db = TimeSeriesDb::new();
        let scraper = Scraper::new(scraped_db.clone());
        scraper.add_collector(ScrapeTargetConfig::new("remote", "w1:443"), collector.clone());

        let pushed_db = TimeSeriesDb::new();
        let mut lane =
            PushLane::new(pushed_db.clone(), &ScrapeTargetConfig::new("remote", "w1:443"));
        assert_eq!(lane.db().series_count(), 0);

        for round in 1..=3u64 {
            family.with(&Labels::from_pairs([("case", "a")])).inc_by(1.0);
            let families = {
                collector.refresh();
                collector.collect().unwrap()
            };
            let outcome = lane.push(&families, round * 5_000);
            assert_eq!(outcome.scraped, 2);
            assert_eq!(outcome.ingested, 2);
            scraper.scrape_once(round * 5_000);
        }
        let series = |db: &TimeSeriesDb| {
            let mut all = db
                .select(&Selector::metric("pushed_total"))
                .iter()
                .map(|s| (s.name().to_string(), s.to_labels(), s.points_in(0, u64::MAX)))
                .collect::<Vec<_>>();
            all.sort_by(|a, b| format!("{:?}", (&a.0, &a.1)).cmp(&format!("{:?}", (&b.0, &b.1))));
            all
        };
        assert_eq!(series(&pushed_db), series(&scraped_db));
        // The pushed samples carry the lane's target labels.
        let results = pushed_db.query_instant(&Selector::metric("pushed_total"), 20_000);
        assert!(results.iter().all(|r| r.labels.get("job") == Some("remote")));
        assert!(results.iter().all(|r| r.labels.get("instance") == Some("w1:443")));
    }

    #[test]
    fn push_lane_survives_series_drop_between_pushes() {
        let db = TimeSeriesDb::new();
        let mut lane = PushLane::new(db.clone(), &ScrapeTargetConfig::new("remote", "w1:443"));
        let registry = Registry::new();
        let family = registry.gauge_family("g", "gauge");
        family.with(&Labels::from_pairs([("case", "kept")])).set(1.0);
        family.with(&Labels::from_pairs([("case", "dropped")])).set(2.0);
        lane.push(&registry.gather(), 5_000);
        assert_eq!(db.drop_series(&Selector::metric("g").with_label("case", "dropped")), 1);
        let outcome = lane.push(&registry.gather(), 10_000);
        assert_eq!(outcome.ingested, 2, "dropped series transparently re-created");
        assert_eq!(db.query_range(&Selector::metric("g"), 0, u64::MAX).len(), 2);
    }

    #[test]
    fn text_source_rejects_documents_over_the_network_limits() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        // One line longer than the 16 KiB network line limit.
        let long_line = format!("m{{v=\"{}\"}} 1\n", "x".repeat(20 * 1024));
        scraper.add_text_source(
            ScrapeTargetConfig::new("hostile", "evil:1"),
            Arc::new(move || Ok(long_line.clone())),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(!outcomes[0].up, "oversized document must fail the scrape, not truncate");
        assert!(outcomes[0].error.as_deref().unwrap().contains("line bytes"));
        assert_eq!(db.series_count(), 2, "only up/scrape_duration meta-series, no samples");
    }

    #[test]
    fn round_summaries_match_outcome_totals() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db).with_interval_ms(5_000);
        let registry = Registry::new();
        registry.gauge_family("g", "gauge").default_instance().set(1.0);
        scraper.add_collector(
            ScrapeTargetConfig::new("fast", "n1:1"),
            registry_collector("fast", registry.clone()),
        );
        scraper.add_collector(
            ScrapeTargetConfig::new("slow", "n1:2").with_interval_ms(15_000),
            registry_collector("slow", registry),
        );
        scraper.add_target(
            ScrapeTargetConfig::new("down", "n1:3"),
            Arc::new(|| Err(ScrapeError::Unreachable("nope".to_string()))),
        );
        let summary = scraper.scrape_round(0);
        assert_eq!(summary.targets, 3);
        assert_eq!(summary.healthy, 2);
        assert_eq!(summary.samples_scraped, 2);
        assert_eq!(summary.samples_added, 2);
        // 5 s later only the fast and the failing target are due.
        let due = scraper.scrape_round_due(5_000);
        assert_eq!((due.targets, due.healthy, due.samples_added), (2, 1, 1));
        // The due-gated summary saw the same world as scrape_due would.
        assert_eq!(scraper.scrape_round_due(5_000).targets, 0, "nothing due right after");
    }

    #[test]
    fn targets_can_be_removed() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db);
        let registry = Registry::new();
        scraper.add_collector(
            ScrapeTargetConfig::new("node_exporter", "node-1:9100"),
            registry_collector("node_exporter", registry.clone()),
        );
        scraper.add_collector(
            ScrapeTargetConfig::new("sgx_exporter", "node-1:9090"),
            registry_collector("sgx_exporter", registry),
        );
        assert_eq!(scraper.target_count(), 2);
        assert_eq!(scraper.remove_instance("node-1:9100"), 1);
        assert_eq!(scraper.target_count(), 1);
        assert_eq!(scraper.remove_instance("unknown"), 0);
    }

    /// A registry exposing `n` gauge series `m{i="<k>"}`.
    fn wide_registry(n: usize) -> Registry {
        let registry = Registry::new();
        let family = registry.gauge_family("m", "wide");
        for k in 0..n {
            family.with(&Labels::from_pairs([("i", format!("{k:03}"))])).set(k as f64);
        }
        registry
    }

    #[test]
    fn per_target_budget_clips_series_and_counts_overflow() {
        let db = TimeSeriesDb::new();
        let scraper = Scraper::new(db.clone());
        scraper.add_collector(
            ScrapeTargetConfig::new("wide", "n1:1").with_series_budget(3),
            registry_collector("wide", wide_registry(8)),
        );
        let outcomes = scraper.scrape_once(1_000);
        assert!(outcomes[0].up);
        // All 8 wire samples were seen, only 3 series were admitted.
        assert_eq!(db.query_instant(&Selector::metric("m"), 2_000).len(), 3);
        let scraped = db.query_instant(&Selector::metric("scrape_samples_scraped"), 2_000);
        assert_eq!(scraped[0].points[0].1, 8.0);
        // The clipped tail is observable as the cumulative roll-up series.
        let rolled = db.query_instant(&Selector::metric("teemon_overflow_series_total"), 2_000);
        assert_eq!(rolled.len(), 1);
        assert_eq!(rolled[0].points[0].1, 5.0);
        assert_eq!(rolled[0].labels.get("job"), Some("wide"));
        // Steady state: the next round clips the same 5, cumulatively 10.
        scraper.scrape_once(2_000);
        let rolled = db.query_instant(&Selector::metric("teemon_overflow_series_total"), 3_000);
        assert_eq!(rolled[0].points[0].1, 10.0);
    }

    #[test]
    fn job_budget_is_shared_across_targets_and_released_on_removal() {
        let db = TimeSeriesDb::new();
        let budgets = CardinalityBudgets::new();
        budgets.set_job_limit("pool", 5);
        let scraper = Scraper::new(db.clone()).with_budgets(Arc::clone(&budgets));
        scraper.add_collector(
            ScrapeTargetConfig::new("pool", "a:1"),
            registry_collector("pool", wide_registry(4)),
        );
        scraper.add_collector(
            ScrapeTargetConfig::new("pool", "b:1"),
            registry_collector("pool", wide_registry(4)),
        );
        scraper.scrape_once(1_000);
        // First target took 4 of the pool, the second got the remaining 1.
        assert_eq!(budgets.job_used("pool"), 5);
        assert_eq!(db.query_instant(&Selector::metric("m"), 2_000).len(), 5);
        // Removing the first target gives its 4 back …
        assert_eq!(scraper.remove_instance("a:1"), 1);
        assert_eq!(budgets.job_used("pool"), 1);
        // … and the survivor's next repair (forced by a shape change) can
        // now admit its full set.
        let registry = wide_registry(4);
        registry.gauge_family("extra", "new").default_instance().set(1.0);
        assert_eq!(scraper.remove_instance("b:1"), 1);
        scraper.add_collector(
            ScrapeTargetConfig::new("pool", "b:1"),
            registry_collector("pool", registry),
        );
        scraper.scrape_once(2_000);
        assert_eq!(budgets.job_used("pool"), 5);
        let m = db.query_range(&Selector::metric("m"), 1_500, 3_000);
        assert_eq!(m.len(), 4, "survivor's own series all admitted after release");
    }

    #[test]
    fn unlimited_jobs_are_untouched_by_the_budget_pool() {
        let db = TimeSeriesDb::new();
        let budgets = CardinalityBudgets::new();
        budgets.set_job_limit("other", 1);
        let scraper = Scraper::new(db.clone()).with_budgets(budgets);
        scraper.add_collector(
            ScrapeTargetConfig::new("free", "n1:1"),
            registry_collector("free", wide_registry(6)),
        );
        scraper.scrape_once(1_000);
        assert_eq!(db.query_instant(&Selector::metric("m"), 2_000).len(), 6);
        assert!(db
            .query_instant(&Selector::metric("teemon_overflow_series_total"), 2_000)
            .is_empty());
    }

    #[test]
    fn push_lane_budget_clips_and_reports_overflow() {
        let db = TimeSeriesDb::new();
        let budgets = CardinalityBudgets::new();
        budgets.set_job_limit("push", 2);
        let registry = wide_registry(5);
        let mut lane = PushLane::new(db.clone(), &ScrapeTargetConfig::new("push", "w:1"))
            .with_budgets(Arc::clone(&budgets));
        let outcome = lane.push(&registry.gather(), 1_000);
        assert_eq!(outcome.scraped, 5);
        assert_eq!(outcome.ingested, 2);
        assert_eq!(outcome.overflow, 3);
        assert_eq!(budgets.job_used("push"), 2);
        assert_eq!(db.query_instant(&Selector::metric("m"), 2_000).len(), 2);
        let rolled = db.query_instant(&Selector::metric("teemon_overflow_series_total"), 2_000);
        assert_eq!(rolled[0].points[0].1, 3.0);
        // Dropping the lane releases its admissions back to the pool.
        drop(lane);
        assert_eq!(budgets.job_used("push"), 0);
    }

    #[test]
    fn budget_raise_readmits_on_next_repair() {
        let db = TimeSeriesDb::new();
        let budgets = CardinalityBudgets::new();
        budgets.set_job_limit("j", 1);
        let registry = wide_registry(3);
        let mut lane = PushLane::new(db.clone(), &ScrapeTargetConfig::new("j", "w:1"))
            .with_budgets(Arc::clone(&budgets));
        let first = lane.push(&registry.gather(), 1_000);
        assert_eq!((first.ingested, first.overflow), (1, 2));
        // Raising the limit alone does not disturb the warm path …
        budgets.set_job_limit("j", 10);
        let warm = lane.push(&registry.gather(), 2_000);
        assert_eq!((warm.ingested, warm.overflow), (1, 2));
        // … but the next shape change repairs under the new allowance.
        registry.gauge_family("extra", "new").default_instance().set(1.0);
        let repaired = lane.push(&registry.gather(), 3_000);
        assert_eq!(repaired.overflow, 0);
        assert_eq!(db.query_instant(&Selector::metric("m"), 4_000).len(), 3);
    }
}
