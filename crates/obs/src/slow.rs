//! The fixed-capacity slow-query ring buffer.
//!
//! Range queries whose measured wall time exceeds the (runtime-adjustable)
//! threshold are recorded here by `teemon_query`: the query text is copied
//! into a fixed byte slot (truncated, never allocated), together with the
//! wall time, the samples-decoded count and whether the streaming evaluator
//! or the per-step fallback answered it.  The ring keeps the most recent
//! [`CAPACITY`] entries; the aggregate count is exported as the
//! `teemon_query_slow_total` probe, while [`slow_queries`] hands operators
//! the actual offenders (allocating — a cold diagnostic path, not a scrape
//! path).

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{LockClass, Mutex};

use crate::probes;

/// Maximum number of retained slow queries.
pub const CAPACITY: usize = 32;

/// Bytes of query text kept per entry (longer queries are truncated).
pub const TEXT_CAPACITY: usize = 120;

/// Default threshold: queries slower than 10 ms are slow.
pub const DEFAULT_THRESHOLD_NS: u64 = 10_000_000;

static THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_THRESHOLD_NS);

/// One recorded slow query (the owned, public view).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQuery {
    /// The query text, truncated to [`TEXT_CAPACITY`] bytes.
    pub query: String,
    /// Measured wall time in seconds.
    pub wall_seconds: f64,
    /// Samples decoded while answering (0 for fallback evaluations, which
    /// do not stream-decode).
    pub samples_decoded: u64,
    /// Whether the streaming evaluator answered it.
    pub streamed: bool,
}

/// Fixed-size ring slot; copying into it never allocates.
#[derive(Clone, Copy)]
struct Entry {
    text: [u8; TEXT_CAPACITY],
    len: u8,
    wall_ns: u64,
    samples_decoded: u64,
    streamed: bool,
}

const EMPTY: Entry =
    Entry { text: [0; TEXT_CAPACITY], len: 0, wall_ns: 0, samples_decoded: 0, streamed: false };

struct Ring {
    entries: [Entry; CAPACITY],
    /// Total recorded ever; `next % CAPACITY` is the slot to overwrite.
    next: u64,
}

static RING: std::sync::OnceLock<Mutex<Ring>> = std::sync::OnceLock::new();

/// The ring singleton.  `Mutex::named` registers the lock class at runtime,
/// so the first caller initialises the cell; later calls are a plain load.
fn ring() -> &'static Mutex<Ring> {
    RING.get_or_init(|| {
        Mutex::named(
            Ring { entries: [EMPTY; CAPACITY], next: 0 },
            LockClass::new("obs.slow_queries"),
        )
    })
}

/// The current slow-query threshold in nanoseconds.
pub fn threshold_ns() -> u64 {
    THRESHOLD_NS.load(Ordering::Relaxed)
}

/// Sets the slow-query threshold (seconds).  Non-positive values disable
/// recording entirely.
pub fn set_threshold_seconds(seconds: f64) {
    let ns = if seconds <= 0.0 { u64::MAX } else { (seconds * 1e9) as u64 };
    THRESHOLD_NS.store(ns.max(1), Ordering::Relaxed);
}

/// Records `query` if `wall_ns` crosses the threshold; returns whether it
/// did.  Copies at most [`TEXT_CAPACITY`] bytes of the text — no allocation.
pub fn maybe_record(query: &str, wall_ns: u64, samples_decoded: u64, streamed: bool) -> bool {
    if wall_ns < threshold_ns() {
        return false;
    }
    probes::QUERY_SLOW.inc();
    let mut ring = ring().lock();
    let slot = (ring.next % CAPACITY as u64) as usize;
    ring.next += 1;
    if let Some(entry) = ring.entries.get_mut(slot) {
        // Truncate on a char boundary so the copy round-trips as UTF-8.
        let mut take = query.len().min(TEXT_CAPACITY);
        while take > 0 && !query.is_char_boundary(take) {
            take -= 1;
        }
        entry.text = [0; TEXT_CAPACITY];
        if let (Some(dst), Some(src)) = (entry.text.get_mut(..take), query.as_bytes().get(..take)) {
            dst.copy_from_slice(src);
        }
        entry.len = take as u8;
        entry.wall_ns = wall_ns;
        entry.samples_decoded = samples_decoded;
        entry.streamed = streamed;
    }
    true
}

/// The retained slow queries, most recent first (allocates; diagnostic
/// path).
pub fn slow_queries() -> Vec<SlowQuery> {
    let ring = ring().lock();
    let recorded = ring.next.min(CAPACITY as u64) as usize;
    let mut out = Vec::with_capacity(recorded);
    for back in 1..=recorded {
        let slot = ((ring.next - back as u64) % CAPACITY as u64) as usize;
        let Some(entry) = ring.entries.get(slot) else { continue };
        let text = entry.text.get(..entry.len as usize).unwrap_or(&[]);
        out.push(SlowQuery {
            query: String::from_utf8_lossy(text).into_owned(),
            wall_seconds: entry.wall_ns as f64 / 1e9,
            samples_decoded: entry.samples_decoded,
            streamed: entry.streamed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring and the `QUERY_SLOW` counter are global; serialise the tests
    /// that assert on them.
    fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
        static GUARD: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn threshold_gates_recording() {
        let _guard = test_guard();
        let before = probes::QUERY_SLOW.get();
        assert!(!maybe_record("fast", 1, 0, true));
        assert_eq!(probes::QUERY_SLOW.get(), before);
        assert!(maybe_record("sum(rate(x[5m]))", u64::MAX / 2, 42, true));
        assert_eq!(probes::QUERY_SLOW.get(), before + 1);
        let newest = slow_queries().into_iter().next().expect("just recorded");
        assert_eq!(newest.query, "sum(rate(x[5m]))");
        assert_eq!(newest.samples_decoded, 42);
        assert!(newest.streamed);
    }

    #[test]
    fn ring_keeps_the_most_recent_entries() {
        let _guard = test_guard();
        for i in 0..(CAPACITY + 3) {
            assert!(maybe_record(&format!("q{i}"), u64::MAX / 2, i as u64, false));
        }
        let entries = slow_queries();
        assert_eq!(entries.len(), CAPACITY);
        assert_eq!(
            entries.first().map(|e| e.query.as_str()),
            Some(format!("q{}", CAPACITY + 2).as_str())
        );
    }

    #[test]
    fn long_queries_truncate_on_char_boundaries() {
        let _guard = test_guard();
        let long = "é".repeat(TEXT_CAPACITY); // 2 bytes per char
        assert!(maybe_record(&long, u64::MAX / 2, 0, true));
        let newest = slow_queries().into_iter().next().expect("recorded");
        assert!(newest.query.len() <= TEXT_CAPACITY);
        assert!(newest.query.chars().all(|c| c == 'é'));
    }
}
