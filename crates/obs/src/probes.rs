//! The static registry of engine probes.
//!
//! Every probe is a fixed slot — a relaxed-atomic [`Counter`], a bit-cast
//! [`Gauge`], a per-shard array of either, or a [`LogLinearHist`] — declared
//! `static` here and recorded into directly by the engine crates.  There is
//! no registration step, no locking and no allocation anywhere on the record
//! path; [`crate::ObsCollector`] and [`crate::SelfSnapshot`] read the same
//! slots when the engine scrapes itself.
//!
//! The probe surface (what a `teemon self` dashboard can query) is listed in
//! [`registry`]; names follow the metric names the collector exports.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::clock::Stopwatch;
use crate::hist::LogLinearHist;

/// Number of storage lock shards the per-shard probes cover.  Must equal
/// `teemon_tsdb::SHARD_COUNT`; the tsdb crate asserts the equality at
/// compile time (obs cannot depend on tsdb — the probes sit *below* it).
pub const SHARDS: usize = 16;

/// A monotonically increasing relaxed-atomic counter probe.
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` position).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`: one relaxed `fetch_add`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value gauge probe storing `f64` bits in a relaxed atomic.
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static` position).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the value: one relaxed store.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`Counter`] per storage shard.  Out-of-range shard indices are ignored
/// rather than panicking — the recorder hot path must not abort the engine.
pub struct ShardCounters([Counter; SHARDS]);

impl ShardCounters {
    /// Zeroed per-shard counters.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Counter = Counter::new();
        Self([ZERO; SHARDS])
    }

    /// Adds `n` to shard `shard`'s counter.
    #[inline]
    pub fn add(&self, shard: usize, n: u64) {
        if let Some(counter) = self.0.get(shard) {
            counter.add(n);
        }
    }

    /// Current value of shard `shard` (0 when out of range).
    pub fn get(&self, shard: usize) -> u64 {
        self.0.get(shard).map(Counter::get).unwrap_or(0)
    }
}

impl Default for ShardCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// A [`Gauge`] per storage shard.
pub struct ShardGauges([Gauge; SHARDS]);

impl ShardGauges {
    /// Zeroed per-shard gauges.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: Gauge = Gauge::new();
        Self([ZERO; SHARDS])
    }

    /// Sets shard `shard`'s gauge.
    #[inline]
    pub fn set(&self, shard: usize, value: f64) {
        if let Some(gauge) = self.0.get(shard) {
            gauge.set(value);
        }
    }

    /// Current value of shard `shard` (0 when out of range).
    pub fn get(&self, shard: usize) -> f64 {
        self.0.get(shard).map(Gauge::get).unwrap_or(0.0)
    }
}

impl Default for ShardGauges {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII span timer: captures a [`Stopwatch`] at construction and records the
/// elapsed nanoseconds into its histogram on drop.  Two relaxed `fetch_add`s
/// plus two monotonic clock reads per span, no allocation.
pub struct Span {
    hist: &'static LogLinearHist,
    watch: Stopwatch,
}

impl Span {
    /// Starts a span recording into `hist` when dropped.
    #[inline]
    pub fn start(hist: &'static LogLinearHist) -> Self {
        Self { hist, watch: Stopwatch::start() }
    }

    /// Elapsed nanoseconds so far (the span keeps running).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.watch.elapsed_ns()
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        self.hist.record_ns(self.watch.elapsed_ns());
    }
}

// ---------------------------------------------------------------------------
// Ingest layer (recorded by `teemon_tsdb::scrape` / `storage`)
// ---------------------------------------------------------------------------

/// Scrape rounds that touched at least one target.
pub static SCRAPE_ROUNDS: Counter = Counter::new();
/// Measured wall time of whole scrape rounds.
pub static SCRAPE_ROUND_NS: LogLinearHist = LogLinearHist::new();
/// Per-target collect stage (endpoint snapshot production).
pub static SCRAPE_COLLECT_NS: LogLinearHist = LogLinearHist::new();
/// Per-target cache-walk stage (identity verification / repair).
pub static SCRAPE_CACHE_WALK_NS: LogLinearHist = LogLinearHist::new();
/// Per-target batch-append stage (storage writes incl. stale repair).
pub static SCRAPE_APPEND_NS: LogLinearHist = LogLinearHist::new();
/// Fast-lane rounds whose scrape cache verified positionally.
pub static CACHE_HITS: Counter = Counter::new();
/// Fast-lane rounds that had to rebuild the scrape cache (churn).
pub static CACHE_REBUILDS: Counter = Counter::new();
/// Stale series handles encountered during batch appends.
pub static STALE_HANDLES: Counter = Counter::new();
/// Samples appended per storage shard (the shard heat map).
pub static SHARD_APPENDS: ShardCounters = ShardCounters::new();

// ---------------------------------------------------------------------------
// Storage diagnostics (published once per scrape round from `StorageStats`)
// ---------------------------------------------------------------------------

/// Estimated bytes resident in sample storage.
pub static STORAGE_RESIDENT_BYTES: Gauge = Gauge::new();
/// Stored samples (a gauge: retention shrinks it).
pub static STORAGE_SAMPLES: Gauge = Gauge::new();
/// Average resident bytes per stored sample.
pub static STORAGE_BYTES_PER_SAMPLE: Gauge = Gauge::new();
/// Number of distinct series.
pub static STORAGE_SERIES: Gauge = Gauge::new();
/// Samples rejected as out of order, cumulative.
pub static STORAGE_REJECTED_SAMPLES: Gauge = Gauge::new();
/// Series resident per storage shard (the imbalance view).
pub static SHARD_SERIES: ShardGauges = ShardGauges::new();
/// Generation of each storage shard (bumps on eviction / drop).
pub static SHARD_GENERATIONS: ShardGauges = ShardGauges::new();
/// Live interned symbols (names, label keys and values).
pub static STORAGE_SYMBOLS: Gauge = Gauge::new();
/// Estimated bytes held by the symbol table (strings + slot overhead).
pub static STORAGE_SYMBOL_BYTES: Gauge = Gauge::new();
/// Estimated bytes held by the per-shard postings indexes.
pub static STORAGE_INDEX_BYTES: Gauge = Gauge::new();
/// Symbols garbage-collected at meta-log rotation points, cumulative.
pub static SYMBOLS_SWEPT: Counter = Counter::new();
/// Series rejected by per-target/per-job cardinality budgets at the scrape
/// edge, cumulative.
pub static SCRAPE_BUDGET_REJECTED: Counter = Counter::new();

// ---------------------------------------------------------------------------
// Durability / WAL (recorded by `teemon_tsdb::wal` and crash recovery)
// ---------------------------------------------------------------------------

/// Bytes appended to write-ahead logs (meta log + shard segments).
pub static WAL_BYTES_WRITTEN: Counter = Counter::new();
/// Measured wall time of WAL fsyncs.
pub static WAL_FSYNC_NS: LogLinearHist = LogLinearHist::new();
/// WAL records applied during crash recovery.
pub static WAL_RECORDS_REPLAYED: Counter = Counter::new();
/// Corrupt-tail truncation events during recovery (one per salvaged file).
pub static WAL_SALVAGE: Counter = Counter::new();
/// Bytes discarded by corrupt-tail truncation during recovery.
pub static WAL_SALVAGED_BYTES: Counter = Counter::new();
/// WAL records discarded during recovery (uncommitted tail rounds).
pub static WAL_RECORDS_DROPPED: Counter = Counter::new();
/// Duration of the last crash recovery, in seconds.
pub static WAL_RECOVERY_SECONDS: Gauge = Gauge::new();
/// Shards whose WAL or snapshot was unreadable and came up empty.
pub static WAL_FAILED_SHARDS: Gauge = Gauge::new();
/// Scrape rounds whose WAL flush reported a write/fsync failure — the round
/// was served from memory but its durability was lost.
pub static WAL_UNCLEAN_ROUNDS: Counter = Counter::new();

// ---------------------------------------------------------------------------
// Query layer (recorded by `teemon_query`)
// ---------------------------------------------------------------------------

/// Range queries answered by the streaming evaluator.
pub static QUERY_STREAMED: Counter = Counter::new();
/// Range queries that fell back to the per-step oracle.
pub static QUERY_FALLBACK: Counter = Counter::new();
/// Chunk samples decoded by streaming window machines.
pub static QUERY_SAMPLES_DECODED: Counter = Counter::new();
/// Window aggregate rebuilds (numeric-drift resets), cumulative.
pub static QUERY_WINDOW_REBUILDS: Counter = Counter::new();
/// Measured wall time of range queries.
pub static QUERY_NS: LogLinearHist = LogLinearHist::new();
/// Range queries slower than the slow-query threshold.
pub static QUERY_SLOW: Counter = Counter::new();

// ---------------------------------------------------------------------------
// HTTP serving edge (recorded by `teemon_server`'s middleware stack)
// ---------------------------------------------------------------------------

/// Connections accepted by the HTTP listener.
pub static HTTP_CONNECTIONS: Counter = Counter::new();
/// Requests that entered the middleware stack (sheds happen before this).
pub static HTTP_REQUESTS: Counter = Counter::new();
/// Responses sent with a 2xx status.
pub static HTTP_RESPONSES_2XX: Counter = Counter::new();
/// Responses sent with a 4xx status.
pub static HTTP_RESPONSES_4XX: Counter = Counter::new();
/// Responses sent with a 5xx status.
pub static HTTP_RESPONSES_5XX: Counter = Counter::new();
/// Connections shed before parsing because the in-flight gate was full (503).
pub static HTTP_SHED: Counter = Counter::new();
/// Handler panics caught by the panic shield (500, connection closed).
pub static HTTP_PANICS: Counter = Counter::new();
/// Requests rejected by the per-client token bucket (429).
pub static HTTP_RATE_LIMITED: Counter = Counter::new();
/// Slow-loris clients timed out while sending headers or body (408).
pub static HTTP_SLOW_CLIENTS: Counter = Counter::new();
/// Malformed requests rejected by the parser (400).
pub static HTTP_MALFORMED: Counter = Counter::new();
/// Requests rejected for exceeding a size limit (413).
pub static HTTP_OVERSIZED: Counter = Counter::new();
/// Requests currently being served.
pub static HTTP_INFLIGHT: Gauge = Gauge::new();
/// Measured wall time of handled requests (parse through response write).
pub static HTTP_REQUEST_NS: LogLinearHist = LogLinearHist::new();
/// Samples ingested through the remote-write endpoint.
pub static HTTP_INGESTED_SAMPLES: Counter = Counter::new();
/// In-flight requests drained to completion during graceful shutdown.
pub static HTTP_DRAINED: Counter = Counter::new();
/// Remote-write requests rejected by the per-request series budget (429).
pub static HTTP_CARDINALITY_REJECTED: Counter = Counter::new();

/// One row of the probe registry: a probe's exported metric name, its shape
/// and which engine layer records it.
#[derive(Debug, Clone, Copy)]
pub struct ProbeDesc {
    /// Metric name the collector exports (histograms expand into
    /// `_bucket`/`_sum`/`_count` on the wire).
    pub name: &'static str,
    /// Probe shape: `counter`, `gauge`, `histogram` or a per-`shard`/`class`
    /// labelled variant.
    pub kind: &'static str,
    /// The engine layer that records it.
    pub layer: &'static str,
    /// What the probe measures.
    pub help: &'static str,
}

/// The static probe registry: every engine self-metric the
/// [`crate::ObsCollector`] exports, with its shape and recording layer.
/// (Lock contention metrics are listed here too; their slots live in the
/// `parking_lot` shim's always-on `contention` table.)
pub const fn registry() -> &'static [ProbeDesc] {
    const REGISTRY: &[ProbeDesc] = &[
        ProbeDesc {
            name: "teemon_scrape_rounds_total",
            kind: "counter",
            layer: "ingest",
            help: "scrape rounds that touched at least one target",
        },
        ProbeDesc {
            name: "teemon_scrape_round_seconds",
            kind: "histogram",
            layer: "ingest",
            help: "measured wall time of whole scrape rounds",
        },
        ProbeDesc {
            name: "teemon_scrape_stage_seconds",
            kind: "histogram{stage}",
            layer: "ingest",
            help: "per-target stage timings: collect, cache_walk, append",
        },
        ProbeDesc {
            name: "teemon_scrape_cache_hits_total",
            kind: "counter",
            layer: "ingest",
            help: "fast-lane rounds verified positionally against the scrape cache",
        },
        ProbeDesc {
            name: "teemon_scrape_cache_rebuilds_total",
            kind: "counter",
            layer: "ingest",
            help: "fast-lane cache repairs after series churn",
        },
        ProbeDesc {
            name: "teemon_scrape_stale_handles_total",
            kind: "counter",
            layer: "ingest",
            help: "stale series handles hit during batch appends",
        },
        ProbeDesc {
            name: "teemon_tsdb_shard_appends_total",
            kind: "counter{shard}",
            layer: "ingest",
            help: "samples appended per storage shard (heat map)",
        },
        ProbeDesc {
            name: "teemon_tsdb_resident_bytes",
            kind: "gauge",
            layer: "storage",
            help: "estimated bytes resident in sample storage",
        },
        ProbeDesc {
            name: "teemon_tsdb_samples",
            kind: "gauge",
            layer: "storage",
            help: "stored samples (retention shrinks it)",
        },
        ProbeDesc {
            name: "teemon_tsdb_bytes_per_sample",
            kind: "gauge",
            layer: "storage",
            help: "average resident bytes per stored sample",
        },
        ProbeDesc {
            name: "teemon_tsdb_series",
            kind: "gauge",
            layer: "storage",
            help: "distinct series resident",
        },
        ProbeDesc {
            name: "teemon_tsdb_rejected_samples",
            kind: "gauge",
            layer: "storage",
            help: "samples rejected as out of order, cumulative",
        },
        ProbeDesc {
            name: "teemon_tsdb_shard_series",
            kind: "gauge{shard}",
            layer: "storage",
            help: "series resident per storage shard (imbalance view)",
        },
        ProbeDesc {
            name: "teemon_tsdb_shard_generation",
            kind: "gauge{shard}",
            layer: "storage",
            help: "storage shard generation (bumps on eviction/drop)",
        },
        ProbeDesc {
            name: "teemon_tsdb_symbols",
            kind: "gauge",
            layer: "storage",
            help: "live interned symbols (names, label keys and values)",
        },
        ProbeDesc {
            name: "teemon_tsdb_symbol_bytes",
            kind: "gauge",
            layer: "storage",
            help: "estimated bytes held by the symbol table",
        },
        ProbeDesc {
            name: "teemon_tsdb_index_bytes",
            kind: "gauge",
            layer: "storage",
            help: "estimated bytes held by the per-shard postings indexes",
        },
        ProbeDesc {
            name: "teemon_tsdb_symbols_swept_total",
            kind: "counter",
            layer: "storage",
            help: "symbols garbage-collected at meta-log rotation points",
        },
        ProbeDesc {
            name: "teemon_scrape_budget_rejected_total",
            kind: "counter",
            layer: "ingest",
            help: "series rejected by per-target/per-job cardinality budgets at the scrape edge",
        },
        ProbeDesc {
            name: "teemon_wal_bytes_written_total",
            kind: "counter",
            layer: "storage",
            help: "bytes appended to write-ahead logs (meta log + shard segments)",
        },
        ProbeDesc {
            name: "teemon_wal_fsync_seconds",
            kind: "histogram",
            layer: "storage",
            help: "measured wall time of WAL fsyncs",
        },
        ProbeDesc {
            name: "teemon_wal_records_replayed_total",
            kind: "counter",
            layer: "storage",
            help: "WAL records applied during crash recovery",
        },
        ProbeDesc {
            name: "teemon_wal_salvage_total",
            kind: "counter",
            layer: "storage",
            help: "corrupt-tail truncation events during recovery (per salvaged file)",
        },
        ProbeDesc {
            name: "teemon_wal_salvaged_bytes_total",
            kind: "counter",
            layer: "storage",
            help: "bytes discarded by corrupt-tail truncation during recovery",
        },
        ProbeDesc {
            name: "teemon_wal_records_dropped_total",
            kind: "counter",
            layer: "storage",
            help: "WAL records discarded during recovery (uncommitted tail rounds)",
        },
        ProbeDesc {
            name: "teemon_wal_recovery_seconds",
            kind: "gauge",
            layer: "storage",
            help: "duration of the last crash recovery",
        },
        ProbeDesc {
            name: "teemon_wal_failed_shards",
            kind: "gauge",
            layer: "storage",
            help: "shards whose WAL or snapshot was unreadable and came up empty",
        },
        ProbeDesc {
            name: "teemon_wal_unclean_rounds_total",
            kind: "counter",
            layer: "storage",
            help: "scrape rounds whose WAL flush hit a write/fsync failure (durability lost)",
        },
        ProbeDesc {
            name: "teemon_query_range_total",
            kind: "counter{mode}",
            layer: "query",
            help: "range queries by evaluation mode: streamed or fallback",
        },
        ProbeDesc {
            name: "teemon_query_samples_decoded_total",
            kind: "counter",
            layer: "query",
            help: "chunk samples decoded by streaming window machines",
        },
        ProbeDesc {
            name: "teemon_query_window_rebuilds_total",
            kind: "counter",
            layer: "query",
            help: "window aggregate rebuilds (numeric-drift resets)",
        },
        ProbeDesc {
            name: "teemon_query_seconds",
            kind: "histogram",
            layer: "query",
            help: "measured wall time of range queries",
        },
        ProbeDesc {
            name: "teemon_query_slow_total",
            kind: "counter",
            layer: "query",
            help: "range queries over the slow-query threshold",
        },
        ProbeDesc {
            name: "teemon_http_connections_total",
            kind: "counter",
            layer: "http",
            help: "connections accepted by the HTTP listener",
        },
        ProbeDesc {
            name: "teemon_http_requests_total",
            kind: "counter",
            layer: "http",
            help: "requests that entered the middleware stack",
        },
        ProbeDesc {
            name: "teemon_http_responses_total",
            kind: "counter{class}",
            layer: "http",
            help: "responses sent, by status class: 2xx, 4xx, 5xx",
        },
        ProbeDesc {
            name: "teemon_http_shed_total",
            kind: "counter",
            layer: "http",
            help: "connections shed before parsing under overload (503)",
        },
        ProbeDesc {
            name: "teemon_http_panics_total",
            kind: "counter",
            layer: "http",
            help: "handler panics caught by the panic shield (500)",
        },
        ProbeDesc {
            name: "teemon_http_rate_limited_total",
            kind: "counter",
            layer: "http",
            help: "requests rejected by the per-client token bucket (429)",
        },
        ProbeDesc {
            name: "teemon_http_slow_clients_total",
            kind: "counter",
            layer: "http",
            help: "slow-loris clients timed out sending headers or body (408)",
        },
        ProbeDesc {
            name: "teemon_http_malformed_total",
            kind: "counter",
            layer: "http",
            help: "malformed requests rejected by the parser (400)",
        },
        ProbeDesc {
            name: "teemon_http_oversized_total",
            kind: "counter",
            layer: "http",
            help: "requests rejected for exceeding a size limit (413)",
        },
        ProbeDesc {
            name: "teemon_http_inflight",
            kind: "gauge",
            layer: "http",
            help: "requests currently being served",
        },
        ProbeDesc {
            name: "teemon_http_request_seconds",
            kind: "histogram",
            layer: "http",
            help: "measured wall time of handled requests",
        },
        ProbeDesc {
            name: "teemon_http_ingested_samples_total",
            kind: "counter",
            layer: "http",
            help: "samples ingested through the remote-write endpoint",
        },
        ProbeDesc {
            name: "teemon_http_drained_total",
            kind: "counter",
            layer: "http",
            help: "in-flight requests drained to completion during graceful shutdown",
        },
        ProbeDesc {
            name: "teemon_http_cardinality_rejected_total",
            kind: "counter",
            layer: "http",
            help: "remote-write requests rejected by the per-request series budget (429)",
        },
        ProbeDesc {
            name: "teemon_lock_acquires_total",
            kind: "counter{class}",
            layer: "locks",
            help: "lock acquisitions per lock class",
        },
        ProbeDesc {
            name: "teemon_lock_contended_total",
            kind: "counter{class}",
            layer: "locks",
            help: "acquisitions that found the lock held and waited",
        },
        ProbeDesc {
            name: "teemon_lock_wait_seconds",
            kind: "histogram{class}",
            layer: "locks",
            help: "wait time of contended acquisitions per lock class",
        },
    ];
    REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        static C: Counter = Counter::new();
        static G: Gauge = Gauge::new();
        C.add(3);
        C.inc();
        assert_eq!(C.get(), 4);
        G.set(2.5);
        assert_eq!(G.get(), 2.5);
    }

    #[test]
    fn shard_slots_ignore_out_of_range() {
        static SC: ShardCounters = ShardCounters::new();
        static SG: ShardGauges = ShardGauges::new();
        SC.add(3, 7);
        SC.add(SHARDS + 5, 1);
        assert_eq!(SC.get(3), 7);
        assert_eq!(SC.get(SHARDS + 5), 0);
        SG.set(0, 1.5);
        SG.set(usize::MAX, 9.0);
        assert_eq!(SG.get(0), 1.5);
    }

    #[test]
    fn span_records_on_drop() {
        static H: LogLinearHist = LogLinearHist::new();
        {
            let _span = Span::start(&H);
        }
        assert_eq!(H.count(), 1);
    }

    #[test]
    fn registry_lists_every_layer() {
        let layers: Vec<&str> = registry().iter().map(|p| p.layer).collect();
        for layer in ["ingest", "storage", "query", "http", "locks"] {
            assert!(layers.contains(&layer), "missing layer {layer}");
        }
    }
}
