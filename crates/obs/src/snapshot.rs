//! The allocation-free self-scrape view of the probe registry.
//!
//! [`SelfSnapshot`] holds every probe pre-expanded into scalar
//! [`FamilySnapshot`]s — histograms appear as explicit `_bucket` (with `le`
//! labels), `_sum` and `_count` families, per-shard and per-lock-class
//! probes as labelled points — so the sample stream is byte-identical to
//! what [`FamilySnapshot::for_each_sample`] would produce from the canonical
//! bucketed form, without the per-scrape `le` label allocation that
//! expansion performs.
//!
//! The structure (family names, label sets, point order) is built once;
//! [`SelfSnapshot::refresh`] re-walks the same emission sequence and only
//! overwrites the scalar values in place.  Label closures are never invoked
//! on the refresh path, so a warm refresh performs zero allocations — and
//! because point positions never move between rounds, the scraper's
//! positional target cache verifies on every self-scrape.  The layout is
//! rebuilt (allocating, rare) only when a new lock class registers in the
//! `parking_lot` contention table.

use parking_lot::contention;
use teemon_metrics::{format_bound, FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};

use crate::hist::LogLinearHist;
use crate::probes;

/// One emission step: build mode materialises families and points, refresh
/// mode advances cursors and overwrites values.  `labels` is a thunk so the
/// refresh path never pays for label construction.
trait Emit {
    fn family(&mut self, name: &'static str, help: &'static str, kind: MetricKind);
    fn point(&mut self, labels: &mut dyn FnMut() -> Labels, value: f64);
}

/// Build mode: allocates the family/point structure.
struct BuildEmit {
    families: Vec<FamilySnapshot>,
}

impl Emit for BuildEmit {
    fn family(&mut self, name: &'static str, help: &'static str, kind: MetricKind) {
        self.families.push(FamilySnapshot::new(name, help, kind));
    }

    fn point(&mut self, labels: &mut dyn FnMut() -> Labels, value: f64) {
        if let Some(family) = self.families.last_mut() {
            let value = match family.kind {
                MetricKind::Counter => PointValue::Counter(value),
                MetricKind::Gauge => PointValue::Gauge(value),
                _ => PointValue::Untyped(value),
            };
            family.points.push(MetricPoint::new(labels(), value));
        }
    }
}

/// Refresh mode: walks the already-built structure with a (family, point)
/// cursor and overwrites scalar values only.  Any cursor/shape mismatch
/// (a probe emitted more or fewer points than the built layout) flips
/// `mismatch`, telling the caller to rebuild.
struct RefreshEmit<'a> {
    families: &'a mut [FamilySnapshot],
    family: Option<usize>,
    point: usize,
    mismatch: bool,
}

impl Emit for RefreshEmit<'_> {
    fn family(&mut self, _name: &'static str, _help: &'static str, _kind: MetricKind) {
        let next = self.family.map_or(0, |f| f + 1);
        if let Some(family) = self.family {
            // The previous family must have been walked exactly.
            if self.families.get(family).map(|f| f.points.len()) != Some(self.point) {
                self.mismatch = true;
            }
        }
        self.family = Some(next);
        self.point = 0;
        if next >= self.families.len() {
            self.mismatch = true;
        }
    }

    fn point(&mut self, _labels: &mut dyn FnMut() -> Labels, value: f64) {
        let slot = self
            .family
            .and_then(|f| self.families.get_mut(f))
            .and_then(|family| family.points.get_mut(self.point));
        match slot {
            Some(point) => {
                match &mut point.value {
                    PointValue::Counter(v) | PointValue::Gauge(v) | PointValue::Untyped(v) => {
                        *v = value;
                    }
                    _ => self.mismatch = true,
                }
                self.point += 1;
            }
            None => self.mismatch = true,
        }
    }
}

/// Emits one histogram as pre-expanded `_bucket`/`_sum`/`_count` scalar
/// families (cumulative counts, `le` labels via [`format_bound`] — identical
/// on the wire to the canonical bucketed expansion).
fn emit_hist(
    e: &mut dyn Emit,
    bucket_name: &'static str,
    sum_name: &'static str,
    count_name: &'static str,
    help: &'static str,
    hist: &LogLinearHist,
) {
    e.family(bucket_name, help, MetricKind::Counter);
    hist.for_each_cumulative(&mut |bound, cumulative| {
        e.point(&mut || Labels::new().with("le", format_bound(bound)), cumulative as f64);
    });
    e.family(sum_name, help, MetricKind::Counter);
    e.point(&mut Labels::new, hist.sum_ns() as f64 / 1e9);
    e.family(count_name, help, MetricKind::Counter);
    e.point(&mut Labels::new, hist.count() as f64);
}

/// Number of lock classes currently registered in the contention table.
fn lock_class_count() -> usize {
    let mut n = 0usize;
    contention::for_each(&mut |_| n += 1);
    n
}

/// The full emission sequence: every probe in [`probes::registry`] order —
/// ingest, storage, query, then the lock-contention table.  Called with a
/// [`BuildEmit`] to create the layout and a [`RefreshEmit`] to update it.
fn emit_all(e: &mut dyn Emit) {
    // --- ingest ---
    e.family(
        "teemon_scrape_rounds_total",
        "scrape rounds that touched at least one target",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::SCRAPE_ROUNDS.get() as f64);
    emit_hist(
        e,
        "teemon_scrape_round_seconds_bucket",
        "teemon_scrape_round_seconds_sum",
        "teemon_scrape_round_seconds_count",
        "measured wall time of whole scrape rounds",
        &probes::SCRAPE_ROUND_NS,
    );
    let stages: [(&str, &'static LogLinearHist); 3] = [
        ("collect", &probes::SCRAPE_COLLECT_NS),
        ("cache_walk", &probes::SCRAPE_CACHE_WALK_NS),
        ("append", &probes::SCRAPE_APPEND_NS),
    ];
    e.family(
        "teemon_scrape_stage_seconds_bucket",
        "per-target scrape stage timings",
        MetricKind::Counter,
    );
    for (stage, hist) in stages {
        hist.for_each_cumulative(&mut |bound, cumulative| {
            e.point(
                &mut || Labels::new().with("stage", stage).with("le", format_bound(bound)),
                cumulative as f64,
            );
        });
    }
    e.family(
        "teemon_scrape_stage_seconds_sum",
        "per-target scrape stage timings",
        MetricKind::Counter,
    );
    for (stage, hist) in stages {
        e.point(&mut || Labels::new().with("stage", stage), hist.sum_ns() as f64 / 1e9);
    }
    e.family(
        "teemon_scrape_stage_seconds_count",
        "per-target scrape stage timings",
        MetricKind::Counter,
    );
    for (stage, hist) in stages {
        e.point(&mut || Labels::new().with("stage", stage), hist.count() as f64);
    }
    e.family(
        "teemon_scrape_cache_hits_total",
        "fast-lane rounds verified positionally against the scrape cache",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::CACHE_HITS.get() as f64);
    e.family(
        "teemon_scrape_cache_rebuilds_total",
        "fast-lane cache repairs after series churn",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::CACHE_REBUILDS.get() as f64);
    e.family(
        "teemon_scrape_stale_handles_total",
        "stale series handles hit during batch appends",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::STALE_HANDLES.get() as f64);
    e.family(
        "teemon_tsdb_shard_appends_total",
        "samples appended per storage shard (heat map)",
        MetricKind::Counter,
    );
    for shard in 0..probes::SHARDS {
        e.point(
            &mut || Labels::new().with("shard", shard.to_string()),
            probes::SHARD_APPENDS.get(shard) as f64,
        );
    }

    // --- storage ---
    e.family(
        "teemon_tsdb_resident_bytes",
        "estimated bytes resident in sample storage",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_RESIDENT_BYTES.get());
    e.family("teemon_tsdb_samples", "stored samples (retention shrinks it)", MetricKind::Gauge);
    e.point(&mut Labels::new, probes::STORAGE_SAMPLES.get());
    e.family(
        "teemon_tsdb_bytes_per_sample",
        "average resident bytes per stored sample",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_BYTES_PER_SAMPLE.get());
    e.family("teemon_tsdb_series", "distinct series resident", MetricKind::Gauge);
    e.point(&mut Labels::new, probes::STORAGE_SERIES.get());
    e.family(
        "teemon_tsdb_rejected_samples",
        "samples rejected as out of order, cumulative",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_REJECTED_SAMPLES.get());
    e.family(
        "teemon_tsdb_shard_series",
        "series resident per storage shard (imbalance view)",
        MetricKind::Gauge,
    );
    for shard in 0..probes::SHARDS {
        e.point(
            &mut || Labels::new().with("shard", shard.to_string()),
            probes::SHARD_SERIES.get(shard),
        );
    }
    e.family(
        "teemon_tsdb_shard_generation",
        "storage shard generation (bumps on eviction/drop)",
        MetricKind::Gauge,
    );
    for shard in 0..probes::SHARDS {
        e.point(
            &mut || Labels::new().with("shard", shard.to_string()),
            probes::SHARD_GENERATIONS.get(shard),
        );
    }
    e.family(
        "teemon_tsdb_symbols",
        "live interned symbols (names, label keys and values)",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_SYMBOLS.get());
    e.family(
        "teemon_tsdb_symbol_bytes",
        "estimated bytes held by the symbol table",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_SYMBOL_BYTES.get());
    e.family(
        "teemon_tsdb_index_bytes",
        "estimated bytes held by the per-shard postings indexes",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::STORAGE_INDEX_BYTES.get());
    e.family(
        "teemon_tsdb_symbols_swept_total",
        "symbols garbage-collected at meta-log rotation points",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::SYMBOLS_SWEPT.get() as f64);
    e.family(
        "teemon_scrape_budget_rejected_total",
        "series rejected by per-target/per-job cardinality budgets at the scrape edge",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::SCRAPE_BUDGET_REJECTED.get() as f64);

    // --- durability / WAL ---
    e.family(
        "teemon_wal_bytes_written_total",
        "bytes appended to write-ahead logs",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_BYTES_WRITTEN.get() as f64);
    emit_hist(
        e,
        "teemon_wal_fsync_seconds_bucket",
        "teemon_wal_fsync_seconds_sum",
        "teemon_wal_fsync_seconds_count",
        "measured wall time of WAL fsyncs",
        &probes::WAL_FSYNC_NS,
    );
    e.family(
        "teemon_wal_records_replayed_total",
        "WAL records applied during crash recovery",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_RECORDS_REPLAYED.get() as f64);
    e.family(
        "teemon_wal_salvage_total",
        "corrupt-tail truncation events during recovery",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_SALVAGE.get() as f64);
    e.family(
        "teemon_wal_salvaged_bytes_total",
        "bytes discarded by corrupt-tail truncation during recovery",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_SALVAGED_BYTES.get() as f64);
    e.family(
        "teemon_wal_records_dropped_total",
        "WAL records discarded during recovery (uncommitted tail rounds)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_RECORDS_DROPPED.get() as f64);
    e.family(
        "teemon_wal_recovery_seconds",
        "duration of the last crash recovery",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::WAL_RECOVERY_SECONDS.get());
    e.family(
        "teemon_wal_failed_shards",
        "shards whose WAL or snapshot was unreadable and came up empty",
        MetricKind::Gauge,
    );
    e.point(&mut Labels::new, probes::WAL_FAILED_SHARDS.get());
    e.family(
        "teemon_wal_unclean_rounds_total",
        "scrape rounds whose WAL flush hit a write/fsync failure (durability lost)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::WAL_UNCLEAN_ROUNDS.get() as f64);

    // --- query ---
    e.family("teemon_query_range_total", "range queries by evaluation mode", MetricKind::Counter);
    e.point(&mut || Labels::new().with("mode", "streamed"), probes::QUERY_STREAMED.get() as f64);
    e.point(&mut || Labels::new().with("mode", "fallback"), probes::QUERY_FALLBACK.get() as f64);
    e.family(
        "teemon_query_samples_decoded_total",
        "chunk samples decoded by streaming window machines",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::QUERY_SAMPLES_DECODED.get() as f64);
    e.family(
        "teemon_query_window_rebuilds_total",
        "window aggregate rebuilds (numeric-drift resets)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::QUERY_WINDOW_REBUILDS.get() as f64);
    emit_hist(
        e,
        "teemon_query_seconds_bucket",
        "teemon_query_seconds_sum",
        "teemon_query_seconds_count",
        "measured wall time of range queries",
        &probes::QUERY_NS,
    );
    e.family(
        "teemon_query_slow_total",
        "range queries over the slow-query threshold",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::QUERY_SLOW.get() as f64);

    // --- http ---
    e.family(
        "teemon_http_connections_total",
        "connections accepted by the HTTP listener",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_CONNECTIONS.get() as f64);
    e.family(
        "teemon_http_requests_total",
        "requests that entered the middleware stack",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_REQUESTS.get() as f64);
    e.family("teemon_http_responses_total", "responses sent, by status class", MetricKind::Counter);
    e.point(&mut || Labels::new().with("class", "2xx"), probes::HTTP_RESPONSES_2XX.get() as f64);
    e.point(&mut || Labels::new().with("class", "4xx"), probes::HTTP_RESPONSES_4XX.get() as f64);
    e.point(&mut || Labels::new().with("class", "5xx"), probes::HTTP_RESPONSES_5XX.get() as f64);
    e.family(
        "teemon_http_shed_total",
        "connections shed before parsing under overload (503)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_SHED.get() as f64);
    e.family(
        "teemon_http_panics_total",
        "handler panics caught by the panic shield (500)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_PANICS.get() as f64);
    e.family(
        "teemon_http_rate_limited_total",
        "requests rejected by the per-client token bucket (429)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_RATE_LIMITED.get() as f64);
    e.family(
        "teemon_http_slow_clients_total",
        "slow-loris clients timed out sending headers or body (408)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_SLOW_CLIENTS.get() as f64);
    e.family(
        "teemon_http_malformed_total",
        "malformed requests rejected by the parser (400)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_MALFORMED.get() as f64);
    e.family(
        "teemon_http_oversized_total",
        "requests rejected for exceeding a size limit (413)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_OVERSIZED.get() as f64);
    e.family("teemon_http_inflight", "requests currently being served", MetricKind::Gauge);
    e.point(&mut Labels::new, probes::HTTP_INFLIGHT.get());
    emit_hist(
        e,
        "teemon_http_request_seconds_bucket",
        "teemon_http_request_seconds_sum",
        "teemon_http_request_seconds_count",
        "measured wall time of handled requests",
        &probes::HTTP_REQUEST_NS,
    );
    e.family(
        "teemon_http_ingested_samples_total",
        "samples ingested through the remote-write endpoint",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_INGESTED_SAMPLES.get() as f64);
    e.family(
        "teemon_http_drained_total",
        "in-flight requests drained to completion during graceful shutdown",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_DRAINED.get() as f64);
    e.family(
        "teemon_http_cardinality_rejected_total",
        "remote-write requests rejected by the per-request series budget (429)",
        MetricKind::Counter,
    );
    e.point(&mut Labels::new, probes::HTTP_CARDINALITY_REJECTED.get() as f64);

    // --- locks (one point per registered contention class) ---
    e.family("teemon_lock_acquires_total", "lock acquisitions per lock class", MetricKind::Counter);
    contention::for_each(&mut |class| {
        e.point(&mut || Labels::new().with("class", class.name), class.acquires as f64);
    });
    e.family(
        "teemon_lock_contended_total",
        "acquisitions that found the lock held and waited",
        MetricKind::Counter,
    );
    contention::for_each(&mut |class| {
        e.point(&mut || Labels::new().with("class", class.name), class.contended as f64);
    });
    e.family(
        "teemon_lock_wait_seconds_bucket",
        "wait time of contended acquisitions per lock class",
        MetricKind::Counter,
    );
    contention::for_each(&mut |class| {
        let mut cumulative = 0u64;
        for (i, bucket) in class.wait_buckets.iter().enumerate() {
            cumulative += bucket;
            let bound = if i >= contention::WAIT_BUCKETS - 1 {
                f64::INFINITY
            } else {
                contention::bucket_upper_bound_ns(i) as f64 / 1e9
            };
            e.point(
                &mut || Labels::new().with("class", class.name).with("le", format_bound(bound)),
                cumulative as f64,
            );
        }
    });
    e.family(
        "teemon_lock_wait_seconds_sum",
        "wait time of contended acquisitions per lock class",
        MetricKind::Counter,
    );
    contention::for_each(&mut |class| {
        e.point(&mut || Labels::new().with("class", class.name), class.wait_ns_sum as f64 / 1e9);
    });
    e.family(
        "teemon_lock_wait_seconds_count",
        "wait time of contended acquisitions per lock class",
        MetricKind::Counter,
    );
    contention::for_each(&mut |class| {
        e.point(&mut || Labels::new().with("class", class.name), class.contended as f64);
    });
}

/// The engine's own telemetry, pre-expanded for allocation-free refresh.
///
/// Build one with [`SelfSnapshot::new`], then call
/// [`SelfSnapshot::refresh`] before each read of
/// [`SelfSnapshot::families`].  A warm refresh (no new lock classes since
/// the last build) allocates nothing and keeps every family and point at a
/// stable position.
pub struct SelfSnapshot {
    families: Vec<FamilySnapshot>,
    lock_classes: usize,
}

impl SelfSnapshot {
    /// Builds the expanded family layout from the current probe values.
    pub fn new() -> Self {
        let mut snap = Self { families: Vec::new(), lock_classes: 0 };
        snap.rebuild();
        snap
    }

    fn rebuild(&mut self) {
        self.lock_classes = lock_class_count();
        let mut build = BuildEmit { families: Vec::new() };
        emit_all(&mut build);
        self.families = build.families;
    }

    /// Re-reads every probe into the existing layout.  Allocation-free on
    /// the warm path; rebuilds (allocating) only when the set of registered
    /// lock classes changed or the layout no longer matches.
    pub fn refresh(&mut self) {
        if lock_class_count() != self.lock_classes {
            self.rebuild();
            return;
        }
        let mut refresh =
            RefreshEmit { families: &mut self.families, family: None, point: 0, mismatch: false };
        emit_all(&mut refresh);
        if refresh.mismatch {
            self.rebuild();
        }
    }

    /// The expanded families (call [`SelfSnapshot::refresh`] first for
    /// current values).
    pub fn families(&self) -> &[FamilySnapshot] {
        &self.families
    }
}

impl Default for SelfSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::hist;

    #[test]
    fn layout_expands_histograms_like_the_canonical_form() {
        let snap = SelfSnapshot::new();
        let bucket = snap
            .families()
            .iter()
            .find(|f| f.name == "teemon_scrape_round_seconds_bucket")
            .expect("bucket family");
        assert_eq!(bucket.points.len(), hist::BUCKETS);
        for (i, point) in bucket.points.iter().enumerate() {
            assert_eq!(
                point.labels.get("le").map(str::to_owned),
                Some(format_bound(hist::bound_seconds(i))),
            );
        }
        let last = bucket.points.last().expect("at least one bucket");
        assert_eq!(last.labels.get("le"), Some("+Inf"));
    }

    #[test]
    fn refresh_updates_values_without_moving_points() {
        let mut snap = SelfSnapshot::new();
        let layout: Vec<(String, usize)> =
            snap.families().iter().map(|f| (f.name.clone(), f.points.len())).collect();
        let find = |snap: &SelfSnapshot, name: &str| -> f64 {
            snap.families()
                .iter()
                .find(|f| f.name == name)
                .and_then(|f| f.points.first())
                .map(|p| p.value.scalar())
                .expect("family with a point")
        };
        let before = find(&snap, "teemon_scrape_cache_hits_total");
        probes::CACHE_HITS.add(3);
        probes::STORAGE_SERIES.set(1234.0);
        snap.refresh();
        // Values moved, structure did not (other tests may also bump probes,
        // so assert monotonically).
        assert!(find(&snap, "teemon_scrape_cache_hits_total") >= before + 3.0);
        assert_eq!(find(&snap, "teemon_tsdb_series"), 1234.0);
        let after: Vec<(String, usize)> =
            snap.families().iter().map(|f| (f.name.clone(), f.points.len())).collect();
        assert_eq!(layout, after);
    }

    #[test]
    fn lock_families_track_registered_classes() {
        // Registering a class (by constructing a named lock) must surface a
        // labelled point after refresh even though the layout was built
        // earlier.
        let mut snap = SelfSnapshot::new();
        let lock = parking_lot::Mutex::named(0u32, parking_lot::LockClass::new("obs.test_class"));
        *lock.lock() += 1;
        snap.refresh();
        let acquires = snap
            .families()
            .iter()
            .find(|f| f.name == "teemon_lock_acquires_total")
            .expect("acquires family");
        let point = acquires
            .points
            .iter()
            .find(|p| p.labels.get("class") == Some("obs.test_class"))
            .expect("class point after refresh rebuild");
        assert!(point.value.scalar() >= 1.0);
    }

    #[test]
    fn every_registry_probe_is_exported() {
        // Each registry row's metric name must appear among the expanded
        // families (histograms via their `_bucket` expansion).
        let snap = SelfSnapshot::new();
        for probe in probes::registry() {
            let found = snap
                .families()
                .iter()
                .any(|f| f.name == probe.name || f.name == format!("{}_bucket", probe.name));
            assert!(found, "probe {} not exported", probe.name);
        }
    }
}
