//! The monotonic clock behind every span timer and measured duration.
//!
//! Centralising the wall-clock read here keeps the rest of the engine free
//! of `Instant` — in particular `teemon_query`, whose sources are gated by
//! the `no-wallclock` lint (query *evaluation* takes `now_ms` as an input;
//! only *self-timing* may read the host clock, and it does so through this
//! module).  Reading the clock never allocates, so timed sections stay
//! eligible for the allocation-free proofs.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since this process first read the clock.  Monotonic,
/// allocation-free, safe to call from any thread.
#[inline]
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A started stopwatch: captures [`now_ns`] at construction and measures
/// from there.  `Copy`, so it can be threaded through closures freely.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started_ns: u64,
}

impl Stopwatch {
    /// Starts a stopwatch now.
    #[inline]
    pub fn start() -> Self {
        Self { started_ns: now_ns() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.started_ns)
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_forward() {
        let watch = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(watch.elapsed_ns() >= 1_000_000);
        assert!(watch.elapsed_seconds() > 0.0);
    }
}
