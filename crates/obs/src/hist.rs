//! Log-linear latency histograms: power-of-two nanosecond buckets recorded
//! with relaxed atomics.
//!
//! Recording is the engine's telemetry hot path, so it must be as close to
//! free as a metric can be: [`LogLinearHist::record_ns`] performs exactly two
//! relaxed `fetch_add`s (bucket count and nanosecond sum) — no locks, no
//! allocation, no floating point.  Bucket boundaries are powers of two, so
//! the bucket index is a `leading_zeros` away; the decoded bounds (in
//! seconds) follow Prometheus histogram conventions when snapshotted into a
//! [`HistogramSnapshot`] for exposition.
//!
//! The bucket layout is fixed: [`BUCKETS`] counters covering
//! `(2^8, 2^31]` nanoseconds (≈ 512 ns to ≈ 2.1 s) in ×2 steps, with
//! everything faster in the first bucket and everything slower in the
//! implicit `+Inf` bucket — wide enough for a probe record on one end and a
//! pathological scrape round on the other.

use std::sync::atomic::{AtomicU64, Ordering};

use teemon_metrics::HistogramSnapshot;

/// Number of atomic buckets (the last one doubles as the `+Inf` bucket, so
/// there are `BUCKETS - 1` finite bounds).
pub const BUCKETS: usize = 24;

/// `log2` of the first bucket's upper bound in nanoseconds: bucket 0 holds
/// everything up to `2^(MIN_SHIFT + 1)` ns.
const MIN_SHIFT: u32 = 8;

/// A fixed-slot log-linear histogram of nanosecond durations.
pub struct LogLinearHist {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for LogLinearHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHist {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self { buckets: [ZERO; BUCKETS], sum_ns: ZERO }
    }

    /// Records one duration: two relaxed `fetch_add`s, nothing else.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(bucket_index(ns)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total number of recorded durations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded durations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Visits the histogram as cumulative Prometheus-style buckets without
    /// allocating: `visit(bound_seconds, cumulative_count)` for each finite
    /// bound, where `f64::INFINITY` closes the walk with the total count.
    pub fn for_each_cumulative(&self, visit: &mut dyn FnMut(f64, u64)) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            visit(bound_seconds(i), cumulative);
        }
    }

    /// Snapshots into the canonical bucketed exposition form (allocates; use
    /// [`LogLinearHist::for_each_cumulative`] on the in-place refresh path).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut bounds = Vec::with_capacity(BUCKETS - 1);
        let mut cumulative_counts = Vec::with_capacity(BUCKETS);
        self.for_each_cumulative(&mut |bound, cumulative| {
            if bound.is_finite() {
                bounds.push(bound);
            }
            cumulative_counts.push(cumulative);
        });
        let count = cumulative_counts.last().copied().unwrap_or(0);
        HistogramSnapshot { bounds, cumulative_counts, sum: self.sum_ns() as f64 / 1e9, count }
    }
}

/// The bucket a duration belongs to: bucket `i` holds
/// `(2^(MIN_SHIFT + i), 2^(MIN_SHIFT + i + 1)]` nanoseconds, with bucket 0
/// additionally absorbing everything faster and the last bucket everything
/// slower.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    // `ns - 1` makes exact powers of two land in the bucket they bound
    // (le-inclusive, like Prometheus); `| 1` keeps 0 and 1 well-defined.
    let log2 = 63 - (ns.saturating_sub(1) | 1).leading_zeros();
    (log2.saturating_sub(MIN_SHIFT) as usize).min(BUCKETS - 1)
}

/// Upper bound of bucket `i` in seconds (`+Inf` for the last bucket).
pub fn bound_seconds(i: usize) -> f64 {
    if i >= BUCKETS - 1 {
        f64::INFINITY
    } else {
        (1u64 << (MIN_SHIFT as usize + 1 + i)) as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_le_inclusive_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(512), 0, "exact bound stays in its bucket");
        assert_eq!(bucket_index(513), 1);
        assert_eq!(bucket_index(1024), 1);
        assert_eq!(bucket_index(1025), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bounds_are_powers_of_two() {
        assert_eq!(bound_seconds(0), 512e-9);
        assert_eq!(bound_seconds(1), 1024e-9);
        assert!(bound_seconds(BUCKETS - 1).is_infinite());
        assert!((bound_seconds(BUCKETS - 2) - (1u64 << 31) as f64 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_counts_and_sum() {
        let hist = LogLinearHist::new();
        hist.record_ns(100);
        hist.record_ns(700);
        hist.record_ns(5_000_000_000); // 5 s → +Inf bucket
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.bounds.len(), BUCKETS - 1);
        assert_eq!(snap.cumulative_counts.len(), BUCKETS);
        assert_eq!(snap.cumulative_counts[0], 1);
        assert_eq!(snap.cumulative_counts[1], 2);
        assert_eq!(*snap.cumulative_counts.last().unwrap(), 3);
        assert!((snap.sum - 5.0000008).abs() < 1e-6);
        // Cumulative counts are monotone.
        assert!(snap.cumulative_counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn quantile_estimates_land_in_the_recorded_range() {
        let hist = LogLinearHist::new();
        for _ in 0..100 {
            hist.record_ns(10_000); // 10 µs
        }
        let q = hist.snapshot().quantile(0.5);
        assert!(q > 1e-6 && q < 1e-4, "median ≈ 10 µs, got {q}");
    }
}
