//! [`ObsCollector`]: the probe registry exposed through the standard
//! [`Collector`] trait.
//!
//! This is the canonical (bucketed) view of the same probes that
//! [`crate::SelfSnapshot`] pre-expands: histograms are emitted as
//! [`PointValue::Histogram`] points, so the collector plugs into everything
//! that consumes collectors — the text exposition renderer, registries, and
//! the scraper's collector endpoints.  The expanded sample stream is
//! identical to [`crate::SelfSnapshot`]'s by construction (a unit test
//! asserts it), the difference is purely cost: `collect` allocates a fresh
//! snapshot per call, which is fine for `/metrics`-style exposition but not
//! for the engine's own per-round self-scrape — the scraper uses the
//! in-place [`crate::SelfSnapshot`] path for that.

use parking_lot::contention;
use teemon_metrics::{
    CollectError, Collector, FamilySnapshot, HistogramSnapshot, Labels, MetricKind, MetricPoint,
    PointValue,
};

use crate::hist::LogLinearHist;
use crate::probes;

/// The default job label under which the engine scrapes itself.
pub const SELF_JOB: &str = "teemon_self";

/// A [`Collector`] over the engine's own probe registry.
#[derive(Debug, Default, Clone, Copy)]
pub struct ObsCollector;

impl ObsCollector {
    /// Creates the collector (stateless; the probes are static).
    pub fn new() -> Self {
        Self
    }
}

fn counter(name: &'static str, help: &'static str, value: u64) -> FamilySnapshot {
    FamilySnapshot::new(name, help, MetricKind::Counter)
        .with_point(MetricPoint::new(Labels::new(), PointValue::Counter(value as f64)))
}

fn gauge(name: &'static str, help: &'static str, value: f64) -> FamilySnapshot {
    FamilySnapshot::new(name, help, MetricKind::Gauge)
        .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(value)))
}

fn histogram(name: &'static str, help: &'static str, hist: &LogLinearHist) -> FamilySnapshot {
    FamilySnapshot::new(name, help, MetricKind::Histogram)
        .with_point(MetricPoint::new(Labels::new(), PointValue::Histogram(hist.snapshot())))
}

fn per_shard_counter(
    name: &'static str,
    help: &'static str,
    get: impl Fn(usize) -> u64,
) -> FamilySnapshot {
    let mut family = FamilySnapshot::new(name, help, MetricKind::Counter);
    for shard in 0..probes::SHARDS {
        family.points.push(MetricPoint::new(
            Labels::new().with("shard", shard.to_string()),
            PointValue::Counter(get(shard) as f64),
        ));
    }
    family
}

fn per_shard_gauge(
    name: &'static str,
    help: &'static str,
    get: impl Fn(usize) -> f64,
) -> FamilySnapshot {
    let mut family = FamilySnapshot::new(name, help, MetricKind::Gauge);
    for shard in 0..probes::SHARDS {
        family.points.push(MetricPoint::new(
            Labels::new().with("shard", shard.to_string()),
            PointValue::Gauge(get(shard)),
        ));
    }
    family
}

/// The canonical bucketed form of one lock class's wait histogram.
fn wait_snapshot(class: &contention::ClassContention) -> HistogramSnapshot {
    let mut bounds = Vec::with_capacity(contention::WAIT_BUCKETS - 1);
    let mut cumulative_counts = Vec::with_capacity(contention::WAIT_BUCKETS);
    let mut cumulative = 0u64;
    for (i, bucket) in class.wait_buckets.iter().enumerate() {
        cumulative += bucket;
        if i < contention::WAIT_BUCKETS - 1 {
            bounds.push(contention::bucket_upper_bound_ns(i) as f64 / 1e9);
        }
        cumulative_counts.push(cumulative);
    }
    HistogramSnapshot {
        bounds,
        cumulative_counts,
        sum: class.wait_ns_sum as f64 / 1e9,
        count: class.contended,
    }
}

impl Collector for ObsCollector {
    fn job_name(&self) -> &str {
        SELF_JOB
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        let mut families = vec![
            // --- ingest ---
            counter(
                "teemon_scrape_rounds_total",
                "scrape rounds that touched at least one target",
                probes::SCRAPE_ROUNDS.get(),
            ),
            histogram(
                "teemon_scrape_round_seconds",
                "measured wall time of whole scrape rounds",
                &probes::SCRAPE_ROUND_NS,
            ),
        ];
        let mut stage = FamilySnapshot::new(
            "teemon_scrape_stage_seconds",
            "per-target scrape stage timings",
            MetricKind::Histogram,
        );
        for (name, hist) in [
            ("collect", &probes::SCRAPE_COLLECT_NS),
            ("cache_walk", &probes::SCRAPE_CACHE_WALK_NS),
            ("append", &probes::SCRAPE_APPEND_NS),
        ] {
            stage.points.push(MetricPoint::new(
                Labels::new().with("stage", name),
                PointValue::Histogram(hist.snapshot()),
            ));
        }
        families.push(stage);
        families.extend([
            counter(
                "teemon_scrape_cache_hits_total",
                "fast-lane rounds verified positionally against the scrape cache",
                probes::CACHE_HITS.get(),
            ),
            counter(
                "teemon_scrape_cache_rebuilds_total",
                "fast-lane cache repairs after series churn",
                probes::CACHE_REBUILDS.get(),
            ),
            counter(
                "teemon_scrape_stale_handles_total",
                "stale series handles hit during batch appends",
                probes::STALE_HANDLES.get(),
            ),
            per_shard_counter(
                "teemon_tsdb_shard_appends_total",
                "samples appended per storage shard (heat map)",
                |s| probes::SHARD_APPENDS.get(s),
            ),
            // --- storage ---
            gauge(
                "teemon_tsdb_resident_bytes",
                "estimated bytes resident in sample storage",
                probes::STORAGE_RESIDENT_BYTES.get(),
            ),
            gauge(
                "teemon_tsdb_samples",
                "stored samples (retention shrinks it)",
                probes::STORAGE_SAMPLES.get(),
            ),
            gauge(
                "teemon_tsdb_bytes_per_sample",
                "average resident bytes per stored sample",
                probes::STORAGE_BYTES_PER_SAMPLE.get(),
            ),
            gauge("teemon_tsdb_series", "distinct series resident", probes::STORAGE_SERIES.get()),
            gauge(
                "teemon_tsdb_rejected_samples",
                "samples rejected as out of order, cumulative",
                probes::STORAGE_REJECTED_SAMPLES.get(),
            ),
            per_shard_gauge(
                "teemon_tsdb_shard_series",
                "series resident per storage shard (imbalance view)",
                |s| probes::SHARD_SERIES.get(s),
            ),
            per_shard_gauge(
                "teemon_tsdb_shard_generation",
                "storage shard generation (bumps on eviction/drop)",
                |s| probes::SHARD_GENERATIONS.get(s),
            ),
            gauge(
                "teemon_tsdb_symbols",
                "live interned symbols (names, label keys and values)",
                probes::STORAGE_SYMBOLS.get(),
            ),
            gauge(
                "teemon_tsdb_symbol_bytes",
                "estimated bytes held by the symbol table",
                probes::STORAGE_SYMBOL_BYTES.get(),
            ),
            gauge(
                "teemon_tsdb_index_bytes",
                "estimated bytes held by the per-shard postings indexes",
                probes::STORAGE_INDEX_BYTES.get(),
            ),
            counter(
                "teemon_tsdb_symbols_swept_total",
                "symbols garbage-collected at meta-log rotation points",
                probes::SYMBOLS_SWEPT.get(),
            ),
            counter(
                "teemon_scrape_budget_rejected_total",
                "series rejected by per-target/per-job cardinality budgets at the scrape edge",
                probes::SCRAPE_BUDGET_REJECTED.get(),
            ),
            // --- durability / WAL ---
            counter(
                "teemon_wal_bytes_written_total",
                "bytes appended to write-ahead logs",
                probes::WAL_BYTES_WRITTEN.get(),
            ),
            histogram(
                "teemon_wal_fsync_seconds",
                "measured wall time of WAL fsyncs",
                &probes::WAL_FSYNC_NS,
            ),
            counter(
                "teemon_wal_records_replayed_total",
                "WAL records applied during crash recovery",
                probes::WAL_RECORDS_REPLAYED.get(),
            ),
            counter(
                "teemon_wal_salvage_total",
                "corrupt-tail truncation events during recovery",
                probes::WAL_SALVAGE.get(),
            ),
            counter(
                "teemon_wal_salvaged_bytes_total",
                "bytes discarded by corrupt-tail truncation during recovery",
                probes::WAL_SALVAGED_BYTES.get(),
            ),
            counter(
                "teemon_wal_records_dropped_total",
                "WAL records discarded during recovery (uncommitted tail rounds)",
                probes::WAL_RECORDS_DROPPED.get(),
            ),
            gauge(
                "teemon_wal_recovery_seconds",
                "duration of the last crash recovery",
                probes::WAL_RECOVERY_SECONDS.get(),
            ),
            gauge(
                "teemon_wal_failed_shards",
                "shards whose WAL or snapshot was unreadable and came up empty",
                probes::WAL_FAILED_SHARDS.get(),
            ),
            counter(
                "teemon_wal_unclean_rounds_total",
                "scrape rounds whose WAL flush hit a write/fsync failure (durability lost)",
                probes::WAL_UNCLEAN_ROUNDS.get(),
            ),
        ]);
        // --- query ---
        let mut modes = FamilySnapshot::new(
            "teemon_query_range_total",
            "range queries by evaluation mode",
            MetricKind::Counter,
        );
        modes.points.push(MetricPoint::new(
            Labels::new().with("mode", "streamed"),
            PointValue::Counter(probes::QUERY_STREAMED.get() as f64),
        ));
        modes.points.push(MetricPoint::new(
            Labels::new().with("mode", "fallback"),
            PointValue::Counter(probes::QUERY_FALLBACK.get() as f64),
        ));
        families.push(modes);
        families.extend([
            counter(
                "teemon_query_samples_decoded_total",
                "chunk samples decoded by streaming window machines",
                probes::QUERY_SAMPLES_DECODED.get(),
            ),
            counter(
                "teemon_query_window_rebuilds_total",
                "window aggregate rebuilds (numeric-drift resets)",
                probes::QUERY_WINDOW_REBUILDS.get(),
            ),
            histogram(
                "teemon_query_seconds",
                "measured wall time of range queries",
                &probes::QUERY_NS,
            ),
            counter(
                "teemon_query_slow_total",
                "range queries over the slow-query threshold",
                probes::QUERY_SLOW.get(),
            ),
        ]);
        // --- http ---
        families.extend([
            counter(
                "teemon_http_connections_total",
                "connections accepted by the HTTP listener",
                probes::HTTP_CONNECTIONS.get(),
            ),
            counter(
                "teemon_http_requests_total",
                "requests that entered the middleware stack",
                probes::HTTP_REQUESTS.get(),
            ),
        ]);
        let mut classes = FamilySnapshot::new(
            "teemon_http_responses_total",
            "responses sent, by status class",
            MetricKind::Counter,
        );
        for (class, count) in [
            ("2xx", probes::HTTP_RESPONSES_2XX.get()),
            ("4xx", probes::HTTP_RESPONSES_4XX.get()),
            ("5xx", probes::HTTP_RESPONSES_5XX.get()),
        ] {
            classes.points.push(MetricPoint::new(
                Labels::new().with("class", class),
                PointValue::Counter(count as f64),
            ));
        }
        families.push(classes);
        families.extend([
            counter(
                "teemon_http_shed_total",
                "connections shed before parsing under overload (503)",
                probes::HTTP_SHED.get(),
            ),
            counter(
                "teemon_http_panics_total",
                "handler panics caught by the panic shield (500)",
                probes::HTTP_PANICS.get(),
            ),
            counter(
                "teemon_http_rate_limited_total",
                "requests rejected by the per-client token bucket (429)",
                probes::HTTP_RATE_LIMITED.get(),
            ),
            counter(
                "teemon_http_slow_clients_total",
                "slow-loris clients timed out sending headers or body (408)",
                probes::HTTP_SLOW_CLIENTS.get(),
            ),
            counter(
                "teemon_http_malformed_total",
                "malformed requests rejected by the parser (400)",
                probes::HTTP_MALFORMED.get(),
            ),
            counter(
                "teemon_http_oversized_total",
                "requests rejected for exceeding a size limit (413)",
                probes::HTTP_OVERSIZED.get(),
            ),
            gauge(
                "teemon_http_inflight",
                "requests currently being served",
                probes::HTTP_INFLIGHT.get(),
            ),
            histogram(
                "teemon_http_request_seconds",
                "measured wall time of handled requests",
                &probes::HTTP_REQUEST_NS,
            ),
            counter(
                "teemon_http_ingested_samples_total",
                "samples ingested through the remote-write endpoint",
                probes::HTTP_INGESTED_SAMPLES.get(),
            ),
            counter(
                "teemon_http_drained_total",
                "in-flight requests drained to completion during graceful shutdown",
                probes::HTTP_DRAINED.get(),
            ),
            counter(
                "teemon_http_cardinality_rejected_total",
                "remote-write requests rejected by the per-request series budget (429)",
                probes::HTTP_CARDINALITY_REJECTED.get(),
            ),
        ]);
        // --- locks ---
        let mut acquires = FamilySnapshot::new(
            "teemon_lock_acquires_total",
            "lock acquisitions per lock class",
            MetricKind::Counter,
        );
        let mut contended = FamilySnapshot::new(
            "teemon_lock_contended_total",
            "acquisitions that found the lock held and waited",
            MetricKind::Counter,
        );
        let mut waits = FamilySnapshot::new(
            "teemon_lock_wait_seconds",
            "wait time of contended acquisitions per lock class",
            MetricKind::Histogram,
        );
        contention::for_each(&mut |class| {
            let labels = Labels::new().with("class", class.name);
            acquires
                .points
                .push(MetricPoint::new(labels.clone(), PointValue::Counter(class.acquires as f64)));
            contended.points.push(MetricPoint::new(
                labels.clone(),
                PointValue::Counter(class.contended as f64),
            ));
            waits
                .points
                .push(MetricPoint::new(labels, PointValue::Histogram(wait_snapshot(class))));
        });
        families.extend([acquires, contended, waits]);
        Ok(families)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SelfSnapshot;

    /// Flattens families into `(sample_name, labels, value)` rows via the
    /// canonical expansion.
    fn samples_of(families: &[FamilySnapshot]) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for family in families {
            family.for_each_sample(|name, labels: &Labels, value, _ts| {
                let mut rendered: Vec<String> =
                    labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                rendered.sort();
                out.push((name.to_string(), rendered.join(","), value));
            });
        }
        out
    }

    #[test]
    fn job_name_is_the_self_job() {
        assert_eq!(ObsCollector::new().job_name(), SELF_JOB);
    }

    #[test]
    fn canonical_and_preexpanded_forms_agree_on_the_wire() {
        // The collector's bucketed families and the in-place SelfSnapshot
        // must expand to the same (name, labels) sample stream — this is
        // what makes the two self-scrape paths interchangeable.  Values can
        // race (other tests record into the shared probes), so compare the
        // series identities only.
        // The canonical form interleaves `_bucket`/`_sum`/`_count` per point
        // while the pre-expanded form groups whole families, so compare the
        // sample *set*, not the order.
        let collected = ObsCollector::new().collect().expect("collect is infallible");
        let snap = SelfSnapshot::new();
        let mut canonical: Vec<(String, String)> =
            samples_of(&collected).into_iter().map(|(n, l, _)| (n, l)).collect();
        let mut expanded: Vec<(String, String)> =
            samples_of(snap.families()).into_iter().map(|(n, l, _)| (n, l)).collect();
        canonical.sort();
        expanded.sort();
        assert_eq!(canonical, expanded);
    }

    #[test]
    fn collect_covers_every_registry_probe() {
        let families = ObsCollector::new().collect().expect("collect is infallible");
        for probe in probes::registry() {
            assert!(
                families.iter().any(|f| f.name == probe.name),
                "probe {} missing from collect()",
                probe.name
            );
        }
    }
}
