//! `teemon_obs` — always-on, allocation-free engine self-telemetry.
//!
//! The monitor's pitch is that observability should be cheap enough to leave
//! on; this crate applies the same standard to the engine itself.  Every
//! internal probe is a fixed static slot written with relaxed atomics — no
//! registration, no locks, no allocation on the record path — so the engine
//! can observe its own ingest, storage, query and locking behaviour in every
//! build, not just instrumented ones:
//!
//! * [`probes`] — the static registry: counters, gauges, per-shard slots,
//!   [`hist::LogLinearHist`] latency histograms and RAII [`Span`] timers,
//!   recorded into directly by `teemon_tsdb` and `teemon_query`.  Lock
//!   contention probes live in the `parking_lot` shim's `contention` table
//!   and are exported alongside.
//! * [`snapshot::SelfSnapshot`] — the probes pre-expanded into scalar metric
//!   families for the engine's own scrape loop: built once, refreshed in
//!   place with zero allocations, so self-scraping costs the same as any
//!   other warm fast-lane target.
//! * [`collector::ObsCollector`] — the same probes behind the standard
//!   `Collector` trait (canonical bucketed histograms) for exposition and
//!   registry composition.
//! * [`slow`] — a fixed-capacity slow-query ring fed by the query layer.
//! * [`clock`] — the monotonic clock and [`clock::Stopwatch`] behind every
//!   measured duration (the only place the engine reads the host clock for
//!   self-timing).
//!
//! The tsdb's scraper registers the self endpoint by default, so a running
//! monitor's TSDB always contains a `job="teemon_self"` slice ready for the
//! built-in "teemon self" dashboard and alert rules.

#![warn(missing_docs)]

pub mod clock;
pub mod collector;
pub mod hist;
pub mod probes;
pub mod slow;
pub mod snapshot;

pub use clock::{now_ns, Stopwatch};
pub use collector::{ObsCollector, SELF_JOB};
pub use hist::LogLinearHist;
pub use probes::{registry, Counter, Gauge, ProbeDesc, ShardCounters, ShardGauges, Span, SHARDS};
pub use slow::{set_threshold_seconds, slow_queries, SlowQuery};
pub use snapshot::SelfSnapshot;
