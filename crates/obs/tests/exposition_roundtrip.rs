//! Property guard for the self-telemetry exposition path: log-linear probe
//! histograms rendered through the canonical text format must parse back
//! into the exact same bucketed families.  This licenses scraping a
//! `teemon self` endpoint over the text edge (or scraping one monitor's
//! self-metrics from another) without losing bucket fidelity.

use teemon_metrics::exposition::{encode_text, parse_families};
use teemon_metrics::Collector;
use teemon_metrics::{FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue};
use teemon_obs::hist::LogLinearHist;
use teemon_obs::ObsCollector;

proptest::proptest! {
    #[test]
    fn log_linear_histograms_round_trip_through_text(
        durations in proptest::collection::vec(1u64..u64::MAX / 2, 1..200),
        label in "[a-z]{1,8}",
    ) {
        let hist = LogLinearHist::new();
        for ns in &durations {
            hist.record_ns(*ns);
        }
        let family = FamilySnapshot::new(
            "teemon_test_seconds",
            "round trip fixture",
            MetricKind::Histogram,
        )
        .with_point(MetricPoint::new(
            Labels::from_pairs([("stage", label)]),
            PointValue::Histogram(hist.snapshot()),
        ));
        let families = vec![family];
        let text = encode_text(&families);
        let parsed = parse_families(&text).unwrap();
        proptest::prop_assert_eq!(&parsed, &families);
        // The parsed histogram must preserve the exact count.
        let total = durations.len() as u64;
        match &parsed[0].points[0].value {
            PointValue::Histogram(h) => {
                proptest::prop_assert_eq!(h.count, total);
                proptest::prop_assert_eq!(
                    h.cumulative_counts.last().copied().unwrap_or(0),
                    total
                );
            }
            other => proptest::prop_assert!(false, "not a histogram: {:?}", other),
        }
    }
}

#[test]
fn collector_families_survive_the_text_edge() {
    // The whole self-telemetry surface (histograms included) must encode and
    // parse back unchanged — this is an end-to-end guard over every probe.
    // A family with zero points only leaves a `# TYPE` line on the wire
    // (the documented parser caveat), so make sure the lock families have at
    // least one class registered.
    let lock = parking_lot::Mutex::named(0u8, parking_lot::LockClass::new("obs.roundtrip_test"));
    *lock.lock() += 1;
    let families = ObsCollector::new().collect().expect("collect is infallible");
    let text = encode_text(&families);
    let parsed = parse_families(&text).expect("rendered exposition parses");
    // Parsing sorts/folds by name; compare as (name → family) maps.
    for family in &families {
        let back = parsed
            .iter()
            .find(|f| f.name == family.name)
            .unwrap_or_else(|| panic!("family {} lost on the wire", family.name));
        assert_eq!(back.kind, family.kind, "kind drift for {}", family.name);
        assert_eq!(back.points.len(), family.points.len(), "points drift for {}", family.name);
    }
}
