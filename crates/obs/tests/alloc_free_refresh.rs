//! Code-level proof that the self-telemetry loop is **allocation-free on
//! the warm path**: recording probes (counters, gauges, histograms, span
//! timers, contended lock acquisitions) and refreshing a built
//! [`SelfSnapshot`] in place must not touch the heap.  This is the
//! obs-crate half of the property; `teemon_tsdb`'s `alloc_free_scrape.rs`
//! proves the full scrape round that consumes the refreshed snapshot.

// Lock-audit bookkeeping allocates by design; the zero-allocation proofs
// only hold without `--cfg lock_audit`.
#![cfg(not(lock_audit))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use teemon_obs::{probes, slow, snapshot::SelfSnapshot, Span};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; only bookkeeping is added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// One "round" of engine self-telemetry: the writes the ingest, storage and
/// query layers perform, followed by the in-place snapshot refresh the
/// self-scrape endpoint runs.
fn telemetry_round(snap: &mut SelfSnapshot, lock: &parking_lot::Mutex<u64>) {
    {
        let _round = Span::start(&probes::SCRAPE_ROUND_NS);
        let _collect = Span::start(&probes::SCRAPE_COLLECT_NS);
        probes::SCRAPE_ROUNDS.inc();
        probes::CACHE_HITS.inc();
        probes::SHARD_APPENDS.add(3, 48);
        probes::STORAGE_SERIES.set(48.0);
        probes::SHARD_SERIES.set(3, 12.0);
        probes::QUERY_STREAMED.inc();
        probes::QUERY_SAMPLES_DECODED.add(1000);
        probes::QUERY_NS.record_ns(1_500_000);
        // A named-lock acquisition records contention-table telemetry.
        *lock.lock() += 1;
        // Below-threshold queries must not touch the slow-query ring.
        slow::maybe_record("sum(rate(x[5m]))", 10, 1000, true);
    }
    snap.refresh();
}

#[test]
fn warm_probe_record_and_refresh_allocate_nothing() {
    let lock = parking_lot::Mutex::named(0u64, parking_lot::LockClass::new("obs.alloc_free_test"));
    // Warm up: the first rounds build the snapshot layout, register the lock
    // class and fault in lazy statics (clock epoch, slow-query threshold).
    let mut snap = SelfSnapshot::new();
    for _ in 0..3 {
        telemetry_round(&mut snap, &lock);
    }

    let before = allocations();
    for _ in 0..10 {
        telemetry_round(&mut snap, &lock);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm telemetry rounds must not allocate (saw {} allocations over 10 rounds)",
        after - before
    );

    // Sanity: the refreshed snapshot actually carries the recorded values.
    let rounds = snap
        .families()
        .iter()
        .find(|f| f.name == "teemon_scrape_rounds_total")
        .and_then(|f| f.points.first())
        .map(|p| p.value.scalar())
        .expect("rounds family");
    assert!(rounds >= 13.0);
}
