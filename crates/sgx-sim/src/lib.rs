//! Intel SGX substrate simulation.
//!
//! TEEMon's TEE Metrics Exporter observes the Intel SGX kernel driver: how
//! many enclaves exist, how many EPC pages are free, how many pages were
//! marked old, evicted to main memory or reclaimed back (§4, "TEE Metrics
//! Exporter").  Reproducing the paper without SGX hardware therefore requires
//! a model of exactly that machinery, which this crate provides:
//!
//! * [`Epc`] — the Enclave Page Cache: a fixed pool of protected 4 KiB pages
//!   (~128 MiB raw, ~94 MiB usable) with LRU eviction (`EWB`) to main memory
//!   and reload (`ELDU`), including the two-phase "mark old, then evict"
//!   behaviour of `ksgxswapd`,
//! * [`Enclave`] — enclave lifecycle and working-set bookkeeping,
//! * [`SgxDriver`] — the driver façade exposing the same counters the paper
//!   instruments (`sgx_nr_free_pages`, `sgx_nr_enclaves`, `sgx_nr_evicted`, …)
//!   through a `/sys/module/isgx/parameters`-style interface,
//! * [`CostModel`] and [`transition`] — latency costs of EENTER/EEXIT/AEX,
//!   paging and MEE-encrypted memory access, used by the framework models.
//!
//! The simulation is deliberately a *cost and counter* model, not a functional
//! enclave: TEEMon never looks inside an enclave, it only observes the events
//! the enclave causes in the driver and kernel.

#![warn(missing_docs)]

pub mod costs;
pub mod driver;
pub mod enclave;
pub mod epc;
pub mod transition;

pub use costs::CostModel;
pub use driver::{DriverStats, SgxDriver};
pub use enclave::{Enclave, EnclaveId, EnclaveState};
pub use epc::{AccessOutcome, Epc, EpcConfig, EpcCounters, PAGE_SIZE};
pub use transition::{TransitionKind, TransitionTracker};

/// Errors produced by the SGX simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// The referenced enclave does not exist (or was destroyed).
    NoSuchEnclave(u64),
    /// Enclave creation failed because the requested size is zero.
    EmptyEnclave,
    /// The EPC (plus swap) cannot back the requested enclave size.
    OutOfEpc {
        /// Pages requested by the enclave.
        requested_pages: u64,
    },
    /// The page index lies outside the enclave's committed size.
    PageOutOfRange {
        /// Offending page index.
        page: u64,
        /// Number of pages committed to the enclave.
        committed: u64,
    },
}

impl std::fmt::Display for SgxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SgxError::NoSuchEnclave(id) => write!(f, "no such enclave: {id}"),
            SgxError::EmptyEnclave => write!(f, "enclave size must be non-zero"),
            SgxError::OutOfEpc { requested_pages } => {
                write!(f, "cannot back enclave of {requested_pages} pages")
            }
            SgxError::PageOutOfRange { page, committed } => {
                write!(f, "page {page} outside enclave of {committed} pages")
            }
        }
    }
}

impl std::error::Error for SgxError {}
