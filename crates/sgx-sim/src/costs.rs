//! Latency cost model for SGX operations.
//!
//! The absolute values are calibrated against published microbenchmarks of
//! SGX v1 hardware (SCONE [Arnautov et al. 2016], sgx-perf [Weichbrodt et al.
//! 2018], Hotcalls [Weisse et al. 2017]): an enclave transition costs on the
//! order of 8 000–12 000 cycles (~2–4 µs at 3 GHz), evicting or reloading an
//! EPC page costs ~10–40 µs, and the Memory Encryption Engine adds a
//! percentage overhead to last-level-cache misses that hit enclave memory.
//! The figure reproduction only relies on the *relative* magnitudes.

use serde::{Deserialize, Serialize};
use teemon_sim_core::SimDuration;

/// Tunable latency costs of the simulated SGX hardware and driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of a synchronous enclave entry (EENTER) in nanoseconds.
    pub eenter_ns: u64,
    /// Cost of a synchronous enclave exit (EEXIT) in nanoseconds.
    pub eexit_ns: u64,
    /// Cost of an asynchronous exit (AEX), e.g. due to an interrupt or page
    /// fault, in nanoseconds.
    pub aex_ns: u64,
    /// Cost of evicting one EPC page to main memory (EWB) in nanoseconds.
    pub ewb_ns: u64,
    /// Cost of reloading one evicted page into the EPC (ELDU) in nanoseconds.
    pub eldu_ns: u64,
    /// Cost of a page-table walk / page-fault handling in the kernel, in
    /// nanoseconds, charged on every enclave page fault in addition to paging.
    pub page_fault_ns: u64,
    /// Cost of a last-level cache miss served from ordinary DRAM.
    pub llc_miss_ns: u64,
    /// Multiplicative overhead the Memory Encryption Engine adds to cache
    /// misses that target EPC memory (e.g. 0.3 = 30 % slower).
    pub mee_overhead: f64,
    /// Cost of adding a fresh page to an enclave (EAUG/EADD + EACCEPT).
    pub eadd_ns: u64,
    /// Fixed cost of enclave creation (ECREATE + EINIT + attestation setup).
    pub ecreate_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            eenter_ns: 2_700,
            eexit_ns: 2_300,
            aex_ns: 3_000,
            ewb_ns: 15_000,
            eldu_ns: 12_000,
            page_fault_ns: 1_500,
            llc_miss_ns: 90,
            mee_overhead: 0.30,
            eadd_ns: 4_000,
            ecreate_ns: 20_000_000,
        }
    }
}

impl CostModel {
    /// A cost model in which every SGX-specific cost is zero — used to model
    /// native (non-SGX) execution with the same code paths.
    pub fn native() -> Self {
        Self {
            eenter_ns: 0,
            eexit_ns: 0,
            aex_ns: 0,
            ewb_ns: 0,
            eldu_ns: 0,
            page_fault_ns: 1_500,
            llc_miss_ns: 90,
            mee_overhead: 0.0,
            eadd_ns: 0,
            ecreate_ns: 0,
        }
    }

    /// Cost of one synchronous enclave round trip (EENTER + EEXIT).
    pub fn transition_round_trip(&self) -> SimDuration {
        SimDuration::from_nanos(self.eenter_ns + self.eexit_ns)
    }

    /// Cost of handling an enclave page fault that requires reloading a page
    /// (AEX + kernel fault handling + ELDU, possibly preceded by an EWB of a
    /// victim page accounted separately).
    pub fn fault_reload(&self) -> SimDuration {
        SimDuration::from_nanos(self.aex_ns + self.page_fault_ns + self.eldu_ns)
    }

    /// Cost of evicting one page.
    pub fn evict(&self) -> SimDuration {
        SimDuration::from_nanos(self.ewb_ns)
    }

    /// Cost of an LLC miss, optionally inside the EPC (MEE-encrypted).
    pub fn llc_miss(&self, in_epc: bool) -> SimDuration {
        let base = self.llc_miss_ns as f64;
        let total = if in_epc { base * (1.0 + self.mee_overhead) } else { base };
        SimDuration::from_nanos(total.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_have_expected_magnitudes() {
        let c = CostModel::default();
        // Transitions are microseconds, paging is tens of microseconds.
        assert!(c.transition_round_trip() >= SimDuration::from_micros(3));
        assert!(c.transition_round_trip() <= SimDuration::from_micros(20));
        assert!(c.fault_reload() > c.transition_round_trip());
        assert!(c.evict() >= SimDuration::from_micros(5));
    }

    #[test]
    fn native_model_removes_sgx_costs() {
        let native = CostModel::native();
        assert_eq!(native.transition_round_trip(), SimDuration::ZERO);
        assert_eq!(native.evict(), SimDuration::ZERO);
        assert_eq!(native.llc_miss(true), native.llc_miss(false));
    }

    #[test]
    fn mee_overhead_increases_epc_misses() {
        let c = CostModel::default();
        assert!(c.llc_miss(true) > c.llc_miss(false));
        let ratio = c.llc_miss(true).as_nanos() as f64 / c.llc_miss(false).as_nanos() as f64;
        assert!((ratio - (1.0 + c.mee_overhead)).abs() < 0.05);
    }

    #[test]
    fn cost_model_is_cloneable_and_comparable() {
        let c = CostModel::default();
        assert_eq!(c.clone(), c);
        assert_ne!(CostModel::native(), CostModel::default());
    }
}
