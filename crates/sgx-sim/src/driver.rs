//! The simulated Intel SGX kernel driver.
//!
//! The paper instruments the official out-of-tree `isgx` driver with 42 lines
//! of code that export counters as module parameters under
//! `/sys/module/isgx/parameters/<name>` (§5.1).  [`SgxDriver`] is the
//! simulated equivalent: it owns the [`Epc`], tracks enclave lifecycles and
//! exposes the same counter names through [`SgxDriver::module_params`], which
//! is what the TEE Metrics Exporter reads on every scrape.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use teemon_sim_core::{SimClock, SimDuration};

use crate::costs::CostModel;
use crate::enclave::{Enclave, EnclaveId, EnclaveState};
use crate::epc::{AccessOutcome, Epc, EpcConfig, EpcCounters, PAGE_SIZE};
use crate::SgxError;

/// Snapshot of every counter the driver exposes — the values the TME scrapes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriverStats {
    /// Enclaves created since driver load (`sgx_nr_created`).
    pub enclaves_created: u64,
    /// Currently active enclaves (`sgx_nr_enclaves`).
    pub enclaves_active: u64,
    /// Enclaves removed since driver load (`sgx_nr_removed`).
    pub enclaves_removed: u64,
    /// Total usable EPC pages (`sgx_nr_total_pages`).
    pub epc_total_pages: u64,
    /// Currently free EPC pages (`sgx_nr_free_pages`).
    pub epc_free_pages: u64,
    /// Pages currently marked old (`sgx_nr_old_pages`).
    pub epc_old_pages: u64,
    /// Pages evicted to main memory since load (`sgx_nr_evicted`).
    pub epc_pages_evicted: u64,
    /// Pages added to enclaves since load (`sgx_nr_added`).
    pub epc_pages_added: u64,
    /// Pages reclaimed from main memory since load (`sgx_nr_reclaimed`).
    pub epc_pages_reclaimed: u64,
    /// Pages marked old since load (`sgx_nr_marked_old`).
    pub epc_pages_marked_old: u64,
    /// Enclave page faults since load (`sgx_nr_enclave_page_faults`).
    pub enclave_page_faults: u64,
    /// ksgxswapd wakeups since load (`sgx_nr_swapd_runs`).
    pub swapd_wakeups: u64,
}

impl DriverStats {
    /// Renders the stats as `/sys/module/isgx/parameters`-style key/value
    /// pairs, using the hook names quoted in the paper where available.
    pub fn as_module_params(&self) -> BTreeMap<String, u64> {
        let mut map = BTreeMap::new();
        map.insert("sgx_nr_created".into(), self.enclaves_created);
        map.insert("sgx_nr_enclaves".into(), self.enclaves_active);
        map.insert("sgx_nr_removed".into(), self.enclaves_removed);
        map.insert("sgx_nr_total_pages".into(), self.epc_total_pages);
        map.insert("sgx_nr_free_pages".into(), self.epc_free_pages);
        map.insert("sgx_nr_old_pages".into(), self.epc_old_pages);
        map.insert("sgx_nr_evicted".into(), self.epc_pages_evicted);
        map.insert("sgx_nr_added".into(), self.epc_pages_added);
        map.insert("sgx_nr_reclaimed".into(), self.epc_pages_reclaimed);
        map.insert("sgx_nr_marked_old".into(), self.epc_pages_marked_old);
        map.insert("sgx_nr_enclave_page_faults".into(), self.enclave_page_faults);
        map.insert("sgx_nr_swapd_runs".into(), self.swapd_wakeups);
        map
    }
}

struct DriverInner {
    epc: Epc,
    enclaves: BTreeMap<EnclaveId, Enclave>,
    next_id: u64,
    created: u64,
    removed: u64,
}

/// The simulated SGX driver.  Cheap to clone; all clones share state, the way
/// every process on a host shares the one real driver.
#[derive(Clone)]
pub struct SgxDriver {
    inner: Arc<Mutex<DriverInner>>,
    clock: SimClock,
    costs: CostModel,
}

impl SgxDriver {
    /// Creates a driver with the default EPC (~94 MiB usable) and cost model.
    pub fn new(clock: SimClock) -> Self {
        Self::with_config(clock, EpcConfig::default(), CostModel::default())
    }

    /// Creates a driver with explicit EPC configuration and cost model.
    pub fn with_config(clock: SimClock, epc_config: EpcConfig, costs: CostModel) -> Self {
        Self {
            inner: Arc::new(Mutex::new(DriverInner {
                epc: Epc::new(epc_config, costs.clone()),
                enclaves: BTreeMap::new(),
                next_id: 1,
                created: 0,
                removed: 0,
            })),
            clock,
            costs,
        }
    }

    /// The cost model in effect.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The shared simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Creates and initialises an enclave of `size_bytes` owned by `pid`.
    /// All pages are committed eagerly (EADD at load time), which is how the
    /// SGX1-era frameworks in the paper build enclaves.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::EmptyEnclave`] for a zero-sized enclave.
    pub fn create_enclave(
        &self,
        pid: u32,
        size_bytes: u64,
        threads: u32,
    ) -> Result<(EnclaveId, SimDuration), SgxError> {
        if size_bytes == 0 {
            return Err(SgxError::EmptyEnclave);
        }
        let mut inner = self.inner.lock();
        let id = EnclaveId::from_raw(inner.next_id);
        inner.next_id += 1;
        let enclave = Enclave {
            id,
            owner_pid: pid,
            size_bytes,
            state: EnclaveState::Active,
            created_at: self.clock.now(),
            threads: threads.max(1),
        };
        let pages = enclave.pages();
        let mut latency = SimDuration::from_nanos(self.costs.ecreate_ns);
        for page in 0..pages {
            let outcome = inner.epc.add_page(id, page)?;
            latency += outcome.latency;
        }
        inner.enclaves.insert(id, enclave);
        inner.created += 1;
        Ok((id, latency))
    }

    /// Destroys an enclave and releases its EPC pages.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::NoSuchEnclave`] if the id is unknown or already
    /// removed.
    pub fn destroy_enclave(&self, id: EnclaveId) -> Result<(), SgxError> {
        let mut inner = self.inner.lock();
        match inner.enclaves.get_mut(&id) {
            Some(enclave) if enclave.state == EnclaveState::Active => {
                enclave.state = EnclaveState::Removed;
                inner.epc.remove_enclave(id);
                inner.removed += 1;
                Ok(())
            }
            _ => Err(SgxError::NoSuchEnclave(id.as_u64())),
        }
    }

    /// Touches one page of an enclave's memory (read or write) and returns the
    /// paging outcome.  This is the entry point the framework models call for
    /// every simulated memory access that reaches enclave memory.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::NoSuchEnclave`] for unknown enclaves and
    /// [`SgxError::PageOutOfRange`] for accesses past the committed size.
    pub fn access_page(&self, id: EnclaveId, page: u64) -> Result<AccessOutcome, SgxError> {
        let mut inner = self.inner.lock();
        let enclave = inner.enclaves.get(&id).ok_or(SgxError::NoSuchEnclave(id.as_u64()))?;
        if enclave.state != EnclaveState::Active {
            return Err(SgxError::NoSuchEnclave(id.as_u64()));
        }
        let committed = enclave.pages();
        if page >= committed {
            return Err(SgxError::PageOutOfRange { page, committed });
        }
        Ok(inner.epc.touch(id, page))
    }

    /// Runs the swapping daemon once (normally triggered by the kernel when
    /// free EPC pages run low).  Returns `(pages evicted, time spent)`.
    pub fn run_swapd(&self) -> (u64, SimDuration) {
        self.inner.lock().epc.run_swapd()
    }

    /// Stats snapshot combining enclave lifecycle and EPC counters.
    pub fn stats(&self) -> DriverStats {
        let inner = self.inner.lock();
        let counters: EpcCounters = inner.epc.counters();
        DriverStats {
            enclaves_created: inner.created,
            enclaves_active: inner
                .enclaves
                .values()
                .filter(|e| e.state == EnclaveState::Active)
                .count() as u64,
            enclaves_removed: inner.removed,
            epc_total_pages: inner.epc.config().usable_pages(),
            epc_free_pages: inner.epc.free_pages(),
            epc_old_pages: inner.epc.old_pages(),
            epc_pages_evicted: counters.pages_evicted,
            epc_pages_added: counters.pages_added,
            epc_pages_reclaimed: counters.pages_reclaimed,
            epc_pages_marked_old: counters.pages_marked_old,
            enclave_page_faults: counters.enclave_page_faults,
            swapd_wakeups: counters.swapd_wakeups,
        }
    }

    /// The `/sys/module/isgx/parameters`-style view of [`SgxDriver::stats`].
    pub fn module_params(&self) -> BTreeMap<String, u64> {
        self.stats().as_module_params()
    }

    /// Information about a specific enclave, if it exists.
    pub fn enclave(&self, id: EnclaveId) -> Option<Enclave> {
        self.inner.lock().enclaves.get(&id).cloned()
    }

    /// Ids of all currently active enclaves.
    pub fn active_enclaves(&self) -> Vec<EnclaveId> {
        self.inner
            .lock()
            .enclaves
            .values()
            .filter(|e| e.state == EnclaveState::Active)
            .map(|e| e.id)
            .collect()
    }

    /// Number of pages an enclave of `size_bytes` commits.
    pub fn pages_for(size_bytes: u64) -> u64 {
        size_bytes.div_ceil(PAGE_SIZE)
    }
}

impl std::fmt::Debug for SgxDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SgxDriver")
            .field("enclaves_active", &stats.enclaves_active)
            .field("epc_free_pages", &stats.epc_free_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver_with_usable_mib(mib: u64) -> SgxDriver {
        SgxDriver::with_config(
            SimClock::new(),
            EpcConfig::with_usable_mib(mib),
            CostModel::default(),
        )
    }

    #[test]
    fn enclave_lifecycle_counters() {
        let driver = driver_with_usable_mib(16);
        let (id1, latency) = driver.create_enclave(100, 4 * 1024 * 1024, 4).unwrap();
        assert!(latency > SimDuration::ZERO);
        let (id2, _) = driver.create_enclave(200, 2 * 1024 * 1024, 2).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.enclaves_created, 2);
        assert_eq!(stats.enclaves_active, 2);
        assert_eq!(stats.enclaves_removed, 0);
        assert_eq!(
            stats.epc_pages_added,
            SgxDriver::pages_for(4 * 1024 * 1024) + SgxDriver::pages_for(2 * 1024 * 1024)
        );

        driver.destroy_enclave(id1).unwrap();
        let stats = driver.stats();
        assert_eq!(stats.enclaves_active, 1);
        assert_eq!(stats.enclaves_removed, 1);
        assert!(driver.destroy_enclave(id1).is_err(), "double destroy fails");
        assert!(driver.enclave(id2).unwrap().is_active());
        assert_eq!(driver.active_enclaves(), vec![id2]);
    }

    #[test]
    fn create_rejects_empty_enclave() {
        let driver = driver_with_usable_mib(16);
        assert!(matches!(driver.create_enclave(1, 0, 1), Err(SgxError::EmptyEnclave)));
    }

    #[test]
    fn access_validates_enclave_and_range() {
        let driver = driver_with_usable_mib(16);
        let (id, _) = driver.create_enclave(1, 1024 * 1024, 1).unwrap();
        assert!(driver.access_page(id, 0).is_ok());
        let committed = SgxDriver::pages_for(1024 * 1024);
        assert!(matches!(driver.access_page(id, committed), Err(SgxError::PageOutOfRange { .. })));
        assert!(matches!(
            driver.access_page(EnclaveId::from_raw(999), 0),
            Err(SgxError::NoSuchEnclave(999))
        ));
        driver.destroy_enclave(id).unwrap();
        assert!(driver.access_page(id, 0).is_err());
    }

    #[test]
    fn oversubscription_triggers_paging_visible_in_stats() {
        // 8 MiB EPC, enclave of 12 MiB: accesses must page.
        let driver = driver_with_usable_mib(8);
        let (id, _) = driver.create_enclave(1, 12 * 1024 * 1024, 4).unwrap();
        let pages = SgxDriver::pages_for(12 * 1024 * 1024);
        let mut faults = 0;
        for round in 0..2 {
            for page in 0..pages {
                let outcome = driver.access_page(id, page).unwrap();
                if outcome.faulted {
                    faults += 1;
                }
                let _ = round;
            }
        }
        assert!(faults > 0);
        let stats = driver.stats();
        assert!(stats.epc_pages_evicted > 0);
        assert!(stats.enclave_page_faults >= faults);
        assert!(stats.epc_pages_reclaimed > 0);
        assert_eq!(stats.epc_free_pages + (pages.min(stats.epc_total_pages)), {
            // free + resident == total; resident is bounded by both the
            // enclave size and the EPC size.
            stats.epc_free_pages + (stats.epc_total_pages - stats.epc_free_pages)
        });
    }

    #[test]
    fn enclave_fitting_in_epc_never_pages() {
        let driver = driver_with_usable_mib(94);
        // 78 MB database fits into the ~94 MiB EPC (the paper's "small" size).
        let (id, _) = driver.create_enclave(1, 78 * 1000 * 1000, 8).unwrap();
        let pages = SgxDriver::pages_for(78 * 1000 * 1000);
        for page in (0..pages).step_by(7) {
            let outcome = driver.access_page(id, page).unwrap();
            assert!(!outcome.faulted);
        }
        assert_eq!(driver.stats().epc_pages_evicted, 0);
    }

    #[test]
    fn module_params_use_paper_hook_names() {
        let driver = driver_with_usable_mib(16);
        driver.create_enclave(1, 1024 * 1024, 1).unwrap();
        let params = driver.module_params();
        for key in ["sgx_nr_free_pages", "sgx_nr_enclaves", "sgx_nr_evicted"] {
            assert!(params.contains_key(key), "missing hook {key}");
        }
        assert_eq!(params["sgx_nr_enclaves"], 1);
    }

    #[test]
    fn clones_share_driver_state() {
        let driver = driver_with_usable_mib(16);
        let clone = driver.clone();
        clone.create_enclave(1, 1024 * 1024, 1).unwrap();
        assert_eq!(driver.stats().enclaves_active, 1);
    }

    #[test]
    fn swapd_reduces_pressure() {
        let driver = driver_with_usable_mib(4);
        let (_id, _) = driver.create_enclave(1, 4 * 1024 * 1024 - 64 * 1024, 1).unwrap();
        let before = driver.stats().epc_free_pages;
        let (evicted, _) = driver.run_swapd();
        assert!(evicted > 0);
        assert!(driver.stats().epc_free_pages > before);
        assert_eq!(driver.stats().swapd_wakeups, 1);
    }
}
