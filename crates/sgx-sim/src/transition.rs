//! Enclave transition accounting (EENTER / EEXIT / AEX and OCALLs).
//!
//! The paper repeatedly identifies enclave transitions as one of the two
//! dominant SGX overheads (the other being EPC paging): "performing a context
//! switch from the inside to the outside of enclaves still introduces a
//! significant overhead" (§1).  The framework models use this tracker to
//! account every transition and charge its latency.

use serde::{Deserialize, Serialize};
use teemon_sim_core::SimDuration;

use crate::costs::CostModel;

/// The kind of an enclave transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Synchronous entry into the enclave (EENTER), e.g. an ECALL.
    Enter,
    /// Synchronous exit from the enclave (EEXIT), e.g. returning from an
    /// ECALL or issuing an OCALL.
    Exit,
    /// Asynchronous exit (AEX) caused by an interrupt, exception or page
    /// fault while executing inside the enclave.
    AsyncExit,
}

/// Aggregated transition counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionCounts {
    /// Number of EENTER transitions.
    pub enters: u64,
    /// Number of EEXIT transitions.
    pub exits: u64,
    /// Number of asynchronous exits.
    pub async_exits: u64,
}

impl TransitionCounts {
    /// Total number of transitions of any kind.
    pub fn total(&self) -> u64 {
        self.enters + self.exits + self.async_exits
    }
}

/// Tracks enclave transitions and converts them into latency.
#[derive(Debug, Clone)]
pub struct TransitionTracker {
    costs: CostModel,
    counts: TransitionCounts,
    total_latency: SimDuration,
}

impl TransitionTracker {
    /// Creates a tracker using `costs` for latency accounting.
    pub fn new(costs: CostModel) -> Self {
        Self { costs, counts: TransitionCounts::default(), total_latency: SimDuration::ZERO }
    }

    /// Records one transition and returns its latency.
    pub fn record(&mut self, kind: TransitionKind) -> SimDuration {
        let latency = match kind {
            TransitionKind::Enter => {
                self.counts.enters += 1;
                SimDuration::from_nanos(self.costs.eenter_ns)
            }
            TransitionKind::Exit => {
                self.counts.exits += 1;
                SimDuration::from_nanos(self.costs.eexit_ns)
            }
            TransitionKind::AsyncExit => {
                self.counts.async_exits += 1;
                SimDuration::from_nanos(self.costs.aex_ns)
            }
        };
        self.total_latency += latency;
        latency
    }

    /// Records a full synchronous round trip (exit + re-enter), the pattern a
    /// blocking OCALL/system call produces, and returns its latency.
    pub fn record_round_trip(&mut self) -> SimDuration {
        self.record(TransitionKind::Exit) + self.record(TransitionKind::Enter)
    }

    /// Counter snapshot.
    pub fn counts(&self) -> TransitionCounts {
        self.counts
    }

    /// Total latency attributed to transitions so far.
    pub fn total_latency(&self) -> SimDuration {
        self.total_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_accumulate_latency() {
        let mut t = TransitionTracker::new(CostModel::default());
        t.record(TransitionKind::Enter);
        t.record(TransitionKind::Exit);
        t.record(TransitionKind::AsyncExit);
        assert_eq!(t.counts().total(), 3);
        assert_eq!(t.counts().enters, 1);
        assert!(t.total_latency() >= SimDuration::from_micros(5));
    }

    #[test]
    fn round_trip_counts_exit_and_enter() {
        let mut t = TransitionTracker::new(CostModel::default());
        let latency = t.record_round_trip();
        assert_eq!(t.counts().enters, 1);
        assert_eq!(t.counts().exits, 1);
        assert_eq!(t.counts().async_exits, 0);
        assert_eq!(latency, t.total_latency());
    }

    #[test]
    fn native_cost_model_is_free() {
        let mut t = TransitionTracker::new(CostModel::native());
        for _ in 0..100 {
            t.record_round_trip();
        }
        assert_eq!(t.total_latency(), SimDuration::ZERO);
        assert_eq!(t.counts().total(), 200);
    }
}
