//! The Enclave Page Cache (EPC) model.
//!
//! The EPC is a fixed pool of hardware-protected 4 KiB pages.  On the
//! evaluation hardware of the paper roughly 128 MiB are reserved of which
//! ~94 MiB are usable for enclave pages (§3.1).  When enclaves commit more
//! pages than fit, the driver's swapping daemon (`ksgxswapd`) first marks
//! resident pages "old" (not recently accessed) and then evicts old pages to
//! encrypted buffers in main memory (EWB); touching an evicted page later
//! triggers a page fault and a reload (ELDU).
//!
//! The model tracks exactly the counters the TEEMon TME exports:
//! total pages, free pages, pages marked old, pages evicted, pages added and
//! pages reclaimed.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::costs::CostModel;
use crate::enclave::EnclaveId;
use crate::SgxError;
use teemon_sim_core::SimDuration;

/// Size of one EPC page in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Static configuration of the EPC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpcConfig {
    /// Total EPC size in bytes (including SGX metadata structures).
    pub total_bytes: u64,
    /// Bytes reserved for SGX internal metadata (version arrays, SECS, …) and
    /// therefore unavailable to applications.
    pub reserved_bytes: u64,
    /// Low watermark (in pages): when free pages drop below this, the
    /// swapping daemon starts marking pages old.
    pub low_watermark_pages: u64,
    /// High watermark (in pages): the swapping daemon evicts until at least
    /// this many pages are free again.
    pub high_watermark_pages: u64,
}

impl Default for EpcConfig {
    fn default() -> Self {
        // ~128 MiB total, ~94 MiB usable — the numbers the paper quotes (§3.1).
        let total = 128 * 1024 * 1024;
        let usable = 94 * 1024 * 1024;
        Self {
            total_bytes: total,
            reserved_bytes: total - usable,
            low_watermark_pages: 32,
            high_watermark_pages: 256,
        }
    }
}

impl EpcConfig {
    /// Config for an EPC with exactly `usable_mib` MiB of application-usable
    /// protected memory.
    pub fn with_usable_mib(usable_mib: u64) -> Self {
        let usable = usable_mib * 1024 * 1024;
        Self {
            total_bytes: usable + 8 * 1024 * 1024,
            reserved_bytes: 8 * 1024 * 1024,
            ..Self::default()
        }
    }

    /// Number of pages usable by enclaves.
    pub fn usable_pages(&self) -> u64 {
        (self.total_bytes - self.reserved_bytes) / PAGE_SIZE
    }
}

/// Monotonic counters describing EPC activity since driver load — the exact
/// set of values the paper's TME reads from the instrumented driver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpcCounters {
    /// Pages added to enclaves (EADD/EAUG).
    pub pages_added: u64,
    /// Pages evicted from the EPC to main memory (EWB).
    pub pages_evicted: u64,
    /// Evicted pages reloaded into the EPC (ELDU).
    pub pages_reclaimed: u64,
    /// Pages marked as "old" by the swapping daemon.
    pub pages_marked_old: u64,
    /// Enclave page faults caused by accesses to evicted pages.
    pub enclave_page_faults: u64,
    /// Number of times the swapping daemon woke up to make room.
    pub swapd_wakeups: u64,
}

/// State of a single resident page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ResidentPage {
    old: bool,
    /// Monotonic access sequence number; smaller = less recently used.
    seq: u64,
}

/// Result of touching an enclave page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// `true` when the access faulted because the page was not resident.
    pub faulted: bool,
    /// Pages that had to be evicted to make room for this access.
    pub evicted: u64,
    /// Simulated latency of the access (excluding the application's own work).
    pub latency: SimDuration,
}

impl AccessOutcome {
    /// An access that hit a resident page and required no driver work.
    pub const HIT: AccessOutcome =
        AccessOutcome { faulted: false, evicted: 0, latency: SimDuration::ZERO };
}

type PageKey = (EnclaveId, u64);

/// The Enclave Page Cache.
#[derive(Debug)]
pub struct Epc {
    config: EpcConfig,
    costs: CostModel,
    /// Pages currently resident, with their age state.
    resident: HashMap<PageKey, ResidentPage>,
    /// LRU order of resident pages keyed by access sequence
    /// (first entry = least recently used).
    lru: BTreeMap<u64, PageKey>,
    next_seq: u64,
    /// Pages evicted to main memory (still committed to their enclave).
    swapped: HashMap<PageKey, ()>,
    counters: EpcCounters,
}

impl Epc {
    /// Creates an EPC with the given configuration and cost model.
    pub fn new(config: EpcConfig, costs: CostModel) -> Self {
        Self {
            config,
            costs,
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            next_seq: 0,
            swapped: HashMap::new(),
            counters: EpcCounters::default(),
        }
    }

    /// Creates an EPC with the default (~94 MiB usable) configuration.
    pub fn with_defaults() -> Self {
        Self::new(EpcConfig::default(), CostModel::default())
    }

    /// The static configuration.
    pub fn config(&self) -> &EpcConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn counters(&self) -> EpcCounters {
        self.counters
    }

    /// Number of pages currently free.
    pub fn free_pages(&self) -> u64 {
        self.config.usable_pages() - self.resident.len() as u64
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Number of committed pages currently living in main memory.
    pub fn swapped_pages(&self) -> u64 {
        self.swapped.len() as u64
    }

    /// Number of resident pages currently marked old.
    pub fn old_pages(&self) -> u64 {
        self.resident.values().filter(|p| p.old).count() as u64
    }

    fn lru_touch(&mut self, key: PageKey) {
        if let Some(meta) = self.resident.get_mut(&key) {
            self.lru.remove(&meta.seq);
            meta.seq = self.next_seq;
            self.lru.insert(self.next_seq, key);
            self.next_seq += 1;
        }
    }

    fn insert_resident(&mut self, key: PageKey, old: bool) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.resident.insert(key, ResidentPage { old, seq });
        self.lru.insert(seq, key);
    }

    /// Runs the swapping daemon: if free pages are below the low watermark,
    /// mark LRU pages old and evict old pages until the high watermark is
    /// reached.  Returns the number of pages evicted and the time spent.
    pub fn run_swapd(&mut self) -> (u64, SimDuration) {
        if self.free_pages() >= self.config.low_watermark_pages {
            return (0, SimDuration::ZERO);
        }
        self.counters.swapd_wakeups += 1;
        let mut evicted = 0;
        let mut latency = SimDuration::ZERO;
        let target = self.config.high_watermark_pages.min(self.config.usable_pages());
        // Phase 1: mark the least recently used part of the deficit as old.
        let deficit = target.saturating_sub(self.free_pages());
        let mut marked = 0;
        let victims: Vec<PageKey> = self.lru.values().take(deficit as usize).copied().collect();
        for key in victims {
            if let Some(page) = self.resident.get_mut(&key) {
                if !page.old {
                    page.old = true;
                    marked += 1;
                }
            }
        }
        self.counters.pages_marked_old += marked;
        // Phase 2: evict old pages in LRU order until the target is met.
        while self.free_pages() < target {
            let Some(victim) = self.pick_victim() else { break };
            self.evict_page(victim);
            evicted += 1;
            latency += self.costs.evict();
        }
        (evicted, latency)
    }

    /// The plain LRU victim (least recently used resident page).
    fn lru_victim(&self) -> Option<PageKey> {
        self.lru.values().next().copied()
    }

    /// The swapd victim: prefer the least recently used *old* page within a
    /// bounded scan window, falling back to the plain LRU victim.
    fn pick_victim(&self) -> Option<PageKey> {
        const SCAN_WINDOW: usize = 512;
        self.lru
            .values()
            .take(SCAN_WINDOW)
            .find(|k| self.resident.get(*k).map(|p| p.old).unwrap_or(false))
            .copied()
            .or_else(|| self.lru_victim())
    }

    fn evict_page(&mut self, key: PageKey) {
        if let Some(meta) = self.resident.remove(&key) {
            self.lru.remove(&meta.seq);
            self.swapped.insert(key, ());
            self.counters.pages_evicted += 1;
        }
    }

    fn make_room_for_one(&mut self) -> (u64, SimDuration) {
        let mut evicted = 0;
        let mut latency = SimDuration::ZERO;
        if self.free_pages() == 0 {
            if let Some(victim) = self.lru_victim() {
                self.evict_page(victim);
                evicted += 1;
                latency += self.costs.evict();
            }
        }
        (evicted, latency)
    }

    /// Commits (adds) a fresh page to an enclave, evicting if necessary.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::OutOfEpc`] when the EPC has zero usable pages.
    pub fn add_page(&mut self, enclave: EnclaveId, page: u64) -> Result<AccessOutcome, SgxError> {
        if self.config.usable_pages() == 0 {
            return Err(SgxError::OutOfEpc { requested_pages: 1 });
        }
        let key = (enclave, page);
        if self.resident.contains_key(&key) || self.swapped.contains_key(&key) {
            // Already committed — treat as a touch.
            return Ok(self.touch(enclave, page));
        }
        let (evicted, mut latency) = self.make_room_for_one();
        latency += SimDuration::from_nanos(self.costs.eadd_ns);
        self.insert_resident(key, false);
        self.counters.pages_added += 1;
        Ok(AccessOutcome { faulted: false, evicted, latency })
    }

    /// Touches a committed page: on a resident page this refreshes its LRU
    /// position; on an evicted page it triggers a fault, possibly an eviction
    /// of a victim, and a reload.
    ///
    /// Touching a page that was never committed behaves like [`Epc::add_page`]
    /// (demand paging via EAUG), which is how SGX2-style frameworks grow the
    /// heap lazily.
    pub fn touch(&mut self, enclave: EnclaveId, page: u64) -> AccessOutcome {
        let key = (enclave, page);
        if self.resident.contains_key(&key) {
            if let Some(p) = self.resident.get_mut(&key) {
                p.old = false;
            }
            self.lru_touch(key);
            return AccessOutcome::HIT;
        }
        if self.swapped.remove(&key).is_some() {
            // Fault on an evicted page: make room, then reload.
            self.counters.enclave_page_faults += 1;
            let (evicted, mut latency) = self.make_room_for_one();
            latency += self.costs.fault_reload();
            self.insert_resident(key, false);
            self.counters.pages_reclaimed += 1;
            return AccessOutcome { faulted: true, evicted, latency };
        }
        // Demand-commit a new page.
        match self.add_page(enclave, page) {
            Ok(outcome) => outcome,
            Err(_) => AccessOutcome::HIT,
        }
    }

    /// Removes every page (resident or swapped) belonging to `enclave` and
    /// returns how many pages were released.
    pub fn remove_enclave(&mut self, enclave: EnclaveId) -> u64 {
        let before = self.resident.len() + self.swapped.len();
        self.resident.retain(|(e, _), _| *e != enclave);
        self.swapped.retain(|(e, _), _| *e != enclave);
        let resident = &self.resident;
        self.lru.retain(|_, key| resident.contains_key(key));
        (before - self.resident.len() - self.swapped.len()) as u64
    }

    /// Total pages committed (resident + swapped) for `enclave`.
    pub fn committed_pages(&self, enclave: EnclaveId) -> u64 {
        let resident = self.resident.keys().filter(|(e, _)| *e == enclave).count();
        let swapped = self.swapped.keys().filter(|(e, _)| *e == enclave).count();
        (resident + swapped) as u64
    }

    /// Conservation invariant: free + resident == usable, and no page is both
    /// resident and swapped.  Exposed for property-based tests.
    pub fn check_invariants(&self) -> bool {
        let no_overlap = self.resident.keys().all(|k| !self.swapped.contains_key(k));
        let lru_matches = self.lru.len() == self.resident.len()
            && self
                .lru
                .iter()
                .all(|(seq, key)| self.resident.get(key).map(|p| p.seq == *seq).unwrap_or(false));
        let conserved = self.free_pages() + self.resident_pages() == self.config.usable_pages();
        no_overlap && lru_matches && conserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveId;

    fn tiny_epc(pages: u64) -> Epc {
        let config = EpcConfig {
            total_bytes: pages * PAGE_SIZE + 1024 * 1024,
            reserved_bytes: 1024 * 1024,
            low_watermark_pages: 2,
            high_watermark_pages: 4.min(pages),
        };
        Epc::new(config, CostModel::default())
    }

    const E1: EnclaveId = EnclaveId::from_raw(1);
    const E2: EnclaveId = EnclaveId::from_raw(2);

    #[test]
    fn default_config_matches_paper_numbers() {
        let config = EpcConfig::default();
        assert_eq!(config.total_bytes, 128 * 1024 * 1024);
        // ~94 MiB usable → ~24 064 pages.
        assert_eq!(config.usable_pages(), 94 * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn add_page_consumes_free_pages() {
        let mut epc = tiny_epc(8);
        assert_eq!(epc.free_pages(), 8);
        for i in 0..4 {
            epc.add_page(E1, i).unwrap();
        }
        assert_eq!(epc.free_pages(), 4);
        assert_eq!(epc.counters().pages_added, 4);
        assert!(epc.check_invariants());
    }

    #[test]
    fn exceeding_epc_evicts_lru_pages() {
        let mut epc = tiny_epc(4);
        for i in 0..4 {
            epc.add_page(E1, i).unwrap();
        }
        // Adding a 5th page evicts the least recently used (page 0).
        let outcome = epc.add_page(E1, 4).unwrap();
        assert_eq!(outcome.evicted, 1);
        assert_eq!(epc.counters().pages_evicted, 1);
        assert_eq!(epc.swapped_pages(), 1);
        // Touching page 0 now faults and reclaims it.
        let outcome = epc.touch(E1, 0);
        assert!(outcome.faulted);
        assert_eq!(epc.counters().enclave_page_faults, 1);
        assert_eq!(epc.counters().pages_reclaimed, 1);
        assert!(epc.check_invariants());
    }

    #[test]
    fn touch_refreshes_lru_order() {
        let mut epc = tiny_epc(3);
        epc.add_page(E1, 0).unwrap();
        epc.add_page(E1, 1).unwrap();
        epc.add_page(E1, 2).unwrap();
        // Touch page 0 so that page 1 becomes the LRU victim.
        epc.touch(E1, 0);
        epc.add_page(E1, 3).unwrap();
        assert!(epc.swapped.contains_key(&(E1, 1)));
        assert!(!epc.swapped.contains_key(&(E1, 0)));
    }

    #[test]
    fn working_set_within_epc_never_faults() {
        let mut epc = tiny_epc(64);
        for i in 0..32 {
            epc.add_page(E1, i).unwrap();
        }
        for round in 0..10 {
            for i in 0..32 {
                let outcome = epc.touch(E1, i);
                assert!(!outcome.faulted, "round {round} page {i} faulted");
            }
        }
        assert_eq!(epc.counters().enclave_page_faults, 0);
        assert_eq!(epc.counters().pages_evicted, 0);
    }

    #[test]
    fn working_set_larger_than_epc_thrashes() {
        let mut epc = tiny_epc(16);
        // Commit 32 pages, then scan them repeatedly: every access misses
        // under a pure LRU with a sequential scan larger than the cache.
        for i in 0..32 {
            epc.add_page(E1, i).unwrap();
        }
        let mut faults = 0;
        for _ in 0..3 {
            for i in 0..32 {
                if epc.touch(E1, i).faulted {
                    faults += 1;
                }
            }
        }
        assert!(faults > 80, "expected heavy thrashing, got {faults} faults");
        assert!(epc.counters().pages_evicted >= faults);
        assert!(epc.check_invariants());
    }

    #[test]
    fn swapd_marks_old_then_evicts() {
        let mut epc = tiny_epc(8);
        for i in 0..7 {
            epc.add_page(E1, i).unwrap();
        }
        // Free = 1 < low watermark (2) → swapd should run.
        let (evicted, latency) = epc.run_swapd();
        assert!(evicted > 0);
        assert!(latency > SimDuration::ZERO);
        assert!(epc.counters().pages_marked_old > 0);
        assert_eq!(epc.counters().swapd_wakeups, 1);
        assert!(epc.free_pages() >= 4);
        // With plenty free it does nothing.
        let (evicted, _) = epc.run_swapd();
        assert_eq!(evicted, 0);
        assert_eq!(epc.counters().swapd_wakeups, 1);
    }

    #[test]
    fn remove_enclave_releases_pages() {
        let mut epc = tiny_epc(8);
        for i in 0..4 {
            epc.add_page(E1, i).unwrap();
        }
        for i in 0..6 {
            epc.add_page(E2, i).unwrap();
        }
        assert!(epc.swapped_pages() > 0);
        let released = epc.remove_enclave(E1);
        assert_eq!(released, 4);
        assert_eq!(epc.committed_pages(E1), 0);
        assert_eq!(epc.committed_pages(E2), 6);
        assert!(epc.check_invariants());
    }

    #[test]
    fn double_add_is_idempotent() {
        let mut epc = tiny_epc(8);
        epc.add_page(E1, 0).unwrap();
        epc.add_page(E1, 0).unwrap();
        assert_eq!(epc.counters().pages_added, 1);
        assert_eq!(epc.resident_pages(), 1);
    }

    #[test]
    fn zero_page_epc_errors() {
        let config = EpcConfig {
            total_bytes: 1024 * 1024,
            reserved_bytes: 1024 * 1024,
            low_watermark_pages: 0,
            high_watermark_pages: 0,
        };
        let mut epc = Epc::new(config, CostModel::default());
        assert!(matches!(epc.add_page(E1, 0), Err(SgxError::OutOfEpc { .. })));
    }

    proptest::proptest! {
        #[test]
        fn prop_invariants_hold_under_random_access(
            ops in proptest::collection::vec((0u8..4, 0u64..2, 0u64..64), 1..400)
        ) {
            let mut epc = tiny_epc(16);
            for (op, enclave, page) in ops {
                let enclave = EnclaveId::from_raw(enclave + 1);
                match op {
                    0 => { let _ = epc.add_page(enclave, page); }
                    1 => { let _ = epc.touch(enclave, page); }
                    2 => { let _ = epc.run_swapd(); }
                    _ => { let _ = epc.remove_enclave(enclave); }
                }
                proptest::prop_assert!(epc.check_invariants());
                proptest::prop_assert!(epc.resident_pages() <= epc.config().usable_pages());
            }
        }

        #[test]
        fn prop_counters_are_monotonic(pages in 1u64..128, accesses in 1usize..200) {
            let mut epc = tiny_epc(8);
            let mut last = EpcCounters::default();
            for i in 0..accesses {
                let _ = epc.touch(E1, (i as u64) % pages);
                let now = epc.counters();
                proptest::prop_assert!(now.pages_added >= last.pages_added);
                proptest::prop_assert!(now.pages_evicted >= last.pages_evicted);
                proptest::prop_assert!(now.pages_reclaimed >= last.pages_reclaimed);
                proptest::prop_assert!(now.enclave_page_faults >= last.enclave_page_faults);
                last = now;
            }
        }
    }
}
