//! Enclave lifecycle and working-set bookkeeping.

use serde::{Deserialize, Serialize};
use teemon_sim_core::SimTime;

use crate::epc::PAGE_SIZE;

/// Identifier of an enclave within the simulated driver.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct EnclaveId(u64);

impl EnclaveId {
    /// Constructs an id from a raw integer (used by tests and the driver).
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw integer value.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "enclave-{}", self.0)
    }
}

/// Lifecycle state of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnclaveState {
    /// Created (ECREATE) but not yet initialised (EINIT).
    Created,
    /// Initialised and running.
    Active,
    /// Destroyed; kept only for accounting.
    Removed,
}

/// A simulated enclave: its committed size, owner process and lifecycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Enclave {
    /// Identifier assigned by the driver.
    pub id: EnclaveId,
    /// PID of the owning (simulated) process.
    pub owner_pid: u32,
    /// Committed enclave size in bytes (heap + code + stacks).
    pub size_bytes: u64,
    /// Lifecycle state.
    pub state: EnclaveState,
    /// Virtual time at which the enclave was created.
    pub created_at: SimTime,
    /// Number of threads (TCS pages) configured inside the enclave.
    pub threads: u32,
}

impl Enclave {
    /// Number of 4 KiB pages the enclave commits.
    pub fn pages(&self) -> u64 {
        self.size_bytes.div_ceil(PAGE_SIZE)
    }

    /// `true` while the enclave is usable.
    pub fn is_active(&self) -> bool {
        self.state == EnclaveState::Active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_page_count_rounds_up() {
        let enclave = Enclave {
            id: EnclaveId::from_raw(1),
            owner_pid: 100,
            size_bytes: PAGE_SIZE * 3 + 1,
            state: EnclaveState::Active,
            created_at: SimTime::ZERO,
            threads: 4,
        };
        assert_eq!(enclave.pages(), 4);
        assert!(enclave.is_active());
    }

    #[test]
    fn enclave_id_display_and_raw() {
        let id = EnclaveId::from_raw(42);
        assert_eq!(id.as_u64(), 42);
        assert_eq!(id.to_string(), "enclave-42");
    }

    #[test]
    fn removed_enclaves_are_not_active() {
        let enclave = Enclave {
            id: EnclaveId::from_raw(1),
            owner_pid: 1,
            size_bytes: PAGE_SIZE,
            state: EnclaveState::Removed,
            created_at: SimTime::ZERO,
            threads: 1,
        };
        assert!(!enclave.is_active());
    }
}
