//! Text rendering primitives for panels.

/// Renders a sparkline-style ASCII chart of `values` with the given width and
/// height.  Values are downsampled (mean per bucket) to fit the width.
pub fn render_ascii_chart(values: &[f64], width: usize, height: usize) -> String {
    let width = width.clamp(8, 200);
    let height = height.clamp(2, 40);
    if values.is_empty() {
        return "(no data)\n".to_string();
    }
    // Downsample to `width` buckets.
    let buckets: Vec<f64> = (0..width)
        .map(|i| {
            let start = i * values.len() / width;
            let end = (((i + 1) * values.len()) / width).max(start + 1).min(values.len());
            let slice = &values[start..end.max(start + 1).min(values.len())];
            if slice.is_empty() {
                f64::NAN
            } else {
                slice.iter().sum::<f64>() / slice.len() as f64
            }
        })
        .collect();
    let finite: Vec<f64> = buckets.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "(no data)\n".to_string();
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);

    let mut rows = vec![vec![' '; width]; height];
    for (x, value) in buckets.iter().enumerate() {
        if !value.is_finite() {
            continue;
        }
        let level = (((value - min) / span) * (height - 1) as f64).round() as usize;
        for (y, row) in rows.iter_mut().enumerate() {
            // y = 0 is the top row.
            let row_level = height - 1 - y;
            if row_level == level {
                row[x] = '*';
            } else if row_level < level {
                row[x] = '.';
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("max {max:.2}\n"));
    for row in rows {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push_str(&format!("min {min:.2} ({} samples)\n", values.len()));
    out
}

/// Renders a filled gauge bar `value / max`.
pub fn render_gauge(value: f64, max: f64, width: usize) -> String {
    let width = width.clamp(10, 200);
    let bar_width = width.saturating_sub(2).max(4);
    let max = if max <= 0.0 { 1.0 } else { max };
    let fraction = (value / max).clamp(0.0, 1.0);
    let filled = (fraction * bar_width as f64).round() as usize;
    let mut bar = String::with_capacity(width + 24);
    bar.push('[');
    for i in 0..bar_width {
        bar.push(if i < filled { '#' } else { '-' });
    }
    bar.push(']');
    format!("{bar} {value:.1}/{max:.1} ({:.0}%)\n", fraction * 100.0)
}

/// Renders a two-column table of `(label, value)` rows.
pub fn render_table(rows: &[(String, f64)], unit: &str) -> String {
    if rows.is_empty() {
        return "(no rows)\n".to_string();
    }
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(8).min(60);
    let mut out = String::new();
    let mut sorted: Vec<&(String, f64)> = rows.iter().collect();
    sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (label, value) in sorted {
        let mut label = label.clone();
        if label.len() > label_width {
            label.truncate(label_width);
        }
        out.push_str(&format!("{label:<label_width$}  {value:>14.2} {unit}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_min_max_and_shape() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let chart = render_ascii_chart(&values, 40, 8);
        assert!(chart.contains("max 9"));
        assert!(chart.contains("min "));
        assert!(chart.contains('*'));
        assert_eq!(chart.lines().count(), 10);
    }

    #[test]
    fn chart_handles_empty_and_constant_series() {
        assert_eq!(render_ascii_chart(&[], 40, 8), "(no data)\n");
        let flat = render_ascii_chart(&[5.0; 30], 20, 4);
        assert!(flat.contains('*'));
    }

    #[test]
    fn gauge_scales_and_clamps() {
        let half = render_gauge(50.0, 100.0, 30);
        assert!(half.contains("(50%)"));
        let over = render_gauge(500.0, 100.0, 30);
        assert!(over.contains("(100%)"));
        let zero_max = render_gauge(1.0, 0.0, 30);
        assert!(zero_max.contains('['));
    }

    #[test]
    fn table_sorts_descending_and_handles_empty() {
        let rows = vec![("small".to_string(), 1.0), ("big".to_string(), 100.0)];
        let table = render_table(&rows, "ops");
        let first_line = table.lines().next().unwrap();
        assert!(first_line.contains("big"));
        assert!(table.contains("ops"));
        assert_eq!(render_table(&[], ""), "(no rows)\n");
    }
}
