//! PMV — the Performance Metrics Visualization component.
//!
//! The paper uses Grafana with three dashboards (§5.3): an SGX dashboard (EPC
//! metrics plus selected eBPF metrics), a Docker dashboard (cAdvisor data) and
//! an infrastructure dashboard (node exporter + eBPF exporter).  Each
//! dashboard is a set of panels — graphs, gauges, single stats, tables,
//! histograms — bound to queries against the aggregation component, with a
//! process filter and a selectable time range (Figure 3).
//!
//! This crate reproduces that layer with text rendering: [`Panel`]s bind a
//! [`teemon_tsdb::Selector`] to a visualisation type, [`Dashboard`]s group
//! panels, [`standard`] builds the three dashboards of the paper, and
//! rendering produces both human-readable ASCII and machine-readable JSON.

#![warn(missing_docs)]

pub mod dashboards;
pub mod panel;
pub mod render;

pub use dashboards::{standard, Dashboard, DashboardSet};
pub use panel::{Panel, PanelData, PanelKind};
pub use render::{render_ascii_chart, render_gauge, render_table};
