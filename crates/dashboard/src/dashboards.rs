//! Dashboards and the three standard TEEMon dashboards.

use serde::{Deserialize, Serialize};
use teemon_tsdb::{AggregateOp, Selector, TimeSeriesDb};

use crate::panel::{Panel, PanelData};

/// A named group of panels (one Grafana dashboard).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dashboard {
    /// Dashboard title.
    pub title: String,
    /// Panels in display order.
    pub panels: Vec<Panel>,
}

impl Dashboard {
    /// Creates an empty dashboard.
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), panels: Vec::new() }
    }

    /// Adds a panel.
    #[must_use]
    pub fn with_panel(mut self, panel: Panel) -> Self {
        self.panels.push(panel);
        self
    }

    /// Evaluates every panel over `[start_ms, end_ms]`.
    pub fn evaluate(&self, db: &TimeSeriesDb, start_ms: u64, end_ms: u64) -> Vec<PanelData> {
        self.panels.iter().map(|p| p.evaluate(db, start_ms, end_ms)).collect()
    }

    /// Applies a process filter (the drop-down of Figure 3): every panel's
    /// selector gains a `process=<name>` matcher.
    #[must_use]
    pub fn filtered_by_process(mut self, process: &str) -> Self {
        for panel in &mut self.panels {
            panel.selector = panel.selector.clone().with_label("process", process);
        }
        self
    }

    /// Renders the whole dashboard as text.
    pub fn render(&self, db: &TimeSeriesDb, start_ms: u64, end_ms: u64, width: usize) -> String {
        let mut out = format!("### {} ###\n", self.title);
        for data in self.evaluate(db, start_ms, end_ms) {
            out.push_str(&data.render(width));
            out.push('\n');
        }
        out
    }

    /// Serialises the dashboard definition to JSON (the artefact a user would
    /// import into Grafana).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Loads a dashboard definition from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// The set of dashboards deployed together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DashboardSet {
    /// All dashboards.
    pub dashboards: Vec<Dashboard>,
}

impl DashboardSet {
    /// Finds a dashboard by title.
    pub fn get(&self, title: &str) -> Option<&Dashboard> {
        self.dashboards.iter().find(|d| d.title == title)
    }

    /// Titles of every dashboard.
    pub fn titles(&self) -> Vec<&str> {
        self.dashboards.iter().map(|d| d.title.as_str()).collect()
    }
}

/// Builds the standard TEEMon dashboards: the three of §5.3 (SGX, containers
/// and infrastructure) plus the dogfooded "Teemon Self" dashboard over the
/// engine's own telemetry (`job="teemon_self"`).
pub fn standard() -> DashboardSet {
    let sgx = Dashboard::new("SGX")
        .with_panel(
            Panel::gauge("EPC free pages", Selector::metric("sgx_nr_free_pages"), 24_064.0)
                .with_unit("pages"),
        )
        .with_panel(
            Panel::graph("EPC pages evicted", Selector::metric("sgx_pages_evicted_total"))
                .with_unit("pages"),
        )
        .with_panel(
            Panel::teeql(
                "EPC eviction rate by node",
                "sum by (node) (rate(sgx_pages_evicted_total[30s]))",
            )
            .with_unit("pages/s"),
        )
        .with_panel(
            Panel::graph("Enclave page faults", Selector::metric("sgx_enclave_page_faults_total"))
                .with_unit("faults"),
        )
        .with_panel(Panel::stat("Active enclaves", Selector::metric("sgx_nr_enclaves")))
        .with_panel(
            Panel::table("System calls by type", Selector::metric("teemon_syscalls_total"))
                .with_unit("calls"),
        )
        .with_panel(
            Panel::graph("Page faults (host)", Selector::metric("teemon_page_faults_total"))
                .with_unit("faults"),
        );

    let docker = Dashboard::new("Containers")
        .with_panel(
            Panel::table("CPU by container", Selector::metric("container_cpu_usage_seconds_total"))
                .with_unit("s"),
        )
        .with_panel(
            Panel::table(
                "Memory working set",
                Selector::metric("container_memory_working_set_bytes"),
            )
            .with_unit("bytes"),
        )
        .with_panel(
            Panel::graph(
                "Network received",
                Selector::metric("container_network_receive_bytes_total"),
            )
            .with_unit("bytes"),
        );

    let infrastructure = Dashboard::new("Infrastructure")
        .with_panel(
            Panel::graph("Context switches", Selector::metric("teemon_context_switches_total"))
                .with_aggregate(AggregateOp::Sum)
                .with_unit("switches"),
        )
        .with_panel(
            Panel::graph("Cache events", Selector::metric("teemon_cache_events_total"))
                .with_unit("events"),
        )
        .with_panel(
            Panel::gauge(
                "Memory available",
                Selector::metric("node_memory_MemAvailable_bytes"),
                32.0 * 1024.0 * 1024.0 * 1024.0,
            )
            .with_unit("bytes"),
        )
        .with_panel(
            Panel::stat("Nodes up", Selector::metric("up")).with_aggregate(AggregateOp::Sum),
        )
        .with_panel(
            Panel::table("Scrape health", Selector::metric("up")).with_aggregate(AggregateOp::Min),
        );

    // The engine watching itself: every panel reads series the self-scrape
    // target ingests from `teemon_obs` probes (no external exporter involved).
    let teemon_self = Dashboard::new("Teemon Self")
        .with_panel(
            Panel::teeql("Scrape rounds", "rate(teemon_scrape_rounds_total[30s])")
                .with_unit("rounds/s"),
        )
        // Chunk memory only — `StorageStats::total_bytes` adds the symbol
        // and index panels below for the engine's whole footprint.
        .with_panel(
            Panel::stat("Resident chunk bytes", Selector::metric("teemon_tsdb_resident_bytes"))
                .with_unit("bytes"),
        )
        .with_panel(
            Panel::stat("Symbol table bytes", Selector::metric("teemon_tsdb_symbol_bytes"))
                .with_unit("bytes"),
        )
        .with_panel(
            Panel::stat("Index bytes", Selector::metric("teemon_tsdb_index_bytes"))
                .with_unit("bytes"),
        )
        .with_panel(
            Panel::stat("Interned symbols", Selector::metric("teemon_tsdb_symbols"))
                .with_unit("symbols"),
        )
        .with_panel(
            Panel::stat("Symbols swept", Selector::metric("teemon_tsdb_symbols_swept_total"))
                .with_unit("symbols"),
        )
        .with_panel(
            Panel::teeql("Budget rejections", "rate(teemon_scrape_budget_rejected_total[30s])")
                .with_unit("samples/s"),
        )
        .with_panel(
            Panel::table("Overflow by job", Selector::metric("teemon_overflow_series_total"))
                .with_unit("samples"),
        )
        .with_panel(
            Panel::stat(
                "HTTP too-many-series rejections",
                Selector::metric("teemon_http_cardinality_rejected_total"),
            )
            .with_unit("requests"),
        )
        .with_panel(
            Panel::stat("Stored samples", Selector::metric("teemon_tsdb_samples"))
                .with_unit("samples"),
        )
        .with_panel(
            Panel::table("Series per shard", Selector::metric("teemon_tsdb_shard_series"))
                .with_unit("series"),
        )
        .with_panel(
            Panel::teeql("Shard append heat", "rate(teemon_tsdb_shard_appends_total[30s])")
                .with_unit("samples/s"),
        )
        .with_panel(
            Panel::teeql("Query modes", "rate(teemon_query_range_total[30s])")
                .with_unit("queries/s"),
        )
        .with_panel(
            Panel::teeql("Slow queries", "rate(teemon_query_slow_total[30s])")
                .with_unit("queries/s"),
        )
        .with_panel(
            Panel::table("Lock contention", Selector::metric("teemon_lock_contended_total"))
                .with_unit("acquires"),
        )
        .with_panel(
            Panel::teeql("WAL write rate", "rate(teemon_wal_bytes_written_total[30s])")
                .with_unit("bytes/s"),
        )
        .with_panel(
            Panel::stat("WAL salvaged tails", Selector::metric("teemon_wal_salvage_total"))
                .with_unit("truncations"),
        )
        .with_panel(
            Panel::stat("WAL failed shards", Selector::metric("teemon_wal_failed_shards"))
                .with_unit("shards"),
        )
        .with_panel(
            Panel::stat("WAL unclean rounds", Selector::metric("teemon_wal_unclean_rounds_total"))
                .with_unit("rounds"),
        )
        .with_panel(
            Panel::stat("HTTP shed requests", Selector::metric("teemon_http_shed_total"))
                .with_unit("requests"),
        )
        .with_panel(
            Panel::stat("HTTP handler panics", Selector::metric("teemon_http_panics_total"))
                .with_unit("panics"),
        )
        .with_panel(
            Panel::stat("HTTP slow clients", Selector::metric("teemon_http_slow_clients_total"))
                .with_unit("clients"),
        );

    DashboardSet { dashboards: vec![sgx, docker, infrastructure, teemon_self] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::Labels;

    fn populated_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..12u64 {
            let labels = Labels::from_pairs([("node", "n1")]);
            db.append("sgx_nr_free_pages", &labels, t * 5_000, 24_000.0 - 500.0 * t as f64);
            db.append("sgx_pages_evicted_total", &labels, t * 5_000, (t * 40) as f64);
            db.append("sgx_nr_enclaves", &labels, t * 5_000, 3.0);
            db.append("up", &Labels::from_pairs([("instance", "n1:9090")]), t * 5_000, 1.0);
            db.append(
                "container_cpu_usage_seconds_total",
                &Labels::from_pairs([("container", "redis-0")]),
                t * 5_000,
                t as f64,
            );
        }
        db
    }

    #[test]
    fn standard_set_has_four_dashboards() {
        let set = standard();
        assert_eq!(set.dashboards.len(), 4);
        assert_eq!(set.titles(), vec!["SGX", "Containers", "Infrastructure", "Teemon Self"]);
        assert!(set.get("SGX").is_some());
        assert!(set.get("Nope").is_none());
        // The SGX dashboard shows EPC metrics and eBPF metrics (Figure 3).
        let sgx = set.get("SGX").unwrap();
        assert!(sgx.panels.len() >= 5);
        // The self dashboard covers ingest, storage, query, lock and
        // durability probes.
        let own = set.get("Teemon Self").unwrap();
        assert!(own.panels.len() >= 12);
        assert!(own.panels.iter().any(|p| p.title.starts_with("WAL")));
        // One stat panel per HTTP self-alert (shed, panics, slow clients).
        assert!(own.panels.iter().filter(|p| p.title.starts_with("HTTP")).count() >= 3);
    }

    #[test]
    fn self_dashboard_renders_from_self_scraped_series() {
        let db = TimeSeriesDb::new();
        let self_labels = Labels::from_pairs([("job", "teemon_self"), ("instance", "n1:self")]);
        for t in 1..=6u64 {
            db.append("teemon_scrape_rounds_total", &self_labels, t * 5_000, t as f64);
            db.append("teemon_tsdb_resident_bytes", &self_labels, t * 5_000, 4096.0 * t as f64);
            db.append("teemon_tsdb_samples", &self_labels, t * 5_000, 100.0 * t as f64);
            for shard in 0..4u64 {
                let mut labels = self_labels.clone();
                labels.insert("shard", shard.to_string());
                db.append("teemon_tsdb_shard_series", &labels, t * 5_000, 12.0);
            }
            db.append("teemon_wal_bytes_written_total", &self_labels, t * 5_000, 900.0 * t as f64);
            db.append("teemon_wal_salvage_total", &self_labels, t * 5_000, 0.0);
            db.append("teemon_wal_failed_shards", &self_labels, t * 5_000, 0.0);
            db.append("teemon_http_shed_total", &self_labels, t * 5_000, (t * 2) as f64);
            db.append("teemon_http_panics_total", &self_labels, t * 5_000, 0.0);
            db.append("teemon_http_slow_clients_total", &self_labels, t * 5_000, 1.0);
            db.append("teemon_tsdb_symbol_bytes", &self_labels, t * 5_000, 2048.0);
            db.append("teemon_tsdb_index_bytes", &self_labels, t * 5_000, 1024.0);
            let mut job = self_labels.clone();
            job.insert("job", "churny".to_string());
            db.append("teemon_overflow_series_total", &job, t * 5_000, t as f64);
        }
        let set = standard();
        let rendered = set.get("Teemon Self").unwrap().render(&db, 0, u64::MAX, 50);
        assert!(rendered.contains("Scrape rounds"));
        assert!(rendered.contains("Resident chunk bytes"));
        assert!(rendered.contains("Symbol table bytes"));
        assert!(rendered.contains("Index bytes"));
        assert!(rendered.contains("Overflow by job"));
        assert!(rendered.contains("Series per shard"));
        assert!(rendered.contains("WAL write rate"));
        assert!(rendered.contains("WAL failed shards"));
        assert!(rendered.contains("HTTP shed requests"));
        assert!(rendered.contains("HTTP handler panics"));
        assert!(rendered.contains("HTTP slow clients"));
        let evaluated = set.get("Teemon Self").unwrap().evaluate(&db, 0, u64::MAX);
        assert!(evaluated.iter().filter(|p| !p.is_empty()).count() >= 4);
    }

    #[test]
    fn dashboards_evaluate_and_render() {
        let db = populated_db();
        let set = standard();
        let rendered = set.get("SGX").unwrap().render(&db, 0, u64::MAX, 50);
        assert!(rendered.contains("EPC free pages"));
        assert!(rendered.contains("Active enclaves"));
        assert!(rendered.contains('#'), "gauge fill expected");
        let evaluated = set.get("Containers").unwrap().evaluate(&db, 0, u64::MAX);
        assert!(evaluated.iter().any(|p| !p.is_empty()));
    }

    #[test]
    fn json_round_trip() {
        let dashboard = standard().dashboards.remove(0);
        let json = dashboard.to_json();
        let parsed = Dashboard::from_json(&json).unwrap();
        assert_eq!(parsed, dashboard);
        assert!(Dashboard::from_json("not json").is_err());
    }

    #[test]
    fn process_filter_narrows_every_panel() {
        let db = TimeSeriesDb::new();
        db.append(
            "teemon_syscalls_total",
            &Labels::from_pairs([("process", "redis-server"), ("syscall", "read")]),
            1_000,
            5.0,
        );
        db.append(
            "teemon_syscalls_total",
            &Labels::from_pairs([("process", "nginx"), ("syscall", "read")]),
            1_000,
            7.0,
        );
        let dashboard = Dashboard::new("test")
            .with_panel(Panel::stat("syscalls", Selector::metric("teemon_syscalls_total")))
            .filtered_by_process("redis-server");
        let data = dashboard.evaluate(&db, 0, u64::MAX);
        assert_eq!(data[0].current, Some(5.0));
    }
}
