//! Panels: a query bound to a visualisation.
//!
//! A panel selects its data one of two ways: the structured path (a
//! [`Selector`] plus an [`AggregateOp`], the original hard-wired pipeline) or
//! a TeeQL expression evaluated by [`teemon_query::QueryEngine`], which puts
//! the whole query language — `rate()`, `by`/`without` grouping, arithmetic —
//! behind a single string (the way Grafana panels embed PromQL).
//!
//! Dashboards are the read path's heaviest customer: every refresh is a
//! range query per panel.  Expression panels ride the engine's streaming
//! range evaluator (`O(samples touched)` per refresh rather than
//! `O(steps × window)`; see [`teemon_query::stream`]), and both paths read
//! sealed chunks in their Gorilla-compressed form through streaming-decode
//! cursors — a dashboard refresh never materialises a decompressed chunk.

use serde::{Deserialize, Serialize};
use teemon_query::QueryEngine;
use teemon_tsdb::{query, AggregateOp, QueryResult, Selector, TimeSeriesDb};

use crate::render;

/// The visualisation type of a panel (the paper lists "graphs, histograms,
/// gauges, gradient fills, tables, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PanelKind {
    /// A time-series line graph.
    Graph,
    /// A gauge showing the latest value against a maximum.
    Gauge,
    /// A single-stat panel showing one aggregated number.
    SingleStat,
    /// A table of the latest value per series.
    Table,
    /// A histogram of the values observed in the window.
    Histogram,
}

/// A dashboard panel: title, query, visualisation and options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    /// Panel title.
    pub title: String,
    /// Visualisation type.
    pub kind: PanelKind,
    /// The query selecting the series to display.
    pub selector: Selector,
    /// Aggregation applied across matching series.
    pub aggregate: AggregateOp,
    /// For counters: display the per-second rate instead of the raw value.
    pub as_rate: bool,
    /// Unit suffix shown after values (e.g. `"pages"`, `"ops/s"`).
    pub unit: String,
    /// Gauge maximum (used by [`PanelKind::Gauge`]).
    pub max: Option<f64>,
    /// TeeQL expression; when set it replaces the `selector`/`aggregate`
    /// path (`as_rate` still applies to the aggregated result).  Expressions
    /// that fail to parse or evaluate render as empty panels.
    #[serde(default)]
    pub expr: Option<String>,
    /// Step between evaluation instants in expression mode; `None` derives
    /// ~60 steps from the queried range.
    #[serde(default)]
    pub step_ms: Option<u64>,
}

impl Panel {
    /// Creates a graph panel.
    pub fn graph(title: impl Into<String>, selector: Selector) -> Self {
        Self {
            title: title.into(),
            kind: PanelKind::Graph,
            selector,
            aggregate: AggregateOp::Sum,
            as_rate: false,
            unit: String::new(),
            max: None,
            expr: None,
            step_ms: None,
        }
    }

    /// Creates a gauge panel with a maximum.
    pub fn gauge(title: impl Into<String>, selector: Selector, max: f64) -> Self {
        Self {
            title: title.into(),
            kind: PanelKind::Gauge,
            selector,
            aggregate: AggregateOp::Sum,
            as_rate: false,
            unit: String::new(),
            max: Some(max),
            expr: None,
            step_ms: None,
        }
    }

    /// Creates a single-stat panel.
    pub fn stat(title: impl Into<String>, selector: Selector) -> Self {
        Self {
            title: title.into(),
            kind: PanelKind::SingleStat,
            selector,
            aggregate: AggregateOp::Sum,
            as_rate: false,
            unit: String::new(),
            max: None,
            expr: None,
            step_ms: None,
        }
    }

    /// Creates a table panel.
    pub fn table(title: impl Into<String>, selector: Selector) -> Self {
        Self {
            title: title.into(),
            kind: PanelKind::Table,
            selector,
            aggregate: AggregateOp::Sum,
            as_rate: false,
            unit: String::new(),
            max: None,
            expr: None,
            step_ms: None,
        }
    }

    /// Creates a graph panel driven by a TeeQL expression instead of a
    /// selector (`Panel::teeql("EPC eviction rate", "sum by (node) \
    /// (rate(sgx_pages_evicted_total[30s]))")`).  Use [`Panel::with_kind`]
    /// to switch the visualisation.
    pub fn teeql(title: impl Into<String>, expr: impl Into<String>) -> Self {
        let mut panel = Self::graph(title, Selector::all());
        panel.expr = Some(expr.into());
        panel
    }

    /// Changes the visualisation type.
    #[must_use]
    pub fn with_kind(mut self, kind: PanelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the evaluation step used in expression mode.
    #[must_use]
    pub fn with_step_ms(mut self, step_ms: u64) -> Self {
        self.step_ms = Some(step_ms.max(1));
        self
    }

    /// Displays the per-second rate of a counter instead of its raw value.
    #[must_use]
    pub fn as_rate(mut self) -> Self {
        self.as_rate = true;
        self
    }

    /// Sets the displayed unit.
    #[must_use]
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Sets the aggregation operator.
    #[must_use]
    pub fn with_aggregate(mut self, op: AggregateOp) -> Self {
        self.aggregate = op;
        self
    }

    /// Evaluates the panel against `db` over `[start_ms, end_ms]`.
    ///
    /// In expression mode the open-ended range (`0..u64::MAX`) is clamped to
    /// the data the database actually holds, and the expression is evaluated
    /// at `step_ms` intervals across it — streamed by sliding-window state
    /// machines when the expression supports it, per-step otherwise.  In
    /// selector mode the panel reads through the zero-copy snapshot API: one
    /// inverted-index lookup, then a pre-sized range walk over `Arc`-shared
    /// (compressed) chunks per series.
    pub fn evaluate(&self, db: &TimeSeriesDb, start_ms: u64, end_ms: u64) -> PanelData {
        let series: Vec<(String, Vec<(u64, f64)>)> = match &self.expr {
            Some(expr) => self
                .evaluate_expr(db, expr, start_ms, end_ms)
                .into_iter()
                .map(|r| {
                    let label = if r.labels.is_empty() {
                        r.name
                    } else {
                        format!("{}{}", r.name, r.labels)
                    };
                    (label, r.points)
                })
                .collect(),
            None => db
                .select(&self.selector)
                .iter()
                .map(|snap| (snap.display_name(), snap.points_in(start_ms, end_ms)))
                .filter(|(_, points)| !points.is_empty())
                .collect(),
        };
        let point_sets: Vec<&[(u64, f64)]> = series.iter().map(|(_, p)| p.as_slice()).collect();
        let aggregated = query::aggregate_series_over_time(&point_sets, self.aggregate);
        let current = if self.as_rate {
            query::rate(&aggregated)
        } else {
            aggregated.last().map(|(_, v)| *v)
        };
        PanelData {
            title: self.title.clone(),
            kind: self.kind,
            unit: self.unit.clone(),
            series,
            aggregated,
            current,
            max: self.max,
        }
    }

    /// Expression-mode evaluation: range-evaluates the TeeQL expression and
    /// adapts the result to the selector path's [`QueryResult`] shape.
    /// Malformed or ill-typed expressions yield no results (panels must not
    /// panic while rendering).
    fn evaluate_expr(
        &self,
        db: &TimeSeriesDb,
        expr: &str,
        start_ms: u64,
        end_ms: u64,
    ) -> Vec<QueryResult> {
        let (Some(oldest), Some(newest)) = (db.oldest_timestamp(), db.newest_timestamp()) else {
            return Vec::new();
        };
        let start = start_ms.max(oldest);
        let end = end_ms.min(newest);
        if start > end {
            return Vec::new();
        }
        let step = self.step_ms.unwrap_or_else(|| ((end - start) / 60).max(1_000));
        let engine = QueryEngine::new(db.clone());
        engine
            .range_query(expr, start, end, step)
            .map(|series| {
                series
                    .into_iter()
                    .map(|s| QueryResult {
                        name: s.name.unwrap_or_default(),
                        labels: s.labels,
                        points: s.points,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// The evaluated data behind one panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelData {
    /// Panel title.
    pub title: String,
    /// Visualisation type.
    pub kind: PanelKind,
    /// Unit suffix.
    pub unit: String,
    /// Per-series points (label → points).
    pub series: Vec<(String, Vec<(u64, f64)>)>,
    /// Points aggregated across series.
    pub aggregated: Vec<(u64, f64)>,
    /// The headline value (latest aggregate, or rate when `as_rate`).
    pub current: Option<f64>,
    /// Gauge maximum.
    pub max: Option<f64>,
}

impl PanelData {
    /// Renders the panel as ASCII (what the terminal front-end shows).
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("== {} ==\n", self.title);
        match self.kind {
            PanelKind::Graph | PanelKind::Histogram => {
                let values: Vec<f64> = self.aggregated.iter().map(|(_, v)| *v).collect();
                out.push_str(&render::render_ascii_chart(&values, width, 8));
            }
            PanelKind::Gauge => {
                let value = self.current.unwrap_or(0.0);
                let max = self.max.unwrap_or_else(|| value.max(1.0));
                out.push_str(&render::render_gauge(value, max, width));
            }
            PanelKind::SingleStat => {
                out.push_str(&format!(
                    "{} {}\n",
                    self.current.map(|v| format!("{v:.2}")).unwrap_or_else(|| "n/a".into()),
                    self.unit
                ));
            }
            PanelKind::Table => {
                let rows: Vec<(String, f64)> = self
                    .series
                    .iter()
                    .map(|(label, points)| {
                        (label.clone(), points.last().map(|(_, v)| *v).unwrap_or(f64::NAN))
                    })
                    .collect();
                out.push_str(&render::render_table(&rows, &self.unit));
            }
        }
        out
    }

    /// `true` when the panel has no data at all.
    pub fn is_empty(&self) -> bool {
        self.series.iter().all(|(_, points)| points.is_empty()) && self.aggregated.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::Labels;

    fn db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..10u64 {
            db.append(
                "sgx_nr_free_pages",
                &Labels::from_pairs([("node", "n1")]),
                t * 5_000,
                24_000.0 - t as f64 * 1_000.0,
            );
            db.append(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "read")]),
                t * 5_000,
                (t * 100) as f64,
            );
        }
        db
    }

    #[test]
    fn graph_panel_aggregates_and_renders() {
        let panel = Panel::graph("Free EPC pages", Selector::metric("sgx_nr_free_pages"))
            .with_unit("pages");
        let data = panel.evaluate(&db(), 0, u64::MAX);
        assert!(!data.is_empty());
        assert_eq!(data.aggregated.len(), 10);
        assert_eq!(data.current, Some(15_000.0));
        let rendered = data.render(60);
        assert!(rendered.contains("Free EPC pages"));
        assert!(rendered.lines().count() > 3);
    }

    #[test]
    fn rate_panel_computes_per_second_rate() {
        let panel =
            Panel::stat("Syscall rate", Selector::metric("teemon_syscalls_total")).as_rate();
        let data = panel.evaluate(&db(), 0, u64::MAX);
        // 100 syscalls every 5 s → 20/s.
        assert!((data.current.unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_and_table_render() {
        let gauge = Panel::gauge("EPC usage", Selector::metric("sgx_nr_free_pages"), 24_064.0)
            .evaluate(&db(), 0, u64::MAX);
        let text = gauge.render(40);
        assert!(text.contains('['), "gauge bar missing: {text}");

        let table = Panel::table("Per-node", Selector::metric("sgx_nr_free_pages"))
            .with_unit("pages")
            .evaluate(&db(), 0, u64::MAX);
        let text = table.render(40);
        assert!(text.contains("n1"));
        assert!(text.contains("pages"));
    }

    #[test]
    fn teeql_panel_evaluates_expressions() {
        let panel =
            Panel::teeql("Syscall rate", "sum by (syscall) (rate(teemon_syscalls_total[20s]))")
                .with_unit("calls/s")
                .with_step_ms(5_000);
        let data = panel.evaluate(&db(), 0, u64::MAX);
        assert!(!data.is_empty());
        // 100 syscalls per 5 s tick → 20/s once the window has two samples.
        assert!((data.current.unwrap() - 20.0).abs() < 1e-9);
        assert!(data.series[0].0.contains("syscall"), "grouped label kept: {}", data.series[0].0);
        let rendered = data.render(60);
        assert!(rendered.contains("Syscall rate"));
        // Expression panels honour explicit (clamped) ranges too.
        let clamped = panel.evaluate(&db(), 10_000, 30_000);
        assert!(clamped.aggregated.iter().all(|(t, _)| (10_000..=30_000).contains(t)));
    }

    #[test]
    fn teeql_panel_arithmetic_expression() {
        // Free EPC as a percentage of capacity — impossible with the plain
        // selector path, one line of TeeQL.
        let panel = Panel::teeql("EPC free %", "sgx_nr_free_pages / 24000 * 100")
            .with_kind(PanelKind::SingleStat)
            .with_step_ms(5_000);
        let data = panel.evaluate(&db(), 0, u64::MAX);
        // Latest sample: 24_000 - 9_000 = 15_000 pages → 62.5 %.
        assert!((data.current.unwrap() - 62.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_teeql_renders_as_empty_panel() {
        for bad in ["rate(", "rate(sgx_nr_free_pages)", "sum(1)"] {
            let panel = Panel::teeql("broken", bad);
            let data = panel.evaluate(&db(), 0, u64::MAX);
            assert!(data.is_empty(), "`{bad}` must evaluate to an empty panel");
            let _ = data.render(40); // and rendering must not panic
        }
        // An empty database is handled before the engine is even consulted.
        let empty = Panel::teeql("no data", "up").evaluate(&TimeSeriesDb::new(), 0, u64::MAX);
        assert!(empty.is_empty());
    }

    #[test]
    fn panels_read_sealed_compressed_chunks() {
        use teemon_tsdb::TsdbConfig;
        // A tiny chunk size forces nearly all samples into sealed
        // (Gorilla-compressed) chunks: both panel paths must read through
        // the streaming decoders and agree with the default configuration.
        let small_chunks = TimeSeriesDb::with_config(TsdbConfig {
            chunk_size: 8,
            retention_ms: u64::MAX,
            raw_chunks: false,
        });
        let reference = db();
        for t in 0..10u64 {
            small_chunks.append(
                "teemon_syscalls_total",
                &Labels::from_pairs([("syscall", "read")]),
                t * 5_000,
                (t * 100) as f64,
            );
        }
        let expr_panel =
            Panel::teeql("rate", "sum by (syscall) (rate(teemon_syscalls_total[20s]))")
                .with_step_ms(5_000);
        let selector_panel = Panel::graph("raw", Selector::metric("teemon_syscalls_total"));
        for panel in [expr_panel, selector_panel] {
            let compressed = panel.evaluate(&small_chunks, 0, u64::MAX);
            let head_only = panel.evaluate(&reference, 0, u64::MAX);
            assert_eq!(compressed.aggregated, head_only.aggregated, "{}", panel.title);
            assert_eq!(compressed.current, head_only.current);
        }
    }

    #[test]
    fn teeql_panel_serde_round_trips() {
        let panel = Panel::teeql("r", "rate(x_total[1m])").with_step_ms(2_000);
        let json = serde_json::to_string(&panel).unwrap();
        let parsed: Panel = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, panel);
        assert_eq!(parsed.expr.as_deref(), Some("rate(x_total[1m])"));
    }

    #[test]
    fn empty_query_produces_empty_panel() {
        let panel = Panel::graph("nothing", Selector::metric("does_not_exist"));
        let data = panel.evaluate(&db(), 0, u64::MAX);
        assert!(data.is_empty());
        assert_eq!(data.current, None);
        // Rendering must not panic on empty data.
        let _ = data.render(40);
    }
}
