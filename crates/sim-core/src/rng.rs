//! Deterministic random number generation and workload distributions.
//!
//! All stochastic behaviour in the reproduction (request inter-arrival jitter,
//! key popularity, cache-miss probabilities, …) flows through [`DetRng`] so
//! that a fixed seed reproduces the exact metric streams reported in
//! `EXPERIMENTS.md`.

/// A seedable deterministic random number generator.
///
/// Internally this is a xoshiro256++ generator seeded through SplitMix64, the
/// standard recipe for reproducible simulation RNGs.  It is intentionally
/// self-contained so that the exact sample streams recorded in
/// `EXPERIMENTS.md` remain stable across dependency upgrades.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { state }
    }

    /// Derives an independent child generator; children with distinct tags are
    /// statistically independent but fully reproducible.
    pub fn derive(&mut self, tag: u64) -> DetRng {
        let seed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::seed_from_u64(seed)
    }

    /// Uniform `u64` (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let result =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[low, high)`; `low` when the range is empty.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            return low;
        }
        let span = high - low;
        low + (self.next_f64() * span as f64) as u64
    }

    /// Uniform float in `[low, high)`.
    pub fn uniform_f64(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        low + self.next_f64() * (high - low)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of an open-loop workload).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Approximately normally distributed value (sum of uniforms), clamped to
    /// be non-negative; good enough for latency jitter.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Irwin–Hall approximation with 12 uniform samples.
        let sum: f64 = (0..12).map(|_| self.next_f64()).sum();
        mean + (sum - 6.0) * std_dev
    }

    /// Positive, normal-ish value clamped at zero.
    pub fn normal_pos(&mut self, mean: f64, std_dev: f64) -> f64 {
        self.normal(mean, std_dev).max(0.0)
    }

    /// Zipf-distributed rank in `[0, n)` with skew `s` (used for key
    /// popularity in the Redis-like workload).
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        if n <= 1 {
            return 0;
        }
        // Rejection-free inverse-CDF approximation over a harmonic sum sample.
        // For monitoring workloads precision is unimportant; determinism is.
        let u = self.next_f64();
        let n_f = n as f64;
        if s <= 0.0 {
            return (u * n_f) as u64;
        }
        // Approximate the inverse CDF of the Zipf distribution with the
        // continuous bounded Pareto distribution.
        let one_minus_s = 1.0 - s;
        let rank = if (one_minus_s).abs() < 1e-9 {
            n_f.powf(u) - 1.0
        } else {
            ((n_f.powf(one_minus_s) - 1.0) * u + 1.0).powf(1.0 / one_minus_s) - 1.0
        };
        (rank.max(0.0) as u64).min(n - 1)
    }

    /// Chooses one element of `slice` uniformly; `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.uniform_u64(0, slice.len() as u64) as usize;
            Some(&slice[idx])
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(0, (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = rng.uniform_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        assert_eq!(rng.uniform_u64(5, 5), 5);
        assert_eq!(rng.uniform_f64(2.0, 1.0), 2.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
        assert!((0..100).all(|_| rng.chance(2.0)));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "sample mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = DetRng::seed_from_u64(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(10.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "sample mean {mean}");
        assert!(rng.normal_pos(-100.0, 1.0) >= 0.0);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = DetRng::seed_from_u64(17);
        let n = 10_000u64;
        let samples: Vec<u64> = (0..50_000).map(|_| rng.zipf(n, 1.1)).collect();
        assert!(samples.iter().all(|&r| r < n));
        let low = samples.iter().filter(|&&r| r < n / 10).count();
        assert!(
            low > samples.len() / 2,
            "zipf should concentrate mass on low ranks, got {low}/{}",
            samples.len()
        );
        assert_eq!(rng.zipf(1, 1.0), 0);
        assert_eq!(rng.zipf(0, 1.0), 0);
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = DetRng::seed_from_u64(23);
        let items = [1, 2, 3, 4, 5];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());

        let mut v: Vec<u32> = (0..100).collect();
        let original = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, original);
        assert_ne!(v, original);
    }

    #[test]
    fn derive_is_deterministic() {
        let mut a = DetRng::seed_from_u64(99);
        let mut b = DetRng::seed_from_u64(99);
        let mut ca = a.derive(1);
        let mut cb = b.derive(1);
        assert_eq!(ca.next_u64(), cb.next_u64());
    }
}
