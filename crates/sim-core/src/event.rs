//! Discrete-event simulation engine.
//!
//! The engine owns a priority queue of timestamped events and a [`SimClock`];
//! running the simulation pops events in chronological order, advances the
//! shared clock and invokes the event handlers.  Handlers may schedule further
//! events (one-shot or periodic), which is how the scrape loop, the analysis
//! windows and the workload generators are all driven from a single timeline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::clock::SimClock;
use crate::time::{SimDuration, SimTime};

/// Unique identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// An event scheduled on an [`EventQueue`].
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Identifier assigned at scheduling time.
    pub id: EventId,
    /// The event payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A time-ordered queue of events with stable FIFO ordering for equal
/// timestamps.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry<E>>>,
    next_seq: u64,
    next_id: u64,
    cancelled: std::collections::HashSet<EventId>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` to fire at `at` and returns its [`EventId`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapEntry { at, seq, id, payload }));
        id
    }

    /// Cancels a previously scheduled event.  Returns `true` when the event
    /// had not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the next (earliest) non-cancelled event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some(ScheduledEvent { at: entry.at, id: entry.id, payload: entry.payload });
        }
        None
    }

    /// Timestamp of the next non-cancelled event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let id = entry.id;
                self.heap.pop();
                self.cancelled.remove(&id);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of events still queued (including cancelled ones not yet
    /// compacted away).
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of handling one event: optionally reschedule follow-up events.
pub enum Step<E> {
    /// Nothing further to schedule.
    Done,
    /// Schedule these `(delay, payload)` pairs relative to the current time.
    ScheduleAfter(Vec<(SimDuration, E)>),
    /// Stop the simulation immediately.
    Halt,
}

/// A single-timeline discrete-event simulation.
///
/// The handler is a closure invoked for every event in chronological order;
/// the shared [`SimClock`] is advanced to each event's timestamp before the
/// handler runs, so any component holding a clone of the clock observes
/// consistent timestamps.
pub struct Simulation<E> {
    clock: SimClock,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates a simulation with a fresh clock at time zero.
    pub fn new() -> Self {
        Self::with_clock(SimClock::new())
    }

    /// Creates a simulation driving an existing clock.
    pub fn with_clock(clock: SimClock) -> Self {
        Self { clock, queue: EventQueue::new(), processed: 0 }
    }

    /// The simulation clock (cheap to clone and hand to other components).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Schedules an event at an absolute time.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        self.queue.schedule(at, payload)
    }

    /// Schedules an event `delay` after the current clock time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.clock.now() + delay;
        self.queue.schedule(at, payload)
    }

    /// Cancels a scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Runs until the queue drains, `until` is reached, or the handler halts.
    /// Returns the number of events processed during this call.
    pub fn run_until(
        &mut self,
        until: SimTime,
        mut handler: impl FnMut(SimTime, E) -> Step<E>,
    ) -> u64 {
        let mut handled = 0;
        while let Some(next_at) = self.queue.peek_time() {
            if next_at > until {
                break;
            }
            let event = self.queue.pop().expect("peeked event must exist");
            self.clock.advance_to(event.at);
            self.processed += 1;
            handled += 1;
            match handler(event.at, event.payload) {
                Step::Done => {}
                Step::ScheduleAfter(followups) => {
                    for (delay, payload) in followups {
                        let at = self.clock.now() + delay;
                        self.queue.schedule(at, payload);
                    }
                }
                Step::Halt => break,
            }
        }
        // Even if no event lands exactly at `until`, the clock reflects that
        // the simulation has observed up to that instant.
        self.clock.advance_to(until);
        handled
    }

    /// Runs until the queue is empty or the handler halts.
    pub fn run_to_completion(&mut self, handler: impl FnMut(SimTime, E) -> Step<E>) -> u64 {
        self.run_until(SimTime::from_nanos(u64::MAX), handler)
    }
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "late");
        q.schedule(SimTime::from_secs(1), "first-at-1");
        q.schedule(SimTime::from_secs(1), "second-at-1");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["first-at-1", "second-at-1", "late"]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut q = EventQueue::new();
        let keep = q.schedule(SimTime::from_secs(1), "keep");
        let drop_id = q.schedule(SimTime::from_secs(2), "drop");
        assert!(q.cancel(drop_id));
        assert!(!q.cancel(drop_id), "double cancel reports false");
        assert!(!q.cancel(EventId(999)));
        let fired: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(fired, vec!["keep"]);
        let _ = keep;
    }

    #[test]
    fn simulation_advances_clock_to_event_times() {
        let mut sim: Simulation<&str> = Simulation::new();
        let clock = sim.clock().clone();
        sim.schedule_at(SimTime::from_secs(3), "a");
        sim.schedule_at(SimTime::from_secs(7), "b");
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_secs(5), |at, ev| {
            seen.push((at, ev));
            Step::Done
        });
        assert_eq!(seen, vec![(SimTime::from_secs(3), "a")]);
        assert_eq!(clock.now(), SimTime::from_secs(5));
        sim.run_to_completion(|at, ev| {
            seen.push((at, ev));
            Step::Done
        });
        assert_eq!(seen.last(), Some(&(SimTime::from_secs(7), "b")));
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    fn periodic_events_via_reschedule() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), "tick");
        let mut ticks = 0;
        sim.run_until(SimTime::from_secs(60), |_, _| {
            ticks += 1;
            Step::ScheduleAfter(vec![(SimDuration::from_secs(5), "tick")])
        });
        // Ticks at 5, 10, ..., 60 → 12 ticks.
        assert_eq!(ticks, 12);
    }

    #[test]
    fn halt_stops_immediately() {
        let mut sim: Simulation<u32> = Simulation::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_secs(i), i as u32);
        }
        let mut count = 0;
        sim.run_to_completion(|_, ev| {
            count += 1;
            if ev == 3 {
                Step::Halt
            } else {
                Step::Done
            }
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut sim: Simulation<&str> = Simulation::new();
        sim.clock().advance(SimDuration::from_secs(100));
        sim.schedule_after(SimDuration::from_secs(5), "x");
        let mut at_time = None;
        sim.run_to_completion(|at, _| {
            at_time = Some(at);
            Step::Done
        });
        assert_eq!(at_time, Some(SimTime::from_secs(105)));
    }

    #[test]
    fn queue_len_tracks_cancellations() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
