//! Deterministic simulation substrate shared by every TEEMon subsystem model.
//!
//! The original TEEMon evaluation runs on real SGX hardware, a real Linux
//! kernel and a real cluster.  None of those are available in this
//! reproduction, so the SGX driver, the kernel, the applications and the
//! cluster are all *simulated*.  This crate provides the shared substrate for
//! those simulations:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`SimClock`] — a shareable, monotonically advancing virtual clock,
//! * [`DetRng`] — a seedable deterministic random number generator with the
//!   distribution helpers used by workload generators and cost models,
//! * [`EventQueue`] and [`Simulation`] — a discrete-event engine used to run
//!   monitored workloads, scrape loops and analysis windows against virtual
//!   time so that a "24 hour" experiment (Figure 4) completes in milliseconds.
//!
//! Everything is deterministic: two runs with the same seed produce the same
//! metric streams, which is what makes the figure-reproduction benches stable.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod rng;
pub mod time;

pub use clock::SimClock;
pub use event::{EventQueue, ScheduledEvent, Simulation};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
