//! Virtual time primitives.
//!
//! Simulated time is measured in integer nanoseconds from the start of the
//! simulation.  Integer arithmetic keeps event ordering exact and runs
//! reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs a time from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Constructs a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Constructs a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates to zero when `earlier` is
    /// in the future.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(&self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs a duration from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Constructs a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Constructs a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds (negative values clamp to
    /// zero).
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            Self(0)
        } else {
            Self((secs * 1e9).round() as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds (truncated).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(&self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// Scales the duration by a float factor (clamped at zero).
    pub fn mul_f64(&self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Integer division of the duration.
    pub const fn div(&self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic_is_saturating_where_it_matters() {
        let t0 = SimTime::from_secs(1);
        let t1 = SimTime::from_secs(3);
        assert_eq!(t1 - t0, SimDuration::from_secs(2));
        assert_eq!(t0 - t1, SimDuration::ZERO);
        assert_eq!(t0.since(t1), SimDuration::ZERO);
        assert_eq!(t1.since(t0).as_secs_f64(), 2.0);
    }

    #[test]
    fn add_assign_and_scaling() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(250);
        t += SimDuration::from_millis(750);
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(SimDuration::from_secs(2).mul(3), SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_secs(4).div(2), SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.5), SimDuration::from_secs(1));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.0us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.0ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }

    #[test]
    fn ordering_is_chronological() {
        let mut times = [SimTime::from_secs(5), SimTime::ZERO, SimTime::from_millis(10)];
        times.sort();
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[2], SimTime::from_secs(5));
    }
}
