//! A shareable, monotonically advancing virtual clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A virtual clock shared between the simulated kernel, the SGX driver model,
/// the exporters and the scrape loop.
///
/// Cloning a [`SimClock`] yields a handle onto the same underlying instant, so
/// every component observes a single consistent notion of "now" — the same
/// role the host's wall clock plays in the paper's deployment.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        let clock = Self::new();
        clock.now_nanos.store(start.as_nanos(), Ordering::Relaxed);
        clock
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&self, delta: SimDuration) -> SimTime {
        let new = self.now_nanos.fetch_add(delta.as_nanos(), Ordering::Relaxed) + delta.as_nanos();
        SimTime::from_nanos(new)
    }

    /// Advances the clock to `target` if `target` is in the future; the clock
    /// never moves backwards.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let target_nanos = target.as_nanos();
        let mut current = self.now_nanos.load(Ordering::Relaxed);
        while current < target_nanos {
            match self.now_nanos.compare_exchange_weak(
                current,
                target_nanos,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return target,
                Err(observed) => current = observed,
            }
        }
        SimTime::from_nanos(current)
    }

    /// Milliseconds since simulation start; convenient for metric timestamps.
    pub fn now_millis(&self) -> u64 {
        self.now().as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.advance(SimDuration::from_secs(5));
        assert_eq!(clock.now(), SimTime::from_secs(5));
        assert_eq!(clock.now_millis(), 5_000);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_millis(100));
        assert_eq!(b.now(), SimTime::from_millis(100));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::starting_at(SimTime::from_secs(10));
        assert_eq!(clock.advance_to(SimTime::from_secs(5)), SimTime::from_secs(10));
        assert_eq!(clock.now(), SimTime::from_secs(10));
        assert_eq!(clock.advance_to(SimTime::from_secs(20)), SimTime::from_secs(20));
        assert_eq!(clock.now(), SimTime::from_secs(20));
    }
}
