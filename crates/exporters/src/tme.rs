//! The TEE Metrics Exporter (SGX exporter).
//!
//! §5.1: "To collect the SGX metrics, we instrument the official Intel SGX
//! driver source code at specific function calls … for each metric, there is a
//! file with the same name in `/sys/module/isgx/parameters`.  \[An\] interface
//! component … reads the metrics and exposes them in the OpenMetrics format to
//! its metrics endpoint."  [`SgxExporter`] is that interface component; the
//! "files" are the simulated driver's [`teemon_sgx_sim::DriverStats`].

use std::sync::Arc;

use teemon_metrics::{
    CollectError, Collector, FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue, Registry,
};
use teemon_sgx_sim::SgxDriver;

/// The per-machine SGX exporter (one instance per node, privileged).
#[derive(Clone)]
pub struct SgxExporter {
    registry: Registry,
}

impl SgxExporter {
    /// Creates an exporter reading `driver`, labelling every sample with the
    /// node name.
    pub fn new(driver: SgxDriver, node: &str) -> Self {
        let registry =
            Registry::with_constant_labels(Labels::from_pairs([("node", node.to_string())]));
        let collector_driver = driver.clone();
        registry.register_source(Arc::new(move || Self::gather(&collector_driver)));
        Self { registry }
    }

    fn gauge(name: &str, help: &str, value: f64) -> FamilySnapshot {
        FamilySnapshot::new(name, help, MetricKind::Gauge)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(value)))
    }

    fn counter(name: &str, help: &str, value: f64) -> FamilySnapshot {
        FamilySnapshot::new(name, help, MetricKind::Counter)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Counter(value)))
    }

    fn gather(driver: &SgxDriver) -> Vec<FamilySnapshot> {
        let stats = driver.stats();
        vec![
            // Enclave metrics.
            Self::counter(
                "sgx_enclaves_created_total",
                "Enclaves created since driver load",
                stats.enclaves_created as f64,
            ),
            Self::gauge(
                "sgx_nr_enclaves",
                "Currently active enclaves",
                stats.enclaves_active as f64,
            ),
            Self::counter(
                "sgx_enclaves_removed_total",
                "Enclaves removed since driver load",
                stats.enclaves_removed as f64,
            ),
            // EPC metrics.
            Self::gauge("sgx_nr_total_epc_pages", "Usable EPC pages", stats.epc_total_pages as f64),
            Self::gauge("sgx_nr_free_pages", "Free EPC pages", stats.epc_free_pages as f64),
            Self::gauge(
                "sgx_nr_old_pages",
                "EPC pages currently marked old",
                stats.epc_old_pages as f64,
            ),
            Self::counter(
                "sgx_pages_evicted_total",
                "EPC pages evicted to main memory (EWB)",
                stats.epc_pages_evicted as f64,
            ),
            Self::counter(
                "sgx_pages_added_total",
                "Pages added to enclaves (EADD/EAUG)",
                stats.epc_pages_added as f64,
            ),
            Self::counter(
                "sgx_pages_reclaimed_total",
                "Evicted pages reloaded into the EPC (ELDU)",
                stats.epc_pages_reclaimed as f64,
            ),
            Self::counter(
                "sgx_pages_marked_old_total",
                "Pages marked old by the swapping daemon",
                stats.epc_pages_marked_old as f64,
            ),
            Self::counter(
                "sgx_enclave_page_faults_total",
                "Page faults on evicted enclave pages",
                stats.enclave_page_faults as f64,
            ),
            Self::counter("sgx_swapd_runs_total", "ksgxswapd wakeups", stats.swapd_wakeups as f64),
        ]
    }
}

impl SgxExporter {
    /// The exporter's metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Collector for SgxExporter {
    fn job_name(&self) -> &str {
        "sgx_exporter"
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        Ok(self.registry.gather())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::exposition::parse_text;
    use teemon_sim_core::SimClock;

    fn render(exporter: &impl Collector) -> String {
        teemon_metrics::exposition::render_collector(exporter).unwrap()
    }

    #[test]
    fn exports_driver_state_with_node_label() {
        let driver = SgxDriver::new(SimClock::new());
        driver.create_enclave(100, 8 * 1024 * 1024, 4).unwrap();
        let exporter = SgxExporter::new(driver.clone(), "worker-1");

        let text = render(&exporter);
        let parsed = parse_text(&text).unwrap();
        let labels = Labels::from_pairs([("node", "worker-1")]);
        assert_eq!(parsed.value("sgx_nr_enclaves", &labels), Some(1.0));
        let added = parsed.value("sgx_pages_added_total", &labels).unwrap();
        assert_eq!(added, SgxDriver::pages_for(8 * 1024 * 1024) as f64);
        assert_eq!(parsed.types.get("sgx_nr_free_pages"), Some(&teemon_metrics::MetricKind::Gauge));
        assert_eq!(exporter.job_name(), "sgx_exporter");
    }

    #[test]
    fn render_reflects_live_driver_changes() {
        let driver = SgxDriver::new(SimClock::new());
        let exporter = SgxExporter::new(driver.clone(), "worker-1");
        let labels = Labels::from_pairs([("node", "worker-1")]);

        let before = parse_text(&render(&exporter)).unwrap();
        assert_eq!(before.value("sgx_nr_enclaves", &labels), Some(0.0));

        let (id, _) = driver.create_enclave(1, 1024 * 1024, 1).unwrap();
        let during = parse_text(&render(&exporter)).unwrap();
        assert_eq!(during.value("sgx_nr_enclaves", &labels), Some(1.0));

        driver.destroy_enclave(id).unwrap();
        let after = parse_text(&render(&exporter)).unwrap();
        assert_eq!(after.value("sgx_nr_enclaves", &labels), Some(0.0));
        assert_eq!(after.value("sgx_enclaves_removed_total", &labels), Some(1.0));
    }

    #[test]
    fn exposes_all_paper_metric_classes() {
        let driver = SgxDriver::new(SimClock::new());
        let text = render(&SgxExporter::new(driver, "n"));
        for metric in [
            "sgx_enclaves_created_total",
            "sgx_nr_enclaves",
            "sgx_enclaves_removed_total",
            "sgx_nr_total_epc_pages",
            "sgx_nr_free_pages",
            "sgx_nr_old_pages",
            "sgx_pages_evicted_total",
            "sgx_pages_added_total",
            "sgx_pages_reclaimed_total",
        ] {
            assert!(text.contains(metric), "missing {metric}");
        }
    }
}
