//! The eBPF exporter — the heart of the System Metrics Exporter.
//!
//! Modelled on Cloudflare's `ebpf_exporter` (§5.1): it loads the standard
//! TEEMon program set (Table 2) into the kernel's hook registry and publishes
//! the aggregated BPF-map contents as OpenMetrics families:
//!
//! * `teemon_syscalls_total{syscall=…}`
//! * `teemon_context_switches_total{scope=…}`
//! * `teemon_page_faults_total{scope=…}`
//! * `teemon_cache_events_total{event=…}`

use std::sync::Arc;

use teemon_kernel_sim::ebpf::{BpfMap, EbpfVm, PidFilter};
use teemon_kernel_sim::{Kernel, Pid};
use teemon_metrics::{
    CollectError, Collector, FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue, Registry,
};

/// The eBPF-based system metrics exporter (one per node).
pub struct EbpfExporter {
    registry: Registry,
    vm: EbpfVm,
    maps: Vec<BpfMap>,
    filter: PidFilter,
}

impl EbpfExporter {
    /// Attaches the standard program set to `kernel` observing every process.
    pub fn attach(kernel: &Kernel, node: &str) -> Self {
        Self::attach_filtered(kernel, node, PidFilter::All)
    }

    /// Attaches with a PID filter (the "macro … set in the eBPF configuration
    /// file" of §6.3) so per-PID series only exist for the filtered process.
    pub fn attach_for_pid(kernel: &Kernel, node: &str, pid: Pid) -> Self {
        Self::attach_filtered(kernel, node, PidFilter::Only(pid))
    }

    fn attach_filtered(kernel: &Kernel, node: &str, filter: PidFilter) -> Self {
        let registry =
            Registry::with_constant_labels(Labels::from_pairs([("node", node.to_string())]));
        let mut vm = EbpfVm::new(kernel.hooks().clone());
        let maps = vm.load_standard_programs(filter);

        let collector_maps = maps.clone();
        registry.register_source(Arc::new(move || Self::gather(&collector_maps)));
        Self { registry, vm, maps, filter }
    }

    /// The PID filter in effect.
    pub fn filter(&self) -> PidFilter {
        self.filter
    }

    /// Number of eBPF programs currently loaded.
    pub fn program_count(&self) -> usize {
        self.vm.program_count()
    }

    /// Detaches every program (monitoring off); the exporter keeps serving the
    /// last observed values but stops paying instrumentation costs.
    pub fn detach(&mut self) {
        self.vm.unload_all();
    }

    fn family_from_map(
        name: &str,
        help: &str,
        label_name: &str,
        map: &BpfMap,
        key_filter: fn(&str) -> Option<String>,
    ) -> FamilySnapshot {
        let mut family = FamilySnapshot::new(name, help, MetricKind::Counter);
        for (key, value) in map.dump() {
            if let Some(label_value) = key_filter(&key) {
                family.points.push(MetricPoint::new(
                    Labels::from_pairs([(label_name, label_value)]),
                    PointValue::Counter(value as f64),
                ));
            }
        }
        family
    }

    fn gather(maps: &[BpfMap]) -> Vec<FamilySnapshot> {
        let syscalls = &maps[0];
        let switches = &maps[1];
        let faults = &maps[2];
        let cache = &maps[3];
        vec![
            Self::family_from_map(
                "teemon_syscalls_total",
                "System calls observed via raw_syscalls:sys_enter",
                "syscall",
                syscalls,
                |k| Some(k.to_string()),
            ),
            Self::family_from_map(
                "teemon_context_switches_total",
                "Context switches observed via sched:sched_switch",
                "scope",
                switches,
                |k| Some(k.replace(':', "_")),
            ),
            Self::family_from_map(
                "teemon_page_faults_total",
                "Page faults observed via exceptions:page_fault_*",
                "scope",
                faults,
                |k| Some(k.replace(':', "_")),
            ),
            Self::family_from_map(
                "teemon_cache_events_total",
                "LLC and page-cache events",
                "event",
                cache,
                |k| Some(k.to_string()),
            ),
        ]
    }

    /// Direct read of the syscall counts map (used by tests and analysis).
    pub fn syscall_map(&self) -> &BpfMap {
        &self.maps[0]
    }
}

impl EbpfExporter {
    /// The exporter's metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Collector for EbpfExporter {
    fn job_name(&self) -> &str {
        "ebpf_exporter"
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        Ok(self.registry.gather())
    }
}

impl std::fmt::Debug for EbpfExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EbpfExporter").field("programs", &self.program_count()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_kernel_sim::process::ProcessKind;
    use teemon_kernel_sim::{FaultKind, SwitchKind, Syscall};
    use teemon_metrics::exposition::parse_text;

    fn render(exporter: &impl Collector) -> String {
        teemon_metrics::exposition::render_collector(exporter).unwrap()
    }

    #[test]
    fn exports_syscall_counts_by_name() {
        let kernel = Kernel::new();
        let exporter = EbpfExporter::attach(&kernel, "worker-1");
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
        for _ in 0..5 {
            kernel.syscall(pid, Syscall::ClockGettime, true);
        }
        kernel.syscall(pid, Syscall::Read, true);

        let parsed = parse_text(&render(&exporter)).unwrap();
        let labels = Labels::from_pairs([("node", "worker-1"), ("syscall", "clock_gettime")]);
        assert_eq!(parsed.value("teemon_syscalls_total", &labels), Some(5.0));
        assert_eq!(exporter.program_count(), 4);
        assert_eq!(exporter.job_name(), "ebpf_exporter");
    }

    #[test]
    fn exports_context_switches_page_faults_and_cache() {
        let kernel = Kernel::new();
        let exporter = EbpfExporter::attach(&kernel, "n1");
        let pid = kernel.spawn_process("nginx", ProcessKind::User, 4);
        kernel.context_switch(pid, SwitchKind::Voluntary);
        kernel.page_fault(pid, FaultKind::User, false);
        kernel.cache_access(pid, 1_000, 50, false);

        let text = render(&exporter);
        let parsed = parse_text(&text).unwrap();
        assert_eq!(
            parsed.value(
                "teemon_context_switches_total",
                &Labels::from_pairs([("node", "n1"), ("scope", "host_total")])
            ),
            Some(1.0)
        );
        assert_eq!(
            parsed.value(
                "teemon_page_faults_total",
                &Labels::from_pairs([("node", "n1"), ("scope", "user")])
            ),
            Some(1.0)
        );
        assert_eq!(
            parsed.value(
                "teemon_cache_events_total",
                &Labels::from_pairs([("node", "n1"), ("event", "misses")])
            ),
            Some(50.0)
        );
    }

    #[test]
    fn pid_filter_restricts_per_pid_series() {
        let kernel = Kernel::new();
        let redis = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
        let other = kernel.spawn_process("noise", ProcessKind::User, 1);
        let exporter = EbpfExporter::attach_for_pid(&kernel, "n1", redis);
        kernel.context_switch(redis, SwitchKind::Voluntary);
        kernel.context_switch(other, SwitchKind::Voluntary);

        let parsed = parse_text(&render(&exporter)).unwrap();
        let redis_scope = format!("pid_{redis}");
        let other_scope = format!("pid_{other}");
        assert!(parsed
            .value(
                "teemon_context_switches_total",
                &Labels::from_pairs([("node", "n1".to_string()), ("scope", redis_scope)])
            )
            .is_some());
        assert!(parsed
            .value(
                "teemon_context_switches_total",
                &Labels::from_pairs([("node", "n1".to_string()), ("scope", other_scope)])
            )
            .is_none());
        // Host total still counts both.
        assert_eq!(
            parsed.value(
                "teemon_context_switches_total",
                &Labels::from_pairs([("node", "n1"), ("scope", "host_total")])
            ),
            Some(2.0)
        );
    }

    #[test]
    fn detach_stops_observing_but_keeps_serving() {
        let kernel = Kernel::new();
        let mut exporter = EbpfExporter::attach(&kernel, "n1");
        let pid = kernel.spawn_process("redis-server", ProcessKind::User, 1);
        kernel.syscall(pid, Syscall::Write, false);
        exporter.detach();
        kernel.syscall(pid, Syscall::Write, false);
        assert_eq!(exporter.syscall_map().get("write"), Some(1));
        assert_eq!(exporter.program_count(), 0);
        assert_eq!(kernel.hooks().total_attached(), 0);
    }
}
