//! The container exporter (cAdvisor equivalent).
//!
//! §5.1: "To provide utilization metrics for Docker containers, Google created
//! the cAdvisor web-service.  We integrated cAdvisor into TEEMon to collect
//! and store per container metrics."  The simulated equivalent tracks a set of
//! containers (name, image, PID, limits) and their resource usage, fed by the
//! deployment layer the way cgroups feed the real cAdvisor.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_kernel_sim::Pid;
use teemon_metrics::{
    CollectError, Collector, FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue, Registry,
};

/// Static description of a running container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContainerSpec {
    /// Container name (e.g. `redis-0`).
    pub name: String,
    /// Image reference (e.g. `sconecuratedimages/redis:5-scone`).
    pub image: String,
    /// PID of the main process inside the container.
    pub pid: u32,
    /// Memory limit in bytes (0 = unlimited).
    pub memory_limit_bytes: u64,
}

/// Mutable per-container usage, updated by the host model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ContainerUsage {
    /// Cumulative CPU seconds consumed.
    pub cpu_seconds: f64,
    /// Current memory working set in bytes.
    pub memory_bytes: u64,
    /// Cumulative bytes received.
    pub network_rx_bytes: u64,
    /// Cumulative bytes transmitted.
    pub network_tx_bytes: u64,
}

#[derive(Default)]
struct State {
    containers: BTreeMap<String, (ContainerSpec, ContainerUsage)>,
}

/// The per-node container metrics exporter.
#[derive(Clone, Default)]
pub struct ContainerExporter {
    registry: Registry,
    state: Arc<RwLock<State>>,
}

impl ContainerExporter {
    /// Creates a container exporter labelled with the node name.
    pub fn new(node: &str) -> Self {
        let registry =
            Registry::with_constant_labels(Labels::from_pairs([("node", node.to_string())]));
        let state: Arc<RwLock<State>> = Arc::new(RwLock::new(State::default()));
        let collector_state = Arc::clone(&state);
        registry.register_source(Arc::new(move || Self::gather(&collector_state.read())));
        Self { registry, state }
    }

    /// Registers (or replaces) a container.
    pub fn register_container(&self, spec: ContainerSpec) {
        self.state.write().containers.insert(spec.name.clone(), (spec, ContainerUsage::default()));
    }

    /// Removes a container (it exited).  Returns `true` when it existed.
    pub fn remove_container(&self, name: &str) -> bool {
        self.state.write().containers.remove(name).is_some()
    }

    /// Adds usage to a container's counters and replaces its memory gauge.
    /// Returns `false` for unknown containers.
    pub fn record_usage(&self, name: &str, delta: ContainerUsage) -> bool {
        let mut state = self.state.write();
        match state.containers.get_mut(name) {
            Some((_, usage)) => {
                usage.cpu_seconds += delta.cpu_seconds;
                usage.network_rx_bytes += delta.network_rx_bytes;
                usage.network_tx_bytes += delta.network_tx_bytes;
                if delta.memory_bytes > 0 {
                    usage.memory_bytes = delta.memory_bytes;
                }
                true
            }
            None => false,
        }
    }

    /// Number of registered containers.
    pub fn container_count(&self) -> usize {
        self.state.read().containers.len()
    }

    /// The container owning `pid`, if any.
    pub fn container_of(&self, pid: Pid) -> Option<ContainerSpec> {
        self.state
            .read()
            .containers
            .values()
            .find(|(spec, _)| spec.pid == pid.as_u32())
            .map(|(spec, _)| spec.clone())
    }

    fn gather(state: &State) -> Vec<FamilySnapshot> {
        let mut cpu = FamilySnapshot::new(
            "container_cpu_usage_seconds_total",
            "Cumulative CPU time per container",
            MetricKind::Counter,
        );
        let mut memory = FamilySnapshot::new(
            "container_memory_working_set_bytes",
            "Current working set per container",
            MetricKind::Gauge,
        );
        let mut limit = FamilySnapshot::new(
            "container_spec_memory_limit_bytes",
            "Configured memory limit per container",
            MetricKind::Gauge,
        );
        let mut rx = FamilySnapshot::new(
            "container_network_receive_bytes_total",
            "Bytes received per container",
            MetricKind::Counter,
        );
        let mut tx = FamilySnapshot::new(
            "container_network_transmit_bytes_total",
            "Bytes transmitted per container",
            MetricKind::Counter,
        );
        for (name, (spec, usage)) in &state.containers {
            let labels =
                Labels::from_pairs([("container", name.clone()), ("image", spec.image.clone())]);
            cpu.points
                .push(MetricPoint::new(labels.clone(), PointValue::Counter(usage.cpu_seconds)));
            memory.points.push(MetricPoint::new(
                labels.clone(),
                PointValue::Gauge(usage.memory_bytes as f64),
            ));
            limit.points.push(MetricPoint::new(
                labels.clone(),
                PointValue::Gauge(spec.memory_limit_bytes as f64),
            ));
            rx.points.push(MetricPoint::new(
                labels.clone(),
                PointValue::Counter(usage.network_rx_bytes as f64),
            ));
            tx.points
                .push(MetricPoint::new(labels, PointValue::Counter(usage.network_tx_bytes as f64)));
        }
        vec![cpu, memory, limit, rx, tx]
    }
}

impl ContainerExporter {
    /// The exporter's metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Collector for ContainerExporter {
    fn job_name(&self) -> &str {
        "cadvisor"
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        Ok(self.registry.gather())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_metrics::exposition::parse_text;

    fn render(exporter: &impl Collector) -> String {
        teemon_metrics::exposition::render_collector(exporter).unwrap()
    }

    fn redis_spec() -> ContainerSpec {
        ContainerSpec {
            name: "redis-0".into(),
            image: "scone/redis:5".into(),
            pid: 1234,
            memory_limit_bytes: 1 << 30,
        }
    }

    #[test]
    fn registered_containers_are_exported() {
        let exporter = ContainerExporter::new("worker-1");
        exporter.register_container(redis_spec());
        exporter.record_usage(
            "redis-0",
            ContainerUsage {
                cpu_seconds: 12.5,
                memory_bytes: 200 << 20,
                network_rx_bytes: 1_000,
                network_tx_bytes: 2_000,
            },
        );
        let parsed = parse_text(&render(&exporter)).unwrap();
        let labels = Labels::from_pairs([
            ("node", "worker-1"),
            ("container", "redis-0"),
            ("image", "scone/redis:5"),
        ]);
        assert_eq!(parsed.value("container_cpu_usage_seconds_total", &labels), Some(12.5));
        assert_eq!(
            parsed.value("container_memory_working_set_bytes", &labels),
            Some((200u64 << 20) as f64)
        );
        assert_eq!(
            parsed.value("container_spec_memory_limit_bytes", &labels),
            Some((1u64 << 30) as f64)
        );
        assert_eq!(exporter.job_name(), "cadvisor");
        assert_eq!(exporter.container_count(), 1);
    }

    #[test]
    fn usage_accumulates_and_unknown_containers_are_rejected() {
        let exporter = ContainerExporter::new("n");
        exporter.register_container(redis_spec());
        assert!(exporter
            .record_usage("redis-0", ContainerUsage { cpu_seconds: 1.0, ..Default::default() }));
        assert!(exporter
            .record_usage("redis-0", ContainerUsage { cpu_seconds: 2.0, ..Default::default() }));
        assert!(!exporter.record_usage("nope", ContainerUsage::default()));
        let parsed = parse_text(&render(&exporter)).unwrap();
        assert_eq!(parsed.total("container_cpu_usage_seconds_total"), 3.0);
    }

    #[test]
    fn containers_can_be_looked_up_by_pid_and_removed() {
        let exporter = ContainerExporter::new("n");
        exporter.register_container(redis_spec());
        assert_eq!(exporter.container_of(Pid::from_raw(1234)).unwrap().name, "redis-0");
        assert!(exporter.container_of(Pid::from_raw(1)).is_none());
        assert!(exporter.remove_container("redis-0"));
        assert!(!exporter.remove_container("redis-0"));
        assert_eq!(exporter.container_count(), 0);
    }
}
