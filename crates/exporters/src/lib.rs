//! PME — the Performance Metrics Exporters.
//!
//! The paper's exporter component has two halves (§4, §5.1):
//!
//! * the **TEE Metrics Exporter** (TME), a per-machine privileged exporter
//!   that reads the instrumented SGX driver's module parameters
//!   (`/sys/module/isgx/parameters/*`) and republishes them as OpenMetrics —
//!   implemented here as [`SgxExporter`] reading the simulated
//!   [`teemon_sgx_sim::SgxDriver`];
//! * the **System Metrics Exporter** (SME), composed of the eBPF exporter
//!   (syscalls, context switches, page faults, cache statistics — Table 2),
//!   the Prometheus node exporter (CPU/memory/filesystem/network) and
//!   cAdvisor (per-container utilisation) — implemented here as
//!   [`EbpfExporter`], [`NodeExporter`] and [`ContainerExporter`] reading the
//!   simulated kernel.
//!
//! Every exporter owns a [`teemon_metrics::Registry`] and renders the
//! OpenMetrics text document the aggregation component scrapes.

#![warn(missing_docs)]

pub mod container;
pub mod ebpf_exporter;
pub mod node;
pub mod tme;

pub use container::{ContainerExporter, ContainerSpec};
pub use ebpf_exporter::EbpfExporter;
pub use node::NodeExporter;
pub use tme::SgxExporter;

use teemon_metrics::{exposition, Registry};

/// Common behaviour of every TEEMon exporter.
pub trait Exporter {
    /// The exporter's job name as used by the scrape configuration.
    fn job_name(&self) -> &'static str;

    /// The exporter's metric registry.
    fn registry(&self) -> &Registry;

    /// Refreshes dynamic state (reads driver counters, dumps BPF maps, …).
    /// Called right before rendering; collectors that read at gather time may
    /// make this a no-op.
    fn refresh(&self) {}

    /// Renders the current OpenMetrics exposition text.
    fn render(&self) -> String {
        self.refresh();
        exposition::encode_text(&self.registry().gather())
    }
}
