//! PME — the Performance Metrics Exporters.
//!
//! The paper's exporter component has two halves (§4, §5.1):
//!
//! * the **TEE Metrics Exporter** (TME), a per-machine privileged exporter
//!   that reads the instrumented SGX driver's module parameters
//!   (`/sys/module/isgx/parameters/*`) and republishes them as OpenMetrics —
//!   implemented here as [`SgxExporter`] reading the simulated
//!   [`teemon_sgx_sim::SgxDriver`];
//! * the **System Metrics Exporter** (SME), composed of the eBPF exporter
//!   (syscalls, context switches, page faults, cache statistics — Table 2),
//!   the Prometheus node exporter (CPU/memory/filesystem/network) and
//!   cAdvisor (per-container utilisation) — implemented here as
//!   [`EbpfExporter`], [`NodeExporter`] and [`ContainerExporter`] reading the
//!   simulated kernel.
//!
//! Every exporter owns a [`teemon_metrics::Registry`] and implements the
//! typed [`Collector`] contract: the aggregation component scrapes structured
//! [`teemon_metrics::FamilySnapshot`]s directly, and the OpenMetrics text
//! document only exists at the edges (see
//! [`teemon_metrics::exposition::render_collector`] and
//! `teemon_tsdb::TextEndpoint`).

#![warn(missing_docs)]

pub mod container;
pub mod ebpf_exporter;
pub mod node;
pub mod tme;

pub use container::{ContainerExporter, ContainerSpec};
pub use ebpf_exporter::EbpfExporter;
pub use node::NodeExporter;
pub use teemon_metrics::{CollectError, Collector};
pub use tme::SgxExporter;
