//! The node exporter.
//!
//! §5.1: "The node exporter … exports machine metrics available through the
//! /proc and /sys directories … We integrated the node exporter into TEEMon
//! and reduced the reported metrics to CPU statistics, Memory statistics, File
//! system statistics, and Network statistics."
//!
//! The simulated equivalent reads the kernel's configuration and counters and
//! keeps a small set of node-level gauges that the host model updates.

use std::sync::Arc;

use parking_lot::RwLock;
use teemon_kernel_sim::Kernel;
use teemon_metrics::{
    CollectError, Collector, FamilySnapshot, Labels, MetricKind, MetricPoint, PointValue, Registry,
};

/// Mutable node-level statistics updated by the host model (disk and network
/// I/O are not modelled inside the kernel simulation, so the deployment layer
/// accounts them here, the way `/proc` would accumulate them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeUsage {
    /// Bytes received on the network interface.
    pub network_rx_bytes: u64,
    /// Bytes transmitted on the network interface.
    pub network_tx_bytes: u64,
    /// Bytes read from the root filesystem.
    pub fs_read_bytes: u64,
    /// Bytes written to the root filesystem.
    pub fs_written_bytes: u64,
    /// Bytes of memory currently in use (excluding page cache).
    pub memory_used_bytes: u64,
}

/// The per-node machine-metrics exporter.
#[derive(Clone)]
pub struct NodeExporter {
    registry: Registry,
    usage: Arc<RwLock<NodeUsage>>,
    kernel: Kernel,
}

impl NodeExporter {
    /// Creates a node exporter for `kernel`, labelled with the node name.
    pub fn new(kernel: &Kernel, node: &str) -> Self {
        let registry =
            Registry::with_constant_labels(Labels::from_pairs([("node", node.to_string())]));
        let usage = Arc::new(RwLock::new(NodeUsage::default()));

        let collector_kernel = kernel.clone();
        let collector_usage = Arc::clone(&usage);
        registry.register_source(Arc::new(move || {
            Self::gather(&collector_kernel, &collector_usage.read())
        }));
        Self { registry, usage, kernel: kernel.clone() }
    }

    /// Accounts additional I/O and memory usage (called by the host model).
    pub fn record_usage(&self, delta: NodeUsage) {
        let mut usage = self.usage.write();
        usage.network_rx_bytes += delta.network_rx_bytes;
        usage.network_tx_bytes += delta.network_tx_bytes;
        usage.fs_read_bytes += delta.fs_read_bytes;
        usage.fs_written_bytes += delta.fs_written_bytes;
        if delta.memory_used_bytes > 0 {
            usage.memory_used_bytes = delta.memory_used_bytes;
        }
    }

    /// The kernel being observed.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn gauge(name: &str, help: &str, value: f64) -> FamilySnapshot {
        FamilySnapshot::new(name, help, MetricKind::Gauge)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Gauge(value)))
    }

    fn counter(name: &str, help: &str, value: f64) -> FamilySnapshot {
        FamilySnapshot::new(name, help, MetricKind::Counter)
            .with_point(MetricPoint::new(Labels::new(), PointValue::Counter(value)))
    }

    fn gather(kernel: &Kernel, usage: &NodeUsage) -> Vec<FamilySnapshot> {
        let counters = kernel.counters();
        let config = kernel.config();
        let uptime = kernel.clock().now().as_secs_f64();
        let total_memory = config.memory_bytes as f64;
        vec![
            // CPU statistics.
            Self::gauge("node_cpu_cores", "Number of CPU cores", config.cpu_cores as f64),
            Self::counter("node_uptime_seconds_total", "Host uptime", uptime),
            Self::counter(
                "node_context_switches_total",
                "Context switches since boot",
                counters.context_switches as f64,
            ),
            Self::counter(
                "node_syscalls_total",
                "System calls since boot",
                counters.syscalls as f64,
            ),
            // Memory statistics.
            Self::gauge("node_memory_MemTotal_bytes", "Total memory", total_memory),
            Self::gauge(
                "node_memory_MemAvailable_bytes",
                "Available memory",
                (total_memory - usage.memory_used_bytes as f64).max(0.0),
            ),
            Self::counter(
                "node_vmstat_pgfault_total",
                "Page faults since boot",
                counters.page_faults_total() as f64,
            ),
            // File-system statistics.
            Self::counter(
                "node_filesystem_read_bytes_total",
                "Bytes read from the root filesystem",
                usage.fs_read_bytes as f64,
            ),
            Self::counter(
                "node_filesystem_written_bytes_total",
                "Bytes written to the root filesystem",
                usage.fs_written_bytes as f64,
            ),
            // Network statistics.
            Self::counter(
                "node_network_receive_bytes_total",
                "Bytes received",
                usage.network_rx_bytes as f64,
            ),
            Self::counter(
                "node_network_transmit_bytes_total",
                "Bytes transmitted",
                usage.network_tx_bytes as f64,
            ),
        ]
    }
}

impl NodeExporter {
    /// The exporter's metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Collector for NodeExporter {
    fn job_name(&self) -> &str {
        "node_exporter"
    }

    fn collect(&self) -> Result<Vec<FamilySnapshot>, CollectError> {
        Ok(self.registry.gather())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_kernel_sim::process::ProcessKind;
    use teemon_kernel_sim::Syscall;
    use teemon_metrics::exposition::parse_text;

    fn render(exporter: &impl Collector) -> String {
        teemon_metrics::exposition::render_collector(exporter).unwrap()
    }

    #[test]
    fn exports_cpu_memory_fs_and_network_classes() {
        let kernel = Kernel::new();
        let exporter = NodeExporter::new(&kernel, "worker-1");
        let text = render(&exporter);
        for metric in [
            "node_cpu_cores",
            "node_memory_MemTotal_bytes",
            "node_filesystem_read_bytes_total",
            "node_network_receive_bytes_total",
        ] {
            assert!(text.contains(metric), "missing {metric}");
        }
        assert_eq!(exporter.job_name(), "node_exporter");
    }

    #[test]
    fn kernel_activity_and_usage_show_up() {
        let kernel = Kernel::new();
        let exporter = NodeExporter::new(&kernel, "worker-1");
        let pid = kernel.spawn_process("redis-server", ProcessKind::User, 1);
        kernel.syscall(pid, Syscall::Write, false);
        exporter.record_usage(NodeUsage {
            network_rx_bytes: 1_000,
            network_tx_bytes: 5_000,
            memory_used_bytes: 1 << 30,
            ..NodeUsage::default()
        });
        exporter.record_usage(NodeUsage { network_rx_bytes: 500, ..NodeUsage::default() });

        let parsed = parse_text(&render(&exporter)).unwrap();
        let labels = Labels::from_pairs([("node", "worker-1")]);
        assert_eq!(parsed.value("node_syscalls_total", &labels), Some(1.0));
        assert_eq!(parsed.value("node_network_receive_bytes_total", &labels), Some(1_500.0));
        assert_eq!(parsed.value("node_network_transmit_bytes_total", &labels), Some(5_000.0));
        let available = parsed.value("node_memory_MemAvailable_bytes", &labels).unwrap();
        let total = parsed.value("node_memory_MemTotal_bytes", &labels).unwrap();
        assert_eq!(total - available, (1u64 << 30) as f64);
    }
}
