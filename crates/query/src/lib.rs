//! TeeQL — a PromQL-style query language over the TEEMon aggregation
//! database, plus the recording/alert rule subsystem built on it.
//!
//! The paper's PMAG component "provides detailed quantitative analysis by
//! selecting and applying aggregation functions to query results" (§4); in
//! the reference implementation that power comes from Prometheus' query
//! language.  This crate supplies the equivalent programmable layer:
//!
//! * [`parse`] — lexer + recursive-descent parser producing a typed
//!   [`Expr`] whose `Display` rendering is valid TeeQL that reparses to an
//!   equal tree,
//! * [`QueryEngine`] — instant and range evaluation over a
//!   [`teemon_tsdb::TimeSeriesDb`].  Range queries stream: the [`stream`]
//!   module compiles supported expressions into per-series sliding-window
//!   state machines whose cost is `O(samples touched)` rather than
//!   `O(steps × window)`, with the per-step evaluator retained as fallback
//!   and equivalence oracle,
//! * [`RuleEngine`] — [`RecordingRule`]s that write derived series back into
//!   the database and [`AlertRule`]s (expression + `for` hold + severity)
//!   that supersede the ad-hoc [`teemon_analysis::ThresholdKind`] path
//!   ([`compile_threshold`] converts the legacy rules).
//!
//! # The language
//!
//! ```text
//! expr     := expr (== | != | > | < | >= | <=) expr     comparisons filter
//!           | expr (+ | -) expr | expr (* | /) expr     scalar arithmetic
//!           | (sum|avg|min|max|count) [by|without (labels)] (expr)
//!           | func(expr) | quantile_over_time(q, expr)  range functions
//!           | name{label="v", label!="v"} [window]      selectors
//!           | number | (expr)
//! func     := rate | increase | avg_over_time | min_over_time
//!           | max_over_time | sum_over_time | count_over_time
//!           | last_over_time
//! window   := [5s] | [5m] | [1h30m] | [250ms] | ...
//! ```
//!
//! ```
//! use teemon_metrics::Labels;
//! use teemon_query::{QueryEngine, Value};
//! use teemon_tsdb::TimeSeriesDb;
//!
//! let db = TimeSeriesDb::new();
//! for t in 0..12u64 {
//!     for node in ["n1", "n2"] {
//!         let labels = Labels::from_pairs([("node", node)]);
//!         db.append("sgx_pages_evicted_total", &labels, t * 5_000, (t * 40) as f64);
//!     }
//! }
//! let engine = QueryEngine::new(db);
//! let value = engine
//!     .instant_query("sum by (node) (rate(sgx_pages_evicted_total[30s]))", 55_000)
//!     .unwrap();
//! let Value::Vector(per_node) = value else { panic!() };
//! assert_eq!(per_node.len(), 2);
//! assert!((per_node[0].value - 8.0).abs() < 1e-9); // 40 pages / 5 s
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod eval;
pub mod explain;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod stream;

pub use ast::{
    aggregate_op_from_name, aggregate_op_name, format_duration_ms, BinOp, Expr, Grouping, RangeFunc,
};
pub use eval::{EvalError, QueryEngine, QueryError, RangeSeries, Value, VectorSample};
pub use explain::{Analyze, Explain, PlanChoice, PlanNode};
pub use lexer::ParseError;
pub use parser::parse;
pub use rules::{
    cardinality_alerts, compile_threshold, self_observe_alerts, sgx_default_alerts, Alert,
    AlertRule, AlertState, RecordingRule, Rule, RuleEngine, RuleEvalSummary, RuleGroup,
};
