//! Recording and alert rules evaluated on a cadence over the database.
//!
//! This is the programmable replacement for the ad-hoc
//! [`teemon_analysis::ThresholdKind`] path: a recording rule evaluates a
//! TeeQL expression and writes the result back into the database as a new
//! series (queryable like any scraped metric), and an alert rule fires when
//! an expression returns a non-empty vector continuously for its `for`
//! duration.  [`compile_threshold`] converts the legacy threshold rules into
//! equivalent TeeQL alert expressions.

use std::collections::HashMap;

use parking_lot::{LockClass, Mutex};
use teemon_analysis::{Severity, Threshold, ThresholdKind};
use teemon_metrics::Labels;
use teemon_tsdb::TimeSeriesDb;

use crate::ast::{format_duration_ms, BinOp, Expr, RangeFunc};
use crate::eval::{QueryEngine, Value};
use crate::parser::parse;

/// A rule deriving a new series from an expression (`record = expr`).
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingRule {
    /// Name of the derived series (by convention `level:metric:operation`,
    /// e.g. `node:syscalls:rate5m`).
    pub record: String,
    /// The evaluated expression.
    pub expr: Expr,
    /// Extra labels attached to every derived sample.
    pub labels: Labels,
}

impl RecordingRule {
    /// Creates a recording rule.
    pub fn new(record: impl Into<String>, expr: Expr) -> Self {
        Self { record: record.into(), expr, labels: Labels::new() }
    }

    /// Attaches an extra label to every derived sample.
    #[must_use]
    pub fn with_label(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.insert(name, value);
        self
    }
}

/// A rule raising an alert while an expression keeps returning samples.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Alert name (appears in [`Alert::rule`] and the `ALERTS` series).
    pub name: String,
    /// The alert condition; every sample the expression returns is an active
    /// alert instance, keyed by its label set.
    pub expr: Expr,
    /// How long the condition must hold before the alert transitions from
    /// [`AlertState::Pending`] to [`AlertState::Firing`].
    pub for_ms: u64,
    /// Severity attached to raised alerts.
    pub severity: Severity,
    /// Human-oriented root-cause hint copied into raised alerts.
    pub hint: String,
}

impl AlertRule {
    /// Creates an alert rule that fires immediately (no `for` hold).
    pub fn new(name: impl Into<String>, expr: Expr, severity: Severity) -> Self {
        Self { name: name.into(), expr, for_ms: 0, severity, hint: String::new() }
    }

    /// Requires the condition to hold this long before firing.
    #[must_use]
    pub fn with_for_ms(mut self, for_ms: u64) -> Self {
        self.for_ms = for_ms;
        self
    }

    /// Sets the root-cause hint.
    #[must_use]
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = hint.into();
        self
    }

    /// Compiles a legacy [`Threshold`] rule into an equivalent TeeQL alert
    /// rule evaluating over `window_ms` windows.
    pub fn from_threshold(threshold: &Threshold, window_ms: u64) -> Self {
        Self {
            name: threshold.name.clone(),
            expr: compile_threshold(threshold, window_ms),
            for_ms: 0,
            severity: threshold.severity,
            hint: threshold.hint.clone(),
        }
    }
}

/// Compiles a [`Threshold`] into the TeeQL expression it denotes:
/// `MeanAbove(v)` becomes `avg_over_time(sel[w]) > v`, `MaxAbove` uses
/// `max_over_time`, `MedianAbove` uses `quantile_over_time(0.5, ...)`, and
/// `MeanBelow` flips the comparison.
pub fn compile_threshold(threshold: &Threshold, window_ms: u64) -> Expr {
    let range = Expr::Range { selector: threshold.selector.clone(), window_ms: window_ms.max(1) };
    let (func, param, op, value) = match threshold.kind {
        ThresholdKind::MeanAbove(v) => (RangeFunc::AvgOverTime, None, BinOp::Gt, v),
        ThresholdKind::MeanBelow(v) => (RangeFunc::AvgOverTime, None, BinOp::Lt, v),
        ThresholdKind::MaxAbove(v) => (RangeFunc::MaxOverTime, None, BinOp::Gt, v),
        ThresholdKind::MedianAbove(v) => (RangeFunc::QuantileOverTime, Some(0.5), BinOp::Gt, v),
    };
    Expr::Binary {
        op,
        lhs: Box::new(Expr::Call { func, param, arg: Box::new(range) }),
        rhs: Box::new(Expr::Number(value)),
    }
}

/// The default SGX alert rules: [`Threshold::sgx_defaults`] compiled to TeeQL
/// over `window_ms` windows.
pub fn sgx_default_alerts(window_ms: u64) -> Vec<AlertRule> {
    Threshold::sgx_defaults().iter().map(|t| AlertRule::from_threshold(t, window_ms)).collect()
}

/// The built-in alert rules over the engine's own telemetry (the
/// `job="teemon_self"` slice a self-scraping monitor maintains), evaluated
/// by the standard rule engine like any user group:
///
/// * `teemon_query_fallback` — range queries are taking the
///   `O(steps × window)` per-step path; `QueryEngine::explain` names the
///   reason per query.
/// * `teemon_shard_imbalance` — the hottest storage shard holds more than
///   4× the mean series count, so one shard lock absorbs a disproportionate
///   share of the ingest contention.
/// * `teemon_slow_queries` — queries crossed the slow-query threshold; the
///   offenders are in `teemon_obs::slow_queries()`.
/// * `teemon_wal_salvage` — crash recovery truncated a corrupt WAL tail;
///   the acked data survived but the disk or filesystem is damaging writes.
/// * `teemon_wal_unclean` — a scrape round's WAL flush hit a write or fsync
///   error: the round was served from memory but its durability is gone,
///   and the failed log is sticky until restart.
/// * `teemon_http_shed` — the serving edge is refusing connections at the
///   in-flight gate (503s): sustained overload, raise capacity or slow the
///   writers.
/// * `teemon_http_panics` — a request handler panicked; the shield caught
///   it (the server keeps serving) but the bug is real.
/// * `teemon_http_slow_clients` — clients are being cut off by the
///   slow-loris read deadlines (408s): a stuck writer or an attack.
///
/// `interval_ms` is the evaluation cadence; the rate windows span two
/// cadences so a single scrape round cannot alias to zero.
pub fn self_observe_alerts(interval_ms: u64) -> RuleGroup {
    let interval_ms = interval_ms.max(1);
    let window = format_duration_ms(interval_ms.saturating_mul(2).max(1_000));
    let rule = |name: &str, query: String, severity, hint: &str| {
        // teemon-verify: allow(no-unwrap): the expressions are built from
        // compile-time templates; a unit test reparses every one of them.
        AlertRule::new(name, parse(&query).expect("built-in rule parses"), severity).with_hint(hint)
    };
    RuleGroup::new("teemon_self", interval_ms)
        .with_rule(rule(
            "teemon_query_fallback",
            format!(r#"rate(teemon_query_range_total{{mode="fallback"}}[{window}]) > 0"#),
            Severity::Warning,
            "range queries are falling back to per-step evaluation; run \
             QueryEngine::explain on the offending queries for the reason",
        ))
        .with_rule(rule(
            "teemon_shard_imbalance",
            "max(teemon_tsdb_shard_series) > avg(teemon_tsdb_shard_series) * 4".to_string(),
            Severity::Warning,
            "one storage shard holds >4x the mean series count; label cardinality is \
             hashing unevenly",
        ))
        .with_rule(rule(
            "teemon_slow_queries",
            format!("rate(teemon_query_slow_total[{window}]) > 0"),
            Severity::Info,
            "queries crossed the slow-query threshold; see teemon_obs::slow_queries() \
             for the offenders",
        ))
        .with_rule(rule(
            "teemon_wal_salvage",
            "teemon_wal_salvage_total > 0".to_string(),
            Severity::Warning,
            "crash recovery truncated a corrupt WAL tail; acked data survived, but \
             the disk or filesystem is damaging writes",
        ))
        .with_rule(rule(
            "teemon_wal_unclean",
            "teemon_wal_unclean_rounds_total > 0".to_string(),
            Severity::Critical,
            "a scrape round's WAL flush hit a write/fsync error; the round is served \
             from memory but its durability is lost and the failed log is sticky \
             (see teemon_wal_failed_shards) — restart onto healthy storage",
        ))
        .with_rule(rule(
            "teemon_http_shed",
            format!("rate(teemon_http_shed_total[{window}]) > 0"),
            Severity::Warning,
            "the serving edge is shedding load at the in-flight gate (503); \
             sustained overload — raise worker capacity or slow the writers",
        ))
        .with_rule(rule(
            "teemon_http_panics",
            format!("rate(teemon_http_panics_total[{window}]) > 0"),
            Severity::Critical,
            "a request handler panicked; the panic shield kept the server up \
             but the handler bug is real — check the offending endpoint",
        ))
        .with_rule(rule(
            "teemon_http_slow_clients",
            format!("rate(teemon_http_slow_clients_total[{window}]) > 0"),
            Severity::Info,
            "clients are tripping the slow-loris read deadlines (408); a stuck \
             writer, a saturated network path, or a deliberate attack",
        ))
}

/// The built-in `teemon_cardinality` alert pack: the cardinality defense
/// watching itself.  Budget rejections at either ingest edge and sustained
/// interned-symbol memory growth (the signature of label churn outrunning
/// symbol GC) all fire here, over the same self-scraped series every other
/// self alert uses.
#[must_use]
pub fn cardinality_alerts(interval_ms: u64) -> RuleGroup {
    let interval_ms = interval_ms.max(1);
    let window = format_duration_ms(interval_ms.saturating_mul(2).max(1_000));
    // Memory-growth trends need more than two rounds of history to mean
    // anything; give them a longer window.
    let growth = format_duration_ms(interval_ms.saturating_mul(8).max(10_000));
    let rule = |name: &str, query: String, severity, hint: &str| {
        // teemon-verify: allow(no-unwrap): the expressions are built from
        // compile-time templates; a unit test reparses every one of them.
        AlertRule::new(name, parse(&query).expect("built-in rule parses"), severity).with_hint(hint)
    };
    RuleGroup::new("teemon_cardinality", interval_ms)
        .with_rule(rule(
            "teemon_budget_rejections",
            format!("rate(teemon_scrape_budget_rejected_total[{window}]) > 0"),
            Severity::Warning,
            "scrape/push cardinality budgets are clipping series; a target is \
             emitting more distinct label sets than its budget admits — fix the \
             exporter's labels or raise the budget \
             (teemon_overflow_series_total{{job=...}} names the offender)",
        ))
        .with_rule(rule(
            "teemon_http_cardinality_rejections",
            format!("rate(teemon_http_cardinality_rejected_total[{window}]) > 0"),
            Severity::Warning,
            "the remote-write edge is refusing over-budget requests with 429 \
             too_many_series; a writer is pushing more distinct series per \
             request than the configured write_series_budget",
        ))
        .with_rule(rule(
            "teemon_overflow_series",
            format!("increase(teemon_overflow_series_total[{window}]) > 0"),
            Severity::Info,
            "budget-clipped samples accumulated this window; the job label of \
             the series names which target is over budget",
        ))
        .with_rule(rule(
            "teemon_symbol_memory_growth",
            format!(
                "max(max_over_time(teemon_tsdb_symbol_bytes[{growth}])) > \
                 max(min_over_time(teemon_tsdb_symbol_bytes[{growth}])) * 1.5"
            ),
            Severity::Warning,
            "interned-symbol memory grew >50% within the window; label churn is \
             outrunning symbol GC — check teemon_tsdb_symbols_swept_total is \
             advancing (GC runs at WAL meta-log rotation) and that retention \
             is actually dropping the churned series",
        ))
}

/// A recording or alert rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Rule {
    /// Derives a new series.
    Recording(RecordingRule),
    /// Raises alerts.
    Alert(AlertRule),
}

impl From<RecordingRule> for Rule {
    fn from(rule: RecordingRule) -> Self {
        Rule::Recording(rule)
    }
}

impl From<AlertRule> for Rule {
    fn from(rule: AlertRule) -> Self {
        Rule::Alert(rule)
    }
}

/// A named set of rules evaluated together on one cadence.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleGroup {
    /// Group name (for diagnostics).
    pub name: String,
    /// Evaluation cadence in milliseconds.
    pub interval_ms: u64,
    /// The rules, evaluated in order (recording rules therefore feed later
    /// rules of the same group on the *next* evaluation at the earliest).
    pub rules: Vec<Rule>,
}

impl RuleGroup {
    /// Creates an empty group evaluating every `interval_ms`.
    pub fn new(name: impl Into<String>, interval_ms: u64) -> Self {
        Self { name: name.into(), interval_ms: interval_ms.max(1), rules: Vec::new() }
    }

    /// Adds a rule.
    #[must_use]
    pub fn with_rule(mut self, rule: impl Into<Rule>) -> Self {
        self.rules.push(rule.into());
        self
    }
}

/// Lifecycle state of an alert instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The condition holds but has not yet held for the rule's `for`
    /// duration.
    Pending,
    /// The condition has held long enough; the alert is active.
    Firing,
}

/// One active alert instance (one label set of one alert rule).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that raised the alert.
    pub rule: String,
    /// Rule severity.
    pub severity: Severity,
    /// Label set identifying the instance.
    pub labels: Labels,
    /// The condition expression's most recent value for this instance.
    pub value: f64,
    /// When the condition first started holding (ms).
    pub since_ms: u64,
    /// Pending or firing.
    pub state: AlertState,
    /// The rule's root-cause hint.
    pub hint: String,
}

/// Summary of one [`RuleEngine::evaluate_due`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleEvalSummary {
    /// Groups whose cadence was due and which were therefore evaluated.
    pub groups_evaluated: usize,
    /// Samples written back by recording rules.
    pub samples_recorded: usize,
    /// Alerts currently firing (after this pass).
    pub alerts_firing: usize,
    /// Human-readable evaluation errors (`group/rule: error`), if any.
    pub errors: Vec<String>,
}

struct GroupState {
    group: RuleGroup,
    last_eval_ms: Option<u64>,
    /// Active alert instances keyed by (rule index in group, label set).
    active: HashMap<(usize, Labels), Alert>,
}

/// Evaluates rule groups against a database on their cadences.
///
/// The engine shares the database with the monitoring stack: recording rules
/// append derived series, and firing (not pending) alerts are additionally
/// exported as the `ALERTS{alertname=..., severity=...}` metric so dashboards
/// can plot them.
pub struct RuleEngine {
    engine: QueryEngine,
    db: TimeSeriesDb,
    inner: Mutex<Vec<GroupState>>,
}

impl RuleEngine {
    /// Creates an engine over `db` with no groups.
    pub fn new(db: TimeSeriesDb) -> Self {
        Self {
            engine: QueryEngine::new(db.clone()),
            db,
            inner: Mutex::named(Vec::new(), LockClass::new("query.rules")),
        }
    }

    /// Adds a rule group.
    pub fn add_group(&self, group: RuleGroup) {
        self.inner.lock().push(GroupState { group, last_eval_ms: None, active: HashMap::new() });
    }

    /// Number of configured groups.
    pub fn group_count(&self) -> usize {
        self.inner.lock().len()
    }

    /// Total number of configured rules across all groups.
    pub fn rule_count(&self) -> usize {
        self.inner.lock().iter().map(|g| g.group.rules.len()).sum()
    }

    /// Evaluates every group whose cadence has elapsed at `now_ms`.
    pub fn evaluate_due(&self, now_ms: u64) -> RuleEvalSummary {
        self.evaluate(now_ms, false)
    }

    /// Evaluates every group regardless of cadence (a forced tick).
    pub fn evaluate_all(&self, now_ms: u64) -> RuleEvalSummary {
        self.evaluate(now_ms, true)
    }

    fn evaluate(&self, now_ms: u64, force: bool) -> RuleEvalSummary {
        let mut summary = RuleEvalSummary::default();
        let mut inner = self.inner.lock();
        for state in inner.iter_mut() {
            let due = force
                || state
                    .last_eval_ms
                    .map(|last| now_ms.saturating_sub(last) >= state.group.interval_ms)
                    .unwrap_or(true);
            if !due {
                continue;
            }
            state.last_eval_ms = Some(now_ms);
            summary.groups_evaluated += 1;
            self.evaluate_group(state, now_ms, &mut summary);
        }
        summary.alerts_firing = inner
            .iter()
            .flat_map(|g| g.active.values())
            .filter(|a| a.state == AlertState::Firing)
            .count();
        summary
    }

    fn evaluate_group(&self, state: &mut GroupState, now_ms: u64, summary: &mut RuleEvalSummary) {
        let GroupState { group, active, .. } = state;
        for (index, rule) in group.rules.iter().enumerate() {
            match rule {
                Rule::Recording(recording) => match self.engine.instant(&recording.expr, now_ms) {
                    Ok(value) => {
                        summary.samples_recorded += self.record(recording, value, now_ms);
                    }
                    Err(err) => {
                        summary.errors.push(format!("{}/{}: {err}", group.name, recording.record))
                    }
                },
                Rule::Alert(alert) => match self.engine.instant(&alert.expr, now_ms) {
                    Ok(value) => self.transition_alerts(active, index, alert, &value, now_ms),
                    Err(err) => {
                        summary.errors.push(format!("{}/{}: {err}", group.name, alert.name))
                    }
                },
            }
        }
    }

    fn record(&self, rule: &RecordingRule, value: Value, now_ms: u64) -> usize {
        let samples = match value {
            Value::Scalar(v) => {
                vec![(rule.labels.clone(), v)]
            }
            Value::Vector(samples) => {
                samples.into_iter().map(|s| (s.labels.merged(&rule.labels), s.value)).collect()
            }
            Value::Matrix(_) => return 0,
        };
        let mut recorded = 0;
        for (labels, v) in samples {
            if self.db.append(&rule.record, &labels, now_ms, v) {
                recorded += 1;
            }
        }
        recorded
    }

    fn transition_alerts(
        &self,
        active: &mut HashMap<(usize, Labels), Alert>,
        rule_index: usize,
        rule: &AlertRule,
        value: &Value,
        now_ms: u64,
    ) {
        let samples: Vec<(Labels, f64)> = match value {
            Value::Scalar(v) if *v != 0.0 => vec![(Labels::new(), *v)],
            Value::Scalar(_) => Vec::new(),
            Value::Vector(samples) => samples.iter().map(|s| (s.labels.clone(), s.value)).collect(),
            Value::Matrix(_) => Vec::new(),
        };
        // Instances no longer returned by the expression resolve.
        let present: Vec<Labels> = samples.iter().map(|(l, _)| l.clone()).collect();
        active.retain(|(index, labels), _| *index != rule_index || present.contains(labels));
        for (labels, sample_value) in samples {
            let key = (rule_index, labels.clone());
            let since_ms = active.get(&key).map(|a| a.since_ms).unwrap_or(now_ms);
            let alert_state = if now_ms.saturating_sub(since_ms) >= rule.for_ms {
                AlertState::Firing
            } else {
                AlertState::Pending
            };
            if alert_state == AlertState::Firing {
                let export = labels
                    .with("alertname", rule.name.clone())
                    .with("severity", format!("{:?}", rule.severity).to_lowercase());
                self.db.append("ALERTS", &export, now_ms, 1.0);
            }
            active.insert(
                key,
                Alert {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    labels,
                    value: sample_value,
                    since_ms,
                    state: alert_state,
                    hint: rule.hint.clone(),
                },
            );
        }
    }

    /// Every pending or firing alert instance, most severe first.
    pub fn active_alerts(&self) -> Vec<Alert> {
        let mut alerts: Vec<Alert> =
            self.inner.lock().iter().flat_map(|g| g.active.values().cloned()).collect();
        alerts.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.rule.cmp(&b.rule)));
        alerts
    }

    /// Only the firing alert instances, most severe first.
    pub fn firing_alerts(&self) -> Vec<Alert> {
        self.active_alerts().into_iter().filter(|a| a.state == AlertState::Firing).collect()
    }
}

impl std::fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleEngine")
            .field("groups", &self.group_count())
            .field("rules", &self.rule_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use teemon_tsdb::Selector;

    fn counter_db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..25u64 {
            for (node, scale) in [("n1", 1.0), ("n2", 5.0)] {
                db.append(
                    "requests_total",
                    &Labels::from_pairs([("node", node)]),
                    t * 5_000,
                    t as f64 * 50.0 * scale,
                );
            }
        }
        db
    }

    #[test]
    fn recording_rules_write_derived_series() {
        let db = counter_db();
        let engine = RuleEngine::new(db.clone());
        engine.add_group(
            RuleGroup::new("derived", 5_000).with_rule(
                RecordingRule::new(
                    "node:requests:rate30s",
                    parse("sum by (node) (rate(requests_total[30s]))").unwrap(),
                )
                .with_label("source", "teeql"),
            ),
        );
        let summary = engine.evaluate_due(120_000);
        assert_eq!(summary.groups_evaluated, 1);
        assert_eq!(summary.samples_recorded, 2);
        assert!(summary.errors.is_empty());
        let results = db.query_instant(&Selector::metric("node:requests:rate30s"), u64::MAX);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.labels.get("source") == Some("teeql")));
        // The derived series is itself queryable through TeeQL.
        let q = QueryEngine::new(db);
        let value = q.instant_query(r#"node:requests:rate30s{node="n2"}"#, 120_000).unwrap();
        assert_eq!(value.as_vector().unwrap().len(), 1);
        assert!((value.as_vector().unwrap()[0].value - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cadence_gates_evaluation() {
        let engine = RuleEngine::new(counter_db());
        engine.add_group(
            RuleGroup::new("g", 60_000)
                .with_rule(RecordingRule::new("x:y:z", parse("sum(requests_total)").unwrap())),
        );
        assert_eq!(engine.evaluate_due(0).groups_evaluated, 1);
        assert_eq!(engine.evaluate_due(30_000).groups_evaluated, 0, "not due yet");
        assert_eq!(engine.evaluate_due(60_000).groups_evaluated, 1);
        assert_eq!(engine.evaluate_all(61_000).groups_evaluated, 1, "forced");
    }

    #[test]
    fn alerts_hold_for_duration_then_fire_and_resolve() {
        let db = TimeSeriesDb::new();
        let engine = RuleEngine::new(db.clone());
        engine.add_group(
            RuleGroup::new("alerts", 5_000).with_rule(
                AlertRule::new(
                    "free_pages_low",
                    parse("free_pages < 1000").unwrap(),
                    Severity::Critical,
                )
                .with_for_ms(10_000)
                .with_hint("EPC nearly exhausted"),
            ),
        );
        let labels = Labels::from_pairs([("node", "n1")]);
        // Healthy: no alert.
        db.append("free_pages", &labels, 0, 20_000.0);
        engine.evaluate_due(0);
        assert!(engine.active_alerts().is_empty());
        // Condition starts holding: pending.
        db.append("free_pages", &labels, 5_000, 100.0);
        engine.evaluate_due(5_000);
        let active = engine.active_alerts();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].state, AlertState::Pending);
        assert_eq!(active[0].since_ms, 5_000);
        assert!(engine.firing_alerts().is_empty());
        // Still holding at +5 s: still pending (for = 10 s).
        db.append("free_pages", &labels, 10_000, 90.0);
        engine.evaluate_due(10_000);
        assert_eq!(engine.active_alerts()[0].state, AlertState::Pending);
        // Held for 10 s: firing, and exported as the ALERTS series.
        db.append("free_pages", &labels, 15_000, 80.0);
        let summary = engine.evaluate_due(15_000);
        assert_eq!(summary.alerts_firing, 1);
        let firing = engine.firing_alerts();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].rule, "free_pages_low");
        assert_eq!(firing[0].value, 80.0);
        assert_eq!(firing[0].hint, "EPC nearly exhausted");
        let exported = db.query_instant(
            &Selector::metric("ALERTS").with_label("alertname", "free_pages_low"),
            u64::MAX,
        );
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].labels.get("severity"), Some("critical"));
        // Condition clears: the alert resolves.
        db.append("free_pages", &labels, 20_000, 20_000.0);
        engine.evaluate_due(20_000);
        assert!(engine.active_alerts().is_empty());
    }

    #[test]
    fn thresholds_compile_to_teeql() {
        let thresholds = Threshold::sgx_defaults();
        for t in &thresholds {
            let expr = compile_threshold(t, 300_000);
            // The compiled expression round-trips through the parser.
            assert_eq!(parse(&expr.to_string()).unwrap(), expr);
        }
        let mean_below = thresholds.iter().find(|t| t.name == "epc_free_pages_low").unwrap();
        assert_eq!(
            compile_threshold(mean_below, 300_000).to_string(),
            "avg_over_time(sgx_nr_free_pages[5m]) < 512"
        );
        let median = Threshold::new(
            "m",
            Selector::metric("latency_ms"),
            ThresholdKind::MedianAbove(10.0),
            Severity::Info,
            "",
        );
        assert_eq!(
            compile_threshold(&median, 60_000).to_string(),
            "quantile_over_time(0.5, latency_ms[1m]) > 10"
        );
        let alerts = sgx_default_alerts(300_000);
        assert_eq!(alerts.len(), thresholds.len());
        assert_eq!(alerts[0].name, thresholds[0].name);
        assert_eq!(alerts[0].severity, thresholds[0].severity);
    }

    #[test]
    fn compiled_threshold_fires_like_the_legacy_detector() {
        // The legacy path: MeanBelow(512) over sgx_nr_free_pages windows.
        let db = TimeSeriesDb::new();
        let labels = Labels::from_pairs([("node", "n1")]);
        for minute in 0..10u64 {
            let free = if minute < 5 { 20_000.0 } else { 100.0 };
            db.append("sgx_nr_free_pages", &labels, minute * 60_000, free);
        }
        let engine = RuleEngine::new(db);
        let mut group = RuleGroup::new("sgx", 60_000);
        for alert in sgx_default_alerts(300_000) {
            group = group.with_rule(alert);
        }
        engine.add_group(group);
        // At t=10 min the 5-minute window covers only the collapsed values.
        let summary = engine.evaluate_due(10 * 60_000);
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        let firing = engine.firing_alerts();
        assert_eq!(firing.len(), 1);
        assert_eq!(firing[0].rule, "epc_free_pages_low");
        assert!(firing[0].hint.contains("EPC"));
    }

    #[test]
    fn self_observe_alerts_parse_and_fire_on_self_metrics() {
        let group = self_observe_alerts(15_000);
        assert_eq!(group.name, "teemon_self");
        assert_eq!(group.rules.len(), 8);
        // Every built-in expression round-trips through the parser (the
        // group builder unwraps on this invariant).
        for rule in &group.rules {
            let Rule::Alert(alert) = rule else { panic!("self group is alerts only") };
            assert_eq!(parse(&alert.expr.to_string()).unwrap(), alert.expr);
        }
        // Feed a database the shapes the self-scrape target would write and
        // check the rules actually trip.
        let db = TimeSeriesDb::new();
        let fallback = Labels::from_pairs([("mode", "fallback")]);
        for t in 0..10u64 {
            // Fallback counter climbing => non-zero rate.
            db.append("teemon_query_range_total", &fallback, t * 5_000, t as f64);
            // Shard 0 hoards series while the others sit near empty (8
            // shards: with n shards max/avg can approach n, so 4 shards
            // could never trip the 4x rule).
            for shard in 0..8u64 {
                let series = if shard == 0 { 900.0 } else { 10.0 };
                let labels = Labels::from_pairs([("shard", shard.to_string())]);
                db.append("teemon_tsdb_shard_series", &labels, t * 5_000, series);
            }
            // A recovery salvaged a corrupt tail => the durability alert.
            db.append("teemon_wal_salvage_total", &Labels::new(), t * 5_000, 1.0);
            // Every flush stayed clean => the unclean-round alert is quiet.
            db.append("teemon_wal_unclean_rounds_total", &Labels::new(), t * 5_000, 0.0);
            // The serving edge shed load under overload => the shed alert.
            db.append("teemon_http_shed_total", &Labels::new(), t * 5_000, (t * 2) as f64);
            // No handler panics => the panic alert stays quiet.
            db.append("teemon_http_panics_total", &Labels::new(), t * 5_000, 0.0);
        }
        let engine = RuleEngine::new(db);
        engine.add_group(group);
        let summary = engine.evaluate_due(45_000);
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        let firing: Vec<String> = engine.firing_alerts().into_iter().map(|a| a.rule).collect();
        assert!(firing.contains(&"teemon_query_fallback".to_string()), "{firing:?}");
        assert!(firing.contains(&"teemon_shard_imbalance".to_string()), "{firing:?}");
        assert!(firing.contains(&"teemon_wal_salvage".to_string()), "{firing:?}");
        // No slow queries recorded => that rule stays quiet.
        assert!(!firing.contains(&"teemon_slow_queries".to_string()), "{firing:?}");
        // Clean flushes => no durability-loss alert.
        assert!(!firing.contains(&"teemon_wal_unclean".to_string()), "{firing:?}");
        // The serving edge shed load => the HTTP shed alert fires.
        assert!(firing.contains(&"teemon_http_shed".to_string()), "{firing:?}");
        // No panics, no slow clients recorded => those stay quiet.
        assert!(!firing.contains(&"teemon_http_panics".to_string()), "{firing:?}");
        assert!(!firing.contains(&"teemon_http_slow_clients".to_string()), "{firing:?}");
    }

    #[test]
    fn cardinality_alerts_parse_and_fire_on_budget_and_symbol_signals() {
        let group = cardinality_alerts(15_000);
        assert_eq!(group.name, "teemon_cardinality");
        assert_eq!(group.rules.len(), 4);
        for rule in &group.rules {
            let Rule::Alert(alert) = rule else { panic!("cardinality group is alerts only") };
            assert_eq!(parse(&alert.expr.to_string()).unwrap(), alert.expr);
        }
        let db = TimeSeriesDb::new();
        for t in 0..20u64 {
            // Budgets started clipping half-way through => rejection spike.
            let rejected = if t >= 10 { (t - 10) as f64 * 5.0 } else { 0.0 };
            db.append("teemon_scrape_budget_rejected_total", &Labels::new(), t * 15_000, rejected);
            // The HTTP edge saw no over-budget requests => that rule is quiet.
            db.append("teemon_http_cardinality_rejected_total", &Labels::new(), t * 15_000, 0.0);
            // The per-job roll-up mirrors the clip.
            let job = Labels::from_pairs([("job", "churny")]);
            db.append("teemon_overflow_series_total", &job, t * 15_000, rejected);
            // Symbol memory compounding leak-style => the growth alert (the
            // 8-interval window must see >50% growth within itself).
            db.append(
                "teemon_tsdb_symbol_bytes",
                &Labels::new(),
                t * 15_000,
                100_000.0 * (1.0 + t as f64),
            );
        }
        let engine = RuleEngine::new(db);
        engine.add_group(group);
        let summary = engine.evaluate_due(19 * 15_000);
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        let firing: Vec<String> = engine.firing_alerts().into_iter().map(|a| a.rule).collect();
        assert!(firing.contains(&"teemon_budget_rejections".to_string()), "{firing:?}");
        assert!(firing.contains(&"teemon_overflow_series".to_string()), "{firing:?}");
        assert!(firing.contains(&"teemon_symbol_memory_growth".to_string()), "{firing:?}");
        assert!(
            !firing.contains(&"teemon_http_cardinality_rejections".to_string()),
            "no 429s were recorded: {firing:?}"
        );
    }

    #[test]
    fn rule_errors_are_reported_not_fatal() {
        let engine = RuleEngine::new(TimeSeriesDb::new());
        engine.add_group(
            RuleGroup::new("broken", 1_000)
                .with_rule(RecordingRule::new("bad", parse("rate(up)").unwrap()))
                .with_rule(AlertRule::new("ok", parse("up == 1").unwrap(), Severity::Info)),
        );
        let summary = engine.evaluate_due(0);
        assert_eq!(summary.errors.len(), 1);
        assert!(summary.errors[0].contains("broken/bad"), "{:?}", summary.errors);
    }
}
