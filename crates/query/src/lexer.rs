//! The TeeQL lexer: turns query text into a token stream with positions.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier: metric name, label name, keyword or function name.
    /// Metric names may contain `:` (recording-rule convention).
    Ident(String),
    /// A scalar literal.
    Number(f64),
    /// A quoted string with escapes resolved.
    Str(String),
    /// A duration literal, resolved to milliseconds (`5m`, `1h30m`, `250ms`).
    Duration(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl Token {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(name) => format!("identifier `{name}`"),
            Token::Number(n) => format!("number `{n}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Duration(ms) => format!("duration `{ms}ms`"),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Token::LParen => "(",
            Token::RParen => ")",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::Comma => ",",
            Token::Eq => "=",
            Token::EqEq => "==",
            Token::Ne => "!=",
            Token::Gt => ">",
            Token::Lt => "<",
            Token::Ge => ">=",
            Token::Le => "<=",
            Token::Plus => "+",
            Token::Minus => "-",
            Token::Star => "*",
            Token::Slash => "/",
            _ => "?",
        }
    }
}

/// A token plus the character offset where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Character (not byte) offset into the query string.
    pub pos: usize,
}

/// A lexing or parsing failure, pointing at a position in the query.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Character offset the error refers to.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(pos: usize, message: impl Into<String>) -> Self {
        Self { pos, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at position {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

fn duration_unit_ms(unit: &str) -> Option<u64> {
    match unit {
        "ms" => Some(1),
        "s" => Some(1_000),
        "m" => Some(60_000),
        "h" => Some(3_600_000),
        "d" => Some(86_400_000),
        _ => None,
    }
}

/// Lexes `input` into tokens.
///
/// # Errors
///
/// Returns a [`ParseError`] on an unexpected character, an unterminated
/// string, an invalid escape, a malformed number or an unknown duration unit.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let chars: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let start = i;
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => push(&mut tokens, Token::LParen, start, &mut i),
            ')' => push(&mut tokens, Token::RParen, start, &mut i),
            '{' => push(&mut tokens, Token::LBrace, start, &mut i),
            '}' => push(&mut tokens, Token::RBrace, start, &mut i),
            '[' => push(&mut tokens, Token::LBracket, start, &mut i),
            ']' => push(&mut tokens, Token::RBracket, start, &mut i),
            ',' => push(&mut tokens, Token::Comma, start, &mut i),
            '+' => push(&mut tokens, Token::Plus, start, &mut i),
            '-' => push(&mut tokens, Token::Minus, start, &mut i),
            '*' => push(&mut tokens, Token::Star, start, &mut i),
            '/' => push(&mut tokens, Token::Slash, start, &mut i),
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::EqEq, pos: start });
                } else {
                    push(&mut tokens, Token::Eq, start, &mut i);
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Ne, pos: start });
                } else {
                    return Err(ParseError::new(start, "expected `!=`, found lone `!`"));
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Ge, pos: start });
                } else {
                    push(&mut tokens, Token::Gt, start, &mut i);
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Le, pos: start });
                } else {
                    push(&mut tokens, Token::Lt, start, &mut i);
                }
            }
            '"' => {
                let (value, next) = lex_string(&chars, i)?;
                tokens.push(Spanned { token: Token::Str(value), pos: start });
                i = next;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let (token, next) = lex_number_or_duration(&chars, i)?;
                tokens.push(Spanned { token, pos: start });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == ':' => {
                let mut end = i;
                while end < chars.len()
                    && (chars[end].is_ascii_alphanumeric()
                        || chars[end] == '_'
                        || chars[end] == ':')
                {
                    end += 1;
                }
                let ident: String = chars[i..end].iter().collect();
                tokens.push(Spanned { token: Token::Ident(ident), pos: start });
                i = end;
            }
            other => {
                return Err(ParseError::new(start, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

fn push(tokens: &mut Vec<Spanned>, token: Token, start: usize, i: &mut usize) {
    tokens.push(Spanned { token, pos: start });
    *i += 1;
}

fn lex_string(chars: &[char], start: usize) -> Result<(String, usize), ParseError> {
    let mut out = String::new();
    let mut i = start + 1; // skip opening quote
    while i < chars.len() {
        match chars[i] {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let escape = chars.get(i + 1).copied();
                match escape {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(other) => {
                        return Err(ParseError::new(i, format!("invalid escape `\\{other}`")));
                    }
                    None => return Err(ParseError::new(i, "unterminated escape")),
                }
                i += 2;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    Err(ParseError::new(start, "unterminated string literal"))
}

fn lex_number_or_duration(chars: &[char], start: usize) -> Result<(Token, usize), ParseError> {
    let mut i = start;
    let mut seen_dot = false;
    while i < chars.len() && (chars[i].is_ascii_digit() || (chars[i] == '.' && !seen_dot)) {
        seen_dot |= chars[i] == '.';
        i += 1;
    }
    // Exponent part (`1e9`, `2.5e-3`).
    if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
        let mut j = i + 1;
        if j < chars.len() && (chars[j] == '+' || chars[j] == '-') {
            j += 1;
        }
        if j < chars.len() && chars[j].is_ascii_digit() {
            i = j;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let value = text
                .parse::<f64>()
                .map_err(|_| ParseError::new(start, format!("malformed number `{text}`")))?;
            return Ok((Token::Number(value), i));
        }
    }
    // Duration: one or more `<integer><unit>` segments (`1h30m`, `250ms`).
    if i < chars.len() && chars[i].is_ascii_alphabetic() {
        if seen_dot {
            return Err(ParseError::new(start, "durations must use integer segments"));
        }
        let mut total_ms = 0u64;
        let mut j = start;
        while j < chars.len() && chars[j].is_ascii_digit() {
            let digits_start = j;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
            let digits: String = chars[digits_start..j].iter().collect();
            let amount = digits
                .parse::<u64>()
                .map_err(|_| ParseError::new(digits_start, "duration segment too large"))?;
            let unit_start = j;
            while j < chars.len() && chars[j].is_ascii_alphabetic() {
                j += 1;
            }
            let unit: String = chars[unit_start..j].iter().collect();
            let scale = duration_unit_ms(&unit).ok_or_else(|| {
                ParseError::new(
                    unit_start,
                    format!("unknown duration unit `{unit}` (expected ms, s, m, h or d)"),
                )
            })?;
            total_ms = total_ms.saturating_add(amount.saturating_mul(scale));
        }
        if j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
            return Err(ParseError::new(j, "trailing digits after duration"));
        }
        return Ok((Token::Duration(total_ms), j));
    }
    let text: String = chars[start..i].iter().collect();
    let value = text
        .parse::<f64>()
        .map_err(|_| ParseError::new(start, format!("malformed number `{text}`")))?;
    Ok((Token::Number(value), i))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_selectors_and_operators() {
        assert_eq!(
            kinds(r#"up{node="n1"} >= 1"#),
            vec![
                Token::Ident("up".into()),
                Token::LBrace,
                Token::Ident("node".into()),
                Token::Eq,
                Token::Str("n1".into()),
                Token::RBrace,
                Token::Ge,
                Token::Number(1.0),
            ]
        );
    }

    #[test]
    fn lexes_durations_and_numbers() {
        assert_eq!(kinds("[5m]"), vec![Token::LBracket, Token::Duration(300_000), Token::RBracket]);
        assert_eq!(kinds("1h30m"), vec![Token::Duration(5_400_000)]);
        assert_eq!(kinds("250ms"), vec![Token::Duration(250)]);
        assert_eq!(kinds("2.5"), vec![Token::Number(2.5)]);
        assert_eq!(kinds("1e3"), vec![Token::Number(1_000.0)]);
        assert_eq!(kinds("2.5e-1"), vec![Token::Number(0.25)]);
    }

    #[test]
    fn string_escapes_resolve() {
        assert_eq!(kinds(r#""a\"b\\c\nd""#), vec![Token::Str("a\"b\\c\nd".into())]);
    }

    #[test]
    fn colons_stay_in_identifiers() {
        assert_eq!(
            kinds("node:syscalls:rate5m"),
            vec![Token::Ident("node:syscalls:rate5m".into())]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("up @ 1").unwrap_err();
        assert_eq!(err.pos, 3);
        assert!(err.message.contains('@'));
        assert!(lex(r#""never closed"#).unwrap_err().message.contains("unterminated"));
        let err = lex("m[5y]").unwrap_err();
        assert!(err.message.contains("unknown duration unit"), "{err}");
        assert!(lex("foo{a!b}").unwrap_err().message.contains("!="));
    }
}
