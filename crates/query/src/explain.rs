//! `EXPLAIN` / `ANALYZE` for TeeQL range queries.
//!
//! [`QueryEngine::explain`] compiles a query the same way
//! [`QueryEngine::range`] would and reports the resulting plan without
//! running it: a tree mirroring the expression, each node annotated with the
//! number of series it matches (resolved against the storage index at
//! explain time), plus the top-level evaluator choice — **streamed** or
//! **per-step fallback with the planner's reason**.  The streaming planner
//! is all-or-nothing, so the choice is a property of the whole expression,
//! not of individual nodes.
//!
//! [`QueryEngine::analyze`] additionally runs the query through the
//! instrumented range funnel and attaches what actually happened: wall time,
//! chunk samples decoded, drift-guard window rebuilds, and the result shape.
//! The counters are the per-run view of the `teemon_query_*` probes — an
//! `analyze` call also feeds the global telemetry, exactly like `range`.

use std::fmt;

use teemon_metrics::Labels;
use teemon_tsdb::TimeSeriesDb;

use crate::ast::{aggregate_op_name, format_duration_ms, Expr};
use crate::eval::{QueryEngine, QueryError, RangeSeries};
use crate::parser::parse;
use crate::stream;

/// Which evaluator answers the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// The whole expression compiles into sliding-window state machines:
    /// cost `O(samples touched)`.
    Streamed,
    /// The expression needs the per-step fallback (`O(steps × window)`),
    /// for the stated planner reason.
    FallbackPerStep {
        /// Why the streaming planner rejected the expression.
        reason: &'static str,
    },
}

impl fmt::Display for PlanChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanChoice::Streamed => f.write_str("streamed"),
            PlanChoice::FallbackPerStep { reason } => {
                write!(f, "per-step fallback ({reason})")
            }
        }
    }
}

/// One node of an explained plan, mirroring the expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// Human-readable operator description (`selector m{..}`,
    /// `rate over 30s windows`, `sum by (node)`, …).
    pub label: String,
    /// Series this node produces, resolved against the index at explain
    /// time (concurrent ingestion may shift it by run time).
    pub series: usize,
    /// Input operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        writeln!(f, "{:indent$}- {} → {} series", "", self.label, self.series, indent = depth * 2)?;
        for child in &self.children {
            child.render(f, depth + 1)?;
        }
        Ok(())
    }
}

/// The compiled-but-not-run view of a query ([`QueryEngine::explain`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Explain {
    /// The query, rendered back from the parsed expression.
    pub query: String,
    /// Streamed or fallback (with reason).
    pub choice: PlanChoice,
    /// The annotated plan tree (root = whole expression).
    pub root: PlanNode,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{}]", self.query, self.choice)?;
        self.root.render(f, 0)
    }
}

/// The ran-and-measured view of a query ([`QueryEngine::analyze`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Analyze {
    /// The plan, as [`QueryEngine::explain`] reports it.
    pub explain: Explain,
    /// Measured wall time of the evaluation in seconds.
    pub wall_seconds: f64,
    /// Chunk samples decoded by the window machines (0 on the fallback
    /// path, which does not stream-decode).
    pub samples_decoded: u64,
    /// Drift-guard window-aggregate rebuilds.
    pub window_rebuilds: u64,
    /// The evaluated range series.
    pub result: Vec<RangeSeries>,
}

impl Analyze {
    /// Series in the result.
    pub fn series_returned(&self) -> usize {
        self.result.len()
    }

    /// Points across all result series.
    pub fn points_returned(&self) -> u64 {
        self.result.iter().map(|s| s.points.len() as u64).sum()
    }
}

impl fmt::Display for Analyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain)?;
        writeln!(
            f,
            "wall: {:.6}s, decoded: {} samples, rebuilds: {}, result: {} series / {} points",
            self.wall_seconds,
            self.samples_decoded,
            self.window_rebuilds,
            self.series_returned(),
            self.points_returned(),
        )
    }
}

impl QueryEngine {
    /// Explains how `query` would be evaluated over `[start_ms, end_ms]`
    /// without running it: the plan tree with per-node series counts and the
    /// streamed-vs-fallback choice (planning resolves selectors against the
    /// index, so this is cheap but not free).
    ///
    /// # Errors
    ///
    /// Returns the parse error; explaining never evaluates, so evaluation
    /// errors surface as a fallback reason instead.
    pub fn explain(&self, query: &str, start_ms: u64, end_ms: u64) -> Result<Explain, QueryError> {
        let expr = parse(query)?;
        Ok(self.explain_expr(&expr, start_ms, end_ms))
    }

    /// [`QueryEngine::explain`] over an already-parsed expression.
    pub fn explain_expr(&self, expr: &Expr, start_ms: u64, end_ms: u64) -> Explain {
        let choice =
            match stream::plan_or_reason(self.db(), self.lookback_ms(), expr, start_ms, end_ms) {
                Ok(_) => PlanChoice::Streamed,
                Err(reason) => PlanChoice::FallbackPerStep { reason },
            };
        let (root, _) = annotate(self.db(), expr);
        Explain { query: expr.to_string(), choice, root }
    }

    /// Runs `query` over `[start_ms, end_ms]` at `step_ms` like
    /// [`QueryEngine::range_query`] and reports the plan together with what
    /// the run actually did (wall time, samples decoded, window rebuilds).
    /// Feeds the `teemon_query_*` probes exactly like a normal range query.
    ///
    /// # Errors
    ///
    /// Returns the parse error or the evaluation error.
    pub fn analyze(
        &self,
        query: &str,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> Result<Analyze, QueryError> {
        let expr = parse(query)?;
        let explain = self.explain_expr(&expr, start_ms, end_ms);
        let (result, run) = self.range_with_run(&expr, start_ms, end_ms, step_ms)?;
        Ok(Analyze {
            explain,
            wall_seconds: run.wall_seconds,
            samples_decoded: run.samples_decoded,
            window_rebuilds: run.window_rebuilds,
            result,
        })
    }
}

/// Output identity of one series at explain time.
type Key = (Option<String>, Labels);

/// Annotates `expr` bottom-up: each node's label, the series keys it
/// produces (mirroring the evaluator's output identities), and its children.
fn annotate(db: &TimeSeriesDb, expr: &Expr) -> (PlanNode, Vec<Key>) {
    match expr {
        Expr::Number(n) => {
            (node(format!("scalar {n}"), 1, Vec::new()), vec![(None, Labels::new())])
        }
        Expr::Selector(selector) => {
            let keys: Vec<Key> = db
                .select(selector)
                .iter()
                .map(|s| (Some(s.name().to_string()), s.to_labels()))
                .collect();
            (node(format!("selector {selector}"), keys.len(), Vec::new()), keys)
        }
        Expr::Range { selector, window_ms } => {
            let keys: Vec<Key> = db
                .select(selector)
                .iter()
                .map(|s| (Some(s.name().to_string()), s.to_labels()))
                .collect();
            let label = format!("range {selector} over {} windows", format_duration_ms(*window_ms));
            (node(label, keys.len(), Vec::new()), keys)
        }
        Expr::Call { func, param, arg } => {
            let (child, child_keys) = annotate(db, arg);
            // Functions drop the metric name (PromQL semantics).
            let keys: Vec<Key> = child_keys.into_iter().map(|(_, labels)| (None, labels)).collect();
            let label = match param {
                Some(p) => format!("{func}({p}, ·)"),
                None => format!("{func}(·)"),
            };
            (node(label, keys.len(), vec![child]), keys)
        }
        Expr::Aggregate { op, grouping, expr } => {
            let (child, child_keys) = annotate(db, expr);
            let mut groups: Vec<Labels> =
                child_keys.iter().map(|(_, labels)| grouping.key_for(labels)).collect();
            groups.sort();
            groups.dedup();
            let keys: Vec<Key> = groups.into_iter().map(|labels| (None, labels)).collect();
            let label = match grouping {
                crate::ast::Grouping::None => format!("{}(·)", aggregate_op_name(*op)),
                _ => format!("{} {grouping} (·)", aggregate_op_name(*op)),
            };
            (node(label, keys.len(), vec![child]), keys)
        }
        Expr::Binary { op, lhs, rhs } => {
            let (left, left_keys) = annotate(db, lhs);
            let (right, right_keys) = annotate(db, rhs);
            let left_scalar = matches!(&**lhs, Expr::Number(_)) || is_const(lhs);
            let right_scalar = matches!(&**rhs, Expr::Number(_)) || is_const(rhs);
            // Mirror the evaluator's matching: scalar sides broadcast,
            // vector-vector matches one-to-one on identical label sets.
            let keys: Vec<Key> = if left_scalar && right_scalar {
                vec![(None, Labels::new())]
            } else if left_scalar || right_scalar {
                let vector = if left_scalar { right_keys } else { left_keys };
                if op.is_comparison() {
                    vector // comparisons filter, keeping identities
                } else {
                    vector.into_iter().map(|(_, labels)| (None, labels)).collect()
                }
            } else {
                left_keys
                    .into_iter()
                    .filter(|(_, labels)| right_keys.iter().any(|(_, r)| r == labels))
                    .map(
                        |(name, labels)| {
                            if op.is_comparison() {
                                (name, labels)
                            } else {
                                (None, labels)
                            }
                        },
                    )
                    .collect()
            };
            (node(format!("binary {op}"), keys.len(), vec![left, right]), keys)
        }
    }
}

/// `true` when the subtree folds to a constant (pure numbers and arithmetic).
fn is_const(expr: &Expr) -> bool {
    match expr {
        Expr::Number(_) => true,
        Expr::Binary { lhs, rhs, .. } => is_const(lhs) && is_const(rhs),
        _ => false,
    }
}

fn node(label: String, series: usize, children: Vec<PlanNode>) -> PlanNode {
    PlanNode { label, series, children }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..20u64 {
            for node in ["n1", "n2", "n3"] {
                db.append(
                    "requests_total",
                    &Labels::from_pairs([("node", node)]),
                    t * 5_000,
                    t as f64 * 10.0,
                );
            }
        }
        db
    }

    #[test]
    fn explain_reports_streamed_choice_and_series_counts() {
        let engine = QueryEngine::new(db());
        let explain =
            engine.explain("sum by (node) (rate(requests_total[30s]))", 0, 95_000).unwrap();
        assert_eq!(explain.choice, PlanChoice::Streamed);
        assert_eq!(explain.root.series, 3, "three nodes, grouped by node");
        assert_eq!(explain.root.children.len(), 1);
        let rate = &explain.root.children[0];
        assert_eq!(rate.series, 3);
        assert_eq!(rate.children[0].series, 3, "selector matches 3 series");
        let rendered = explain.to_string();
        assert!(rendered.contains("[streamed]"), "{rendered}");
        assert!(rendered.contains("rate(·)"), "{rendered}");
    }

    #[test]
    fn explain_reports_fallback_reasons() {
        let engine = QueryEngine::new(db());
        let explain = engine.explain("requests_total + requests_total", 0, 95_000).unwrap();
        let PlanChoice::FallbackPerStep { reason } = explain.choice else {
            panic!("vector-vector must fall back");
        };
        assert!(reason.contains("vector-vector"), "{reason}");
        // Vector-vector matching on identical label sets: 3 ∩ 3 = 3.
        assert_eq!(explain.root.series, 3);
        assert!(explain.to_string().contains("per-step fallback"), "{}", explain.to_string());
    }

    #[test]
    fn analyze_runs_and_reports_the_result_shape() {
        let engine = QueryEngine::new(db());
        let analyze = engine
            .analyze("sum by (node) (rate(requests_total[30s]))", 30_000, 90_000, 15_000)
            .unwrap();
        assert_eq!(analyze.explain.choice, PlanChoice::Streamed);
        assert_eq!(analyze.series_returned(), 3);
        assert_eq!(analyze.points_returned(), 3 * 5, "steps at 30..=90 s");
        assert!(analyze.wall_seconds > 0.0);
        assert!(analyze.samples_decoded > 0);
        let rendered = analyze.to_string();
        assert!(rendered.contains("decoded"), "{rendered}");
    }

    #[test]
    fn parse_errors_propagate() {
        let engine = QueryEngine::new(db());
        assert!(engine.explain("rate(", 0, 1).is_err());
        assert!(engine.analyze("rate(", 0, 1, 1).is_err());
    }
}
