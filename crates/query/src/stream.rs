//! Streaming range-query evaluation.
//!
//! The per-step evaluator ([`crate::QueryEngine::range_per_step`]) re-runs
//! the whole instant pipeline at every step: a 1 h / 15 s-step
//! `rate(m[5m])` query extracts and re-aggregates ~240 overlapping 5 m
//! windows per series, so its cost is `O(steps × window)`.  This module
//! replaces that with per-series **sliding-window state machines**: two
//! monotone cursors (window entry and exit) advance across the steps, every
//! sample is admitted once and evicted once, and the window aggregates update
//! incrementally — `O(samples touched)` overall.
//!
//! * `sum`/`avg` (and the reset-adjusted pair sum behind `rate`/`increase`)
//!   are running deltas: a sample's contribution is added when it enters and
//!   subtracted when it leaves.  Non-finite values are counted, not summed,
//!   so a `NaN`/`±inf` passing through the window cannot poison it forever.
//! * `min`/`max` use monotonic deques (amortised O(1) per sample).
//! * `count`/`last_over_time` (and instant selectors, which are
//!   `last_over_time` over the staleness lookback) read the window ends.
//! * `quantile_over_time` re-sorts, but into one scratch buffer reused per
//!   series instead of a fresh allocation per step.
//!
//! On top of the window layer, the plan composes the vector-shaped operators
//! without ever materialising per-step `Value::Vector`s: every node's output
//! universe (its series names/labels) is resolved **once** at plan time, and
//! per step only a slab of `Option<f64>` slots moves between nodes.  Grouped
//! aggregations fold child slots into group accumulators through a
//! slot→group table computed once; arithmetic/comparison against constants
//! maps slots in place.
//!
//! [`plan`] returns `None` for expressions outside this shape (vector-vector
//! binary operations, aggregations over scalars, type errors, output-key
//! collisions after name-dropping); the caller falls back to the per-step
//! path, which also remains the equivalence oracle — see
//! [`ranges_equivalent`] and the `TEEMON_VERIFY_STREAM` cross-check in
//! [`crate::QueryEngine::range`].  Streamed results match the oracle exactly
//! except for floating-point association in the running sums, which can
//! differ in the last bits; the sums monitor their own accumulated error
//! bound and rebuild exactly from the live window when cancellation (e.g. a
//! huge sample leaving the window) would make the drift visible.

use std::collections::VecDeque;

use teemon_metrics::Labels;
use teemon_tsdb::query::{quantile_of_sorted, reset_adjusted_delta};
use teemon_tsdb::{AggregateOp, OwnedSampleCursor, TimeSeriesDb};

use crate::ast::{BinOp, Expr, RangeFunc};
use crate::eval::RangeSeries;

/// Work counters of one plan execution, totalled across every window
/// machine when [`StreamPlan::run_with_stats`] finishes.  These feed the
/// `teemon_query_samples_decoded_total` / `teemon_query_window_rebuilds_total`
/// probes and `QueryEngine::analyze`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Chunk samples decoded (each stored sample is admitted exactly once).
    pub samples_decoded: u64,
    /// Exact window-aggregate rebuilds triggered by numeric-drift guards.
    pub window_rebuilds: u64,
}

/// Output identity of one streamed series, resolved once at plan time.
type SeriesKey = (Option<String>, Labels);

/// A compiled streaming evaluation: the node tree plus the output universe.
///
/// Built by [`plan`]; consumed by [`StreamPlan::run`].  Selectors were
/// already resolved against the storage index during planning, so running
/// the plan touches no locks and no index — only the immutable `Arc`-shared
/// chunk snapshots each window machine's cursor walks.
pub struct StreamPlan {
    kind: PlanKind,
}

enum PlanKind {
    /// A constant scalar expression: one label-less series, present at every
    /// step (what the per-step path produces for scalar queries).
    Scalar(f64),
    Vector {
        root: Node,
        keys: Vec<SeriesKey>,
    },
}

impl StreamPlan {
    /// Evaluates the plan over `[start_ms, end_ms]` at `step_ms` intervals.
    /// The step grid is identical to the per-step evaluator's (`start`,
    /// `start + step`, … up to and including the last step `<= end`).
    pub fn run(self, start_ms: u64, end_ms: u64, step_ms: u64) -> Vec<RangeSeries> {
        self.run_with_stats(start_ms, end_ms, step_ms).0
    }

    /// [`StreamPlan::run`], also returning the work counters totalled across
    /// every window machine of the plan.
    pub fn run_with_stats(
        self,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> (Vec<RangeSeries>, RunStats) {
        let step_ms = step_ms.max(1);
        match self.kind {
            PlanKind::Scalar(value) => {
                let mut points = Vec::new();
                for_each_step(start_ms, end_ms, step_ms, |t| points.push((t, value)));
                (
                    vec![RangeSeries { name: None, labels: Labels::new(), points }],
                    RunStats::default(),
                )
            }
            PlanKind::Vector { mut root, keys } => {
                let mut out = vec![None; keys.len()];
                let mut points: Vec<Vec<(u64, f64)>> = vec![Vec::new(); keys.len()];
                for_each_step(start_ms, end_ms, step_ms, |t| {
                    root.step(t, &mut out);
                    for (value, series_points) in out.iter().zip(points.iter_mut()) {
                        if let Some(v) = value {
                            series_points.push((t, *v));
                        }
                    }
                });
                let mut stats = RunStats::default();
                root.collect_stats(&mut stats);
                let mut series: Vec<RangeSeries> = keys
                    .into_iter()
                    .zip(points)
                    .filter(|(_, points)| !points.is_empty())
                    .map(|((name, labels), points)| RangeSeries { name, labels, points })
                    .collect();
                // The per-step accumulator returns series sorted by key.
                series.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
                (series, stats)
            }
        }
    }
}

/// Walks the same step grid as the per-step evaluator (overflow-safe at the
/// top of the `u64` range).
fn for_each_step(start_ms: u64, end_ms: u64, step_ms: u64, mut f: impl FnMut(u64)) {
    let mut t = start_ms;
    loop {
        f(t);
        let Some(next) = t.checked_add(step_ms) else { break };
        if next > end_ms {
            break;
        }
        t = next;
    }
}

/// Compiles `expr` into a streaming plan, or `None` when the expression
/// needs the per-step fallback.  `lookback_ms` is the engine's instant-
/// selector staleness window; `start_ms`/`end_ms` bound the sample range the
/// window machines will ever touch.
pub fn plan(
    db: &TimeSeriesDb,
    lookback_ms: u64,
    expr: &Expr,
    start_ms: u64,
    end_ms: u64,
) -> Option<StreamPlan> {
    plan_or_reason(db, lookback_ms, expr, start_ms, end_ms).ok()
}

/// [`plan`], reporting *why* an expression stays on the per-step fallback.
/// The reason strings surface in `QueryEngine::explain` plans and make the
/// `teemon_query_range_total{mode="fallback"}` counter actionable.
pub fn plan_or_reason(
    db: &TimeSeriesDb,
    lookback_ms: u64,
    expr: &Expr,
    start_ms: u64,
    end_ms: u64,
) -> Result<StreamPlan, &'static str> {
    if let Some(value) = fold_const(expr) {
        return Ok(StreamPlan { kind: PlanKind::Scalar(value) });
    }
    let (root, keys) = plan_vector(db, lookback_ms, expr, start_ms, end_ms)?;
    // Two output series with the same key would be merged (interleaved) by
    // the per-step accumulator; that shape stays on the fallback path.
    let mut sorted: Vec<&SeriesKey> = keys.iter().collect();
    sorted.sort();
    if sorted.iter().zip(sorted.iter().skip(1)).any(|(a, b)| a == b) {
        return Err("output series keys collide after name-dropping");
    }
    Ok(StreamPlan { kind: PlanKind::Vector { root, keys } })
}

/// Evaluates pure-number subtrees to their constant value.
fn fold_const(expr: &Expr) -> Option<f64> {
    match expr {
        Expr::Number(n) => Some(*n),
        Expr::Binary { op, lhs, rhs } => Some(op.apply(fold_const(lhs)?, fold_const(rhs)?)),
        _ => None,
    }
}

fn plan_vector(
    db: &TimeSeriesDb,
    lookback_ms: u64,
    expr: &Expr,
    start_ms: u64,
    end_ms: u64,
) -> Result<(Node, Vec<SeriesKey>), &'static str> {
    match expr {
        // An instant selector is `last_over_time` over the lookback window,
        // with the metric name kept.
        Expr::Selector(selector) => {
            let window_ms = lookback_ms;
            let mut keys = Vec::new();
            let mut machines = Vec::new();
            for snapshot in db.select(selector) {
                keys.push((Some(snapshot.name().to_string()), snapshot.to_labels()));
                machines.push(WindowMachine::new(
                    snapshot.owned_cursor(start_ms.saturating_sub(window_ms), end_ms),
                    window_ms,
                    WindowFunc::Last,
                ));
            }
            Ok((Node::Windows { machines }, keys))
        }
        // A range function over a range selector: one window machine per
        // series; the name is dropped (function semantics).
        Expr::Call { func, param, arg } => {
            let Expr::Range { selector, window_ms } = &**arg else {
                return Err("range function over a non-range argument (type error)");
            };
            if let Some(q) = param {
                if !(0.0..=1.0).contains(q) {
                    // The fallback reports InvalidQuantile.
                    return Err("quantile parameter outside [0, 1] (type error)");
                }
            }
            let wf = match func {
                RangeFunc::Rate => WindowFunc::Rate,
                RangeFunc::Increase => WindowFunc::Increase,
                RangeFunc::AvgOverTime => WindowFunc::Avg,
                RangeFunc::MinOverTime => WindowFunc::Min,
                RangeFunc::MaxOverTime => WindowFunc::Max,
                RangeFunc::SumOverTime => WindowFunc::Sum,
                RangeFunc::CountOverTime => WindowFunc::Count,
                RangeFunc::QuantileOverTime => WindowFunc::Quantile(param.unwrap_or(0.5)),
                RangeFunc::LastOverTime => WindowFunc::Last,
            };
            let mut keys = Vec::new();
            let mut machines = Vec::new();
            for snapshot in db.select(selector) {
                keys.push((None, snapshot.to_labels()));
                machines.push(WindowMachine::new(
                    snapshot.owned_cursor(start_ms.saturating_sub(*window_ms), end_ms),
                    *window_ms,
                    wf,
                ));
            }
            Ok((Node::Windows { machines }, keys))
        }
        // Grouped aggregation: the slot→group table and the group label sets
        // are fixed by the child's (plan-time) universe.
        Expr::Aggregate { op, grouping, expr } => {
            let (child, child_keys) = plan_vector(db, lookback_ms, expr, start_ms, end_ms)?;
            let group_labels: Vec<Labels> =
                child_keys.iter().map(|(_, labels)| grouping.key_for(labels)).collect();
            let mut unique = group_labels.clone();
            unique.sort();
            unique.dedup();
            let slot_group: Vec<usize> = group_labels
                .iter()
                // teemon-verify: allow(no-unwrap): invariant — `unique` is a sorted dedup of these exact labels
                .map(|labels| unique.binary_search(labels).expect("deduped from the same set"))
                .collect();
            let keys: Vec<SeriesKey> = unique.into_iter().map(|labels| (None, labels)).collect();
            let scratch = vec![None; child_keys.len()];
            let groups = keys.len();
            Ok((
                Node::Group {
                    input: Box::new(child),
                    op: *op,
                    slot_group,
                    scratch,
                    acc_value: vec![0.0; groups],
                    acc_count: vec![0; groups],
                },
                keys,
            ))
        }
        // Arithmetic / comparison against a constant side (either order).
        // Arithmetic drops the metric name; comparisons filter and keep it.
        Expr::Binary { op, lhs, rhs } => {
            let (scalar, vector, scalar_left) = if let Some(s) = fold_const(lhs) {
                (s, rhs, true)
            } else if let Some(s) = fold_const(rhs) {
                (s, lhs, false)
            } else {
                return Err("vector-vector matching stays on the per-step path");
            };
            let (child, child_keys) = plan_vector(db, lookback_ms, vector, start_ms, end_ms)?;
            let keys = if op.is_comparison() {
                child_keys
            } else {
                child_keys.into_iter().map(|(_, labels)| (None, labels)).collect()
            };
            let scratch = vec![None; keys.len()];
            Ok((Node::Map { input: Box::new(child), op: *op, scalar, scalar_left, scratch }, keys))
        }
        // `Number` is handled by `fold_const`; a bare `Range` is a type
        // error for range queries — the fallback reports it.
        Expr::Range { .. } => Err("bare range selector is not rangeable (type error)"),
        _ => Err("expression shape outside the streaming planner"),
    }
}

/// One operator of the streaming pipeline.  `step` fills `out` (one slot per
/// output series) with each series' value at `t`, `None` meaning absent.
enum Node {
    /// The leaves: per-series sliding-window machines over storage cursors.
    Windows { machines: Vec<WindowMachine> },
    /// Vector ⇄ constant arithmetic or filtering comparison.
    Map { input: Box<Node>, op: BinOp, scalar: f64, scalar_left: bool, scratch: Vec<Option<f64>> },
    /// Grouped cross-series aggregation via a plan-time slot→group table.
    Group {
        input: Box<Node>,
        op: AggregateOp,
        slot_group: Vec<usize>,
        scratch: Vec<Option<f64>>,
        acc_value: Vec<f64>,
        acc_count: Vec<u32>,
    },
}

impl Node {
    /// Totals the window machines' work counters into `stats`.
    fn collect_stats(&self, stats: &mut RunStats) {
        match self {
            Node::Windows { machines } => {
                for machine in machines {
                    stats.samples_decoded += machine.decoded;
                    stats.window_rebuilds += machine.rebuilds;
                }
            }
            Node::Map { input, .. } => input.collect_stats(stats),
            Node::Group { input, .. } => input.collect_stats(stats),
        }
    }

    fn step(&mut self, t: u64, out: &mut [Option<f64>]) {
        match self {
            Node::Windows { machines } => {
                for (machine, slot) in machines.iter_mut().zip(out.iter_mut()) {
                    *slot = machine.step(t);
                }
            }
            Node::Map { input, op, scalar, scalar_left, scratch } => {
                input.step(t, scratch);
                for (value, slot) in scratch.iter().zip(out.iter_mut()) {
                    *slot = value.and_then(|v| {
                        let (lhs, rhs) = if *scalar_left { (*scalar, v) } else { (v, *scalar) };
                        if op.is_comparison() {
                            // Comparisons filter: the sample survives as-is.
                            op.compare(lhs, rhs).then_some(v)
                        } else {
                            Some(op.apply(lhs, rhs))
                        }
                    });
                }
            }
            Node::Group { input, op, slot_group, scratch, acc_value, acc_count } => {
                input.step(t, scratch);
                let init = match op {
                    AggregateOp::Min => f64::INFINITY,
                    AggregateOp::Max => f64::NEG_INFINITY,
                    _ => 0.0,
                };
                acc_value.fill(init);
                acc_count.fill(0);
                // Fold child slots in order: the same accumulation order (and
                // therefore bit-identical floats) as the per-step aggregator.
                for (value, &group) in scratch.iter().zip(slot_group.iter()) {
                    let Some(v) = value else { continue };
                    let (Some(count), Some(acc)) =
                        (acc_count.get_mut(group), acc_value.get_mut(group))
                    else {
                        continue; // unreachable: groups were built from these slots
                    };
                    *count += 1;
                    match op {
                        AggregateOp::Sum | AggregateOp::Avg => *acc += v,
                        AggregateOp::Min => *acc = acc.min(*v),
                        AggregateOp::Max => *acc = acc.max(*v),
                        AggregateOp::Count => {}
                    }
                }
                for ((slot, value), count) in
                    out.iter_mut().zip(acc_value.iter()).zip(acc_count.iter())
                {
                    *slot = (*count > 0).then(|| match op {
                        AggregateOp::Sum | AggregateOp::Min | AggregateOp::Max => *value,
                        AggregateOp::Avg => *value / f64::from(*count),
                        AggregateOp::Count => f64::from(*count),
                    });
                }
            }
        }
    }
}

/// The aggregate a window machine maintains.
#[derive(Clone, Copy)]
enum WindowFunc {
    Rate,
    Increase,
    Sum,
    Avg,
    Min,
    Max,
    Count,
    Last,
    Quantile(f64),
}

/// A running sum that tracks non-finite contributions by *count* instead of
/// folding them into the float, so add/subtract streams cannot get stuck at
/// `NaN`/`±inf` after the offending sample leaves the window.  `value()`
/// reproduces what a fresh left-to-right sum of the window would produce.
///
/// Incremental add/subtract accumulates rounding error — catastrophically so
/// when a huge-magnitude sample absorbs smaller ones and then leaves the
/// window.  The sum therefore tracks the largest magnitude its float ever
/// reached and the number of operations applied; [`RunningSum::drifted`]
/// reports when the accumulated error bound is no longer negligible against
/// the current value (or simply after a few thousand operations), and the
/// window machine responds by rebuilding the sum exactly from the live
/// window contents — O(window), amortised away by the rebuild period.
#[derive(Debug, Default, Clone)]
struct RunningSum {
    finite: f64,
    nan: u32,
    pos_inf: u32,
    neg_inf: u32,
    /// Largest |finite| the running float has reached since the last rebuild.
    peak: f64,
    /// Add/subtract operations since the last rebuild.
    ops: u32,
}

/// Rebuild at the latest after this many incremental operations: keeps the
/// worst-case relative drift around `PERIOD · ε ≈ 1e-12` of the peak.
const REBUILD_PERIOD: u32 = 4096;

impl RunningSum {
    fn add(&mut self, v: f64) {
        if v.is_nan() {
            self.nan += 1;
        } else if v == f64::INFINITY {
            self.pos_inf += 1;
        } else if v == f64::NEG_INFINITY {
            self.neg_inf += 1;
        } else {
            self.finite += v;
            self.peak = self.peak.max(self.finite.abs());
            self.ops += 1;
        }
    }

    fn sub(&mut self, v: f64) {
        if v.is_nan() {
            self.nan -= 1;
        } else if v == f64::INFINITY {
            self.pos_inf -= 1;
        } else if v == f64::NEG_INFINITY {
            self.neg_inf -= 1;
        } else {
            self.finite -= v;
            self.peak = self.peak.max(self.finite.abs());
            self.ops += 1;
        }
    }

    /// `true` when the error accumulated by incremental updates may no
    /// longer be negligible relative to the current value (cancellation),
    /// when the accumulator itself stopped being finite (overflow — the
    /// add/subtract stream can never bring it back, only a rebuild can), or
    /// when the periodic rebuild is due.
    fn drifted(&self) -> bool {
        !self.finite.is_finite()
            || self.ops >= REBUILD_PERIOD
            || f64::from(self.ops) * f64::EPSILON * self.peak > self.finite.abs() * 1e-10
    }

    fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            f64::NAN
        } else if self.pos_inf > 0 {
            f64::INFINITY
        } else if self.neg_inf > 0 {
            f64::NEG_INFINITY
        } else {
            self.finite
        }
    }
}

/// The per-series sliding-window state machine.
///
/// `source` is the window-entry cursor (each stored sample is decoded and
/// admitted exactly once); eviction pops the deque front as the window's
/// trailing edge passes it.  Both edges move monotonically with the query
/// step, which is what makes whole-range cost `O(samples touched)`.
struct WindowMachine {
    source: OwnedSampleCursor,
    /// The next sample read from `source` but not yet inside the window.
    pending: Option<(u64, f64)>,
    window: VecDeque<(u64, f64)>,
    window_ms: u64,
    func: WindowFunc,
    /// Running Σvalue (for `sum`/`avg`).
    sum: RunningSum,
    /// Running Σ reset-adjusted pair deltas (for `rate`/`increase`).
    pairs: RunningSum,
    /// Monotonic deques holding (sequence, value); fronts are the window's
    /// min/max.  NaN samples are skipped — `f64::min`/`max` ignore them.
    min_deque: VecDeque<(u64, f64)>,
    max_deque: VecDeque<(u64, f64)>,
    /// Sequence numbers of the window front/next-pushed element, linking the
    /// monotonic deques to evictions.
    front_seq: u64,
    next_seq: u64,
    /// Reused sort buffer for `quantile_over_time`.
    scratch: Vec<f64>,
    /// Samples pulled from `source` (each stored sample decodes once).
    decoded: u64,
    /// Drift-guard rebuilds of the running sums.
    rebuilds: u64,
}

impl WindowMachine {
    fn new(source: OwnedSampleCursor, window_ms: u64, func: WindowFunc) -> Self {
        Self {
            source,
            pending: None,
            window: VecDeque::new(),
            window_ms,
            func,
            sum: RunningSum::default(),
            pairs: RunningSum::default(),
            min_deque: VecDeque::new(),
            max_deque: VecDeque::new(),
            front_seq: 0,
            next_seq: 0,
            scratch: Vec::new(),
            decoded: 0,
            rebuilds: 0,
        }
    }

    /// Advances the window to `[t - window_ms, t]` and evaluates the
    /// function over it; `None` when the function is undefined there.
    fn step(&mut self, t: u64) -> Option<f64> {
        // Entry edge: admit samples up to t.
        loop {
            let (ts, value) = match self.pending.take() {
                Some(sample) => sample,
                None => match self.source.next() {
                    Some(s) => {
                        self.decoded += 1;
                        (s.timestamp_ms, s.value)
                    }
                    None => break,
                },
            };
            if ts > t {
                self.pending = Some((ts, value));
                break;
            }
            self.push(ts, value);
        }
        // Exit edge: evict samples the trailing boundary passed.
        let window_start = t.saturating_sub(self.window_ms);
        while self.window.front().is_some_and(|&(ts, _)| ts < window_start) {
            self.pop_front();
        }
        self.evaluate()
    }

    fn push(&mut self, ts: u64, value: f64) {
        match self.func {
            WindowFunc::Sum | WindowFunc::Avg => self.sum.add(value),
            WindowFunc::Rate | WindowFunc::Increase => {
                if let Some(&(_, prev)) = self.window.back() {
                    self.pairs.add(reset_adjusted_delta(prev, value));
                }
            }
            WindowFunc::Min => {
                if !value.is_nan() {
                    while self.min_deque.back().is_some_and(|&(_, back)| back >= value) {
                        self.min_deque.pop_back();
                    }
                    self.min_deque.push_back((self.next_seq, value));
                }
            }
            WindowFunc::Max => {
                if !value.is_nan() {
                    while self.max_deque.back().is_some_and(|&(_, back)| back <= value) {
                        self.max_deque.pop_back();
                    }
                    self.max_deque.push_back((self.next_seq, value));
                }
            }
            WindowFunc::Count | WindowFunc::Last | WindowFunc::Quantile(_) => {}
        }
        self.window.push_back((ts, value));
        self.next_seq += 1;
    }

    fn pop_front(&mut self) {
        let Some((_, value)) = self.window.pop_front() else { return };
        let seq = self.front_seq;
        self.front_seq += 1;
        match self.func {
            WindowFunc::Sum | WindowFunc::Avg => self.sum.sub(value),
            WindowFunc::Rate | WindowFunc::Increase => {
                if let Some(&(_, next)) = self.window.front() {
                    self.pairs.sub(reset_adjusted_delta(value, next));
                }
            }
            WindowFunc::Min => {
                if self.min_deque.front().is_some_and(|&(front_seq, _)| front_seq == seq) {
                    self.min_deque.pop_front();
                }
            }
            WindowFunc::Max => {
                if self.max_deque.front().is_some_and(|&(front_seq, _)| front_seq == seq) {
                    self.max_deque.pop_front();
                }
            }
            WindowFunc::Count | WindowFunc::Last | WindowFunc::Quantile(_) => {}
        }
    }

    /// Recomputes the value sum exactly from the live window, in the same
    /// left-to-right order as a fresh per-step evaluation.
    fn rebuild_sum(&mut self) {
        let mut sum = RunningSum::default();
        for &(_, value) in &self.window {
            sum.add(value);
        }
        sum.ops = 0;
        sum.peak = sum.finite.abs();
        self.sum = sum;
        self.rebuilds += 1;
    }

    /// Recomputes the reset-adjusted pair sum exactly from the live window.
    fn rebuild_pairs(&mut self) {
        let mut pairs = RunningSum::default();
        let mut prev: Option<f64> = None;
        for &(_, value) in &self.window {
            if let Some(prev) = prev {
                pairs.add(reset_adjusted_delta(prev, value));
            }
            prev = Some(value);
        }
        pairs.ops = 0;
        pairs.peak = pairs.finite.abs();
        self.pairs = pairs;
        self.rebuilds += 1;
    }

    fn evaluate(&mut self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        match self.func {
            WindowFunc::Rate => {
                if self.window.len() < 2 {
                    return None;
                }
                if self.pairs.drifted() {
                    self.rebuild_pairs();
                }
                let (t0, t1) = match (self.window.front(), self.window.back()) {
                    (Some(&(t0, _)), Some(&(t1, _))) => (t0, t1),
                    _ => return None,
                };
                if t1 <= t0 {
                    return None;
                }
                Some(self.pairs.value() / ((t1 - t0) as f64 / 1000.0))
            }
            WindowFunc::Increase => (self.window.len() >= 2).then(|| {
                if self.pairs.drifted() {
                    self.rebuild_pairs();
                }
                self.pairs.value()
            }),
            WindowFunc::Sum => {
                if self.sum.drifted() {
                    self.rebuild_sum();
                }
                Some(self.sum.value())
            }
            WindowFunc::Avg => {
                if self.sum.drifted() {
                    self.rebuild_sum();
                }
                Some(self.sum.value() / self.window.len() as f64)
            }
            WindowFunc::Min => {
                Some(self.min_deque.front().map(|&(_, v)| v).unwrap_or(f64::INFINITY))
            }
            WindowFunc::Max => {
                Some(self.max_deque.front().map(|&(_, v)| v).unwrap_or(f64::NEG_INFINITY))
            }
            WindowFunc::Count => Some(self.window.len() as f64),
            WindowFunc::Last => self.window.back().map(|&(_, v)| v),
            WindowFunc::Quantile(q) => {
                self.scratch.clear();
                self.scratch.extend(self.window.iter().map(|&(_, v)| v));
                self.scratch.sort_by(|a, b| a.total_cmp(b));
                quantile_of_sorted(&self.scratch, q)
            }
        }
    }
}

/// `true` when two range results agree: identical series keys and step
/// grids, and per-point values equal up to floating-point re-association
/// (relative 1e-9, treating equal-sign infinities and NaN pairs as equal).
/// Used by the `TEEMON_VERIFY_STREAM` oracle cross-check and the
/// equivalence property tests.
pub fn ranges_equivalent(a: &[RangeSeries], b: &[RangeSeries]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.labels == y.labels
                && x.points.len() == y.points.len()
                && x.points
                    .iter()
                    .zip(&y.points)
                    .all(|(&(ta, va), &(tb, vb))| ta == tb && values_close(va, vb))
        })
}

fn values_close(a: f64, b: f64) -> bool {
    if a == b {
        return true; // covers equal finites and equal-sign infinities
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= scale * 1e-9 + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::QueryEngine;

    fn db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..50u64 {
            for (node, scale) in [("n1", 1.0), ("n2", 3.0)] {
                db.append(
                    "requests_total",
                    &Labels::from_pairs([("node", node)]),
                    t * 5_000,
                    t as f64 * 10.0 * scale,
                );
                db.append(
                    "queue_depth",
                    &Labels::from_pairs([("node", node)]),
                    t * 5_000,
                    ((t as f64) * 0.7).sin() * scale,
                );
            }
        }
        db
    }

    fn assert_streams_and_matches(query: &str, start: u64, end: u64, step: u64) {
        let engine = QueryEngine::new(db());
        let expr = parse(query).unwrap();
        let plan = plan(engine.db(), QueryEngine::DEFAULT_LOOKBACK_MS, &expr, start, end)
            .unwrap_or_else(|| panic!("`{query}` must stream"));
        let streamed = plan.run(start, end, step);
        let oracle = engine.range_per_step(&expr, start, end, step).unwrap();
        assert!(
            ranges_equivalent(&streamed, &oracle),
            "`{query}` diverged\nstreamed: {streamed:?}\noracle: {oracle:?}"
        );
    }

    #[test]
    fn window_functions_match_the_oracle() {
        for func in [
            "rate",
            "increase",
            "avg_over_time",
            "min_over_time",
            "max_over_time",
            "sum_over_time",
            "count_over_time",
            "last_over_time",
        ] {
            assert_streams_and_matches(&format!("{func}(requests_total[25s])"), 0, 245_000, 15_000);
            assert_streams_and_matches(&format!("{func}(queue_depth[1m])"), 30_000, 200_000, 7_000);
        }
        assert_streams_and_matches("quantile_over_time(0.9, queue_depth[30s])", 0, 245_000, 5_000);
    }

    #[test]
    fn selectors_aggregations_and_arithmetic_match_the_oracle() {
        assert_streams_and_matches("requests_total", 0, 400_000, 15_000);
        assert_streams_and_matches("sum by (node) (rate(requests_total[30s]))", 0, 245_000, 15_000);
        assert_streams_and_matches("max without (node) (queue_depth)", 0, 245_000, 10_000);
        assert_streams_and_matches("avg(rate(requests_total[20s]))", 0, 245_000, 15_000);
        assert_streams_and_matches("queue_depth * 2 + 1", 0, 245_000, 15_000);
        assert_streams_and_matches("100 - sum(queue_depth)", 0, 245_000, 15_000);
        assert_streams_and_matches("queue_depth > 0.5", 0, 245_000, 5_000);
        assert_streams_and_matches(
            "2 < sum by (node) (rate(requests_total[30s]))",
            0,
            245_000,
            15_000,
        );
        assert_streams_and_matches("4 + 4 * 2", 0, 30_000, 5_000);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let database = db();
        let streams = |q: &str| plan(&database, 300_000, &parse(q).unwrap(), 0, 100_000).is_some();
        // Vector-vector matching, type errors and invalid parameters are the
        // per-step path's business.
        assert!(!streams("requests_total + queue_depth"));
        assert!(!streams("rate(requests_total)"));
        assert!(!streams("sum(2)"));
        assert!(!streams("quantile_over_time(1.5, queue_depth[30s])"));
        assert!(!streams("requests_total[30s]"));
        // A name-dropping function over two metrics with identical label sets
        // would collide on the output key: fallback.
        let dup = TimeSeriesDb::new();
        let labels = Labels::from_pairs([("node", "n1")]);
        for t in 0..10u64 {
            dup.append("metric_a", &labels, t * 1000, t as f64);
            dup.append("metric_b", &labels, t * 1000, t as f64 * 2.0);
        }
        assert!(
            plan(&dup, 300_000, &parse("rate({node=\"n1\"}[10s])").unwrap(), 0, 9_000).is_none()
        );
        // But the same selector with names kept streams fine.
        assert!(plan(&dup, 300_000, &parse("{node=\"n1\"}").unwrap(), 0, 9_000).is_some());
    }

    #[test]
    fn running_sums_recover_from_catastrophic_cancellation() {
        // A huge sample absorbs its small neighbours in the running float;
        // once it leaves the window the sum must rebuild exactly, not stay
        // stuck at the absorbed remainder.
        let db = TimeSeriesDb::new();
        for (t, v) in [(0u64, 1e300), (1_000, 1.0), (2_000, 2.0), (3_000, 3.0), (4_000, 4.0)] {
            db.append("m", &Labels::new(), t, v);
        }
        let engine = QueryEngine::new(db.clone());
        for query in
            ["sum_over_time(m[2s])", "avg_over_time(m[2s])", "increase(m[2s])", "rate(m[2s])"]
        {
            let expr = parse(query).unwrap();
            let streamed = plan(&db, 300_000, &expr, 0, 4_000).unwrap().run(0, 4_000, 1_000);
            let oracle = engine.range_per_step(&expr, 0, 4_000, 1_000).unwrap();
            assert!(
                ranges_equivalent(&streamed, &oracle),
                "`{query}`\nstreamed: {streamed:?}\noracle: {oracle:?}"
            );
        }
        // Spot-check the headline case: sum over [2s,3s] and [3s,4s] windows.
        let expr = parse("sum_over_time(m[1s])").unwrap();
        let streamed = plan(&db, 300_000, &expr, 0, 4_000).unwrap().run(0, 4_000, 1_000);
        assert_eq!(streamed[0].points[3], (3_000, 5.0));
        assert_eq!(streamed[0].points[4], (4_000, 7.0));

        // Accumulator overflow: two near-max samples push the running float
        // to +inf (matching the oracle while they are in the window); the
        // sum must rebuild back to finite once they leave rather than stay
        // pinned at inf.
        let overflow = TimeSeriesDb::new();
        for (t, v) in [(0u64, 1e308), (1_000, 1e308), (2_000, 5.0), (3_000, 6.0)] {
            overflow.append("m", &Labels::new(), t, v);
        }
        let engine = QueryEngine::new(overflow.clone());
        for query in ["sum_over_time(m[1s])", "avg_over_time(m[2s])", "increase(m[1s])"] {
            let expr = parse(query).unwrap();
            let streamed = plan(&overflow, 300_000, &expr, 0, 3_000).unwrap().run(0, 3_000, 1_000);
            let oracle = engine.range_per_step(&expr, 0, 3_000, 1_000).unwrap();
            assert!(
                ranges_equivalent(&streamed, &oracle),
                "`{query}`\nstreamed: {streamed:?}\noracle: {oracle:?}"
            );
        }
        let summed = engine.range_query("sum_over_time(m[1s])", 0, 3_000, 1_000).unwrap();
        assert_eq!(summed[0].points[3], (3_000, 11.0), "must recover from inf");
    }

    #[test]
    fn running_sums_recover_from_non_finite_values() {
        let db = TimeSeriesDb::new();
        let values = [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 4.0, 5.0, 6.0];
        for (t, v) in values.iter().enumerate() {
            db.append("weird", &Labels::new(), t as u64 * 1_000, *v);
        }
        let engine = QueryEngine::new(db.clone());
        for query in [
            "sum_over_time(weird[2s])",
            "avg_over_time(weird[3s])",
            "min_over_time(weird[2s])",
            "max_over_time(weird[2s])",
            "increase(weird[2s])",
        ] {
            let expr = parse(query).unwrap();
            let plan = plan(&db, 300_000, &expr, 0, 8_000).unwrap();
            let streamed = plan.run(0, 8_000, 1_000);
            let oracle = engine.range_per_step(&expr, 0, 8_000, 1_000).unwrap();
            assert!(
                ranges_equivalent(&streamed, &oracle),
                "`{query}`\nstreamed: {streamed:?}\noracle: {oracle:?}"
            );
        }
    }
}
