//! Recursive-descent parser from TeeQL text to [`Expr`].

use teemon_tsdb::{LabelMatch, Selector};

use crate::ast::{aggregate_op_from_name, BinOp, Expr, Grouping, RangeFunc};
use crate::lexer::{lex, ParseError, Spanned, Token};

/// Parses a TeeQL expression.
///
/// # Errors
///
/// Returns a [`ParseError`] with the character position and a description of
/// what was expected.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = lex(input)?;
    let end = input.chars().count();
    let mut parser = Parser { tokens, index: 0, end };
    let expr = parser.expression()?;
    if let Some(extra) = parser.peek() {
        return Err(ParseError::new(
            extra.pos,
            format!("unexpected {} after complete expression", extra.token.describe()),
        ));
    }
    Ok(expr)
}

impl std::str::FromStr for Expr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    index: usize,
    /// Character length of the input, reported as the position of
    /// unexpected-end errors.
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.index)
    }

    fn next(&mut self) -> Option<Spanned> {
        let token = self.tokens.get(self.index).cloned();
        if token.is_some() {
            self.index += 1;
        }
        token
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(s) if &s.token == token => Ok(()),
            Some(s) => Err(ParseError::new(
                s.pos,
                format!("expected {what}, found {}", s.token.describe()),
            )),
            None => Err(ParseError::new(self.end, format!("expected {what}, found end of input"))),
        }
    }

    fn unexpected_end(&self, what: &str) -> ParseError {
        ParseError::new(self.end, format!("expected {what}, found end of input"))
    }

    /// `expr := additive ((==|!=|>|<|>=|<=) additive)*`
    fn expression(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        while let Some(op) = self.peek_binop(&[
            (Token::EqEq, BinOp::Eq),
            (Token::Ne, BinOp::Ne),
            (Token::Ge, BinOp::Ge),
            (Token::Le, BinOp::Le),
            (Token::Gt, BinOp::Gt),
            (Token::Lt, BinOp::Lt),
        ]) {
            let rhs = self.additive()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        while let Some(op) =
            self.peek_binop(&[(Token::Plus, BinOp::Add), (Token::Minus, BinOp::Sub)])
        {
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) =
            self.peek_binop(&[(Token::Star, BinOp::Mul), (Token::Slash, BinOp::Div)])
        {
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn peek_binop(&mut self, table: &[(Token, BinOp)]) -> Option<BinOp> {
        let next = self.peek()?;
        let op = table.iter().find(|(t, _)| *t == next.token).map(|(_, op)| *op)?;
        self.index += 1;
        Some(op)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if let Some(Spanned { token: Token::Minus, pos }) = self.peek().cloned() {
            self.index += 1;
            match self.next() {
                Some(Spanned { token: Token::Number(n), .. }) => return Ok(Expr::Number(-n)),
                _ => {
                    return Err(ParseError::new(
                        pos,
                        "unary `-` is only supported on number literals",
                    ));
                }
            }
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        let Some(next) = self.peek().cloned() else {
            return Err(self.unexpected_end("an expression"));
        };
        match next.token {
            Token::Number(n) => {
                self.index += 1;
                Ok(Expr::Number(n))
            }
            Token::LParen => {
                self.index += 1;
                let inner = self.expression()?;
                self.expect(&Token::RParen, "`)` closing the parenthesised expression")?;
                Ok(inner)
            }
            Token::LBrace => {
                let selector = self.selector(None)?;
                self.maybe_range(selector)
            }
            Token::Ident(name) => {
                self.index += 1;
                // Aggregation keyword followed by `(`/`by`/`without`?
                if let Some(op) = aggregate_op_from_name(&name) {
                    if self.at_aggregation_start() {
                        return self.aggregation(op);
                    }
                }
                if let Some(func) = RangeFunc::from_name(&name) {
                    if matches!(self.peek(), Some(s) if s.token == Token::LParen) {
                        return self.call(func, next.pos);
                    }
                }
                let selector = self.selector(Some(name))?;
                self.maybe_range(selector)
            }
            other => Err(ParseError::new(
                next.pos,
                format!("expected an expression, found {}", other.describe()),
            )),
        }
    }

    fn at_aggregation_start(&self) -> bool {
        match self.peek() {
            Some(Spanned { token: Token::LParen, .. }) => true,
            Some(Spanned { token: Token::Ident(word), .. }) => word == "by" || word == "without",
            _ => false,
        }
    }

    /// `aggregation := op ('by'|'without' '(' label-list ')')? '(' expr ')'`,
    /// with the grouping clause also accepted after the body (Prometheus
    /// allows both positions; `Display` prints it before).
    fn aggregation(&mut self, op: teemon_tsdb::AggregateOp) -> Result<Expr, ParseError> {
        let mut grouping = self.grouping_clause()?;
        self.expect(&Token::LParen, "`(` opening the aggregation body")?;
        let expr = self.expression()?;
        self.expect(&Token::RParen, "`)` closing the aggregation body")?;
        if matches!(grouping, Grouping::None) {
            grouping = self.grouping_clause()?;
        }
        Ok(Expr::Aggregate { op, grouping, expr: Box::new(expr) })
    }

    fn grouping_clause(&mut self) -> Result<Grouping, ParseError> {
        let keyword = match self.peek() {
            Some(Spanned { token: Token::Ident(word), .. })
                if word == "by" || word == "without" =>
            {
                word.clone()
            }
            _ => return Ok(Grouping::None),
        };
        self.index += 1;
        self.expect(&Token::LParen, &format!("`(` after `{keyword}`"))?;
        let mut labels = Vec::new();
        loop {
            match self.next() {
                Some(Spanned { token: Token::RParen, .. }) => break,
                Some(Spanned { token: Token::Ident(label), .. }) => {
                    labels.push(label);
                    match self.next() {
                        Some(Spanned { token: Token::Comma, .. }) => {}
                        Some(Spanned { token: Token::RParen, .. }) => break,
                        Some(s) => {
                            return Err(ParseError::new(
                                s.pos,
                                format!(
                                    "expected `,` or `)` in grouping labels, found {}",
                                    s.token.describe()
                                ),
                            ));
                        }
                        None => return Err(self.unexpected_end("`)` closing the grouping labels")),
                    }
                }
                Some(s) => {
                    return Err(ParseError::new(
                        s.pos,
                        format!("expected a label name, found {}", s.token.describe()),
                    ));
                }
                None => return Err(self.unexpected_end("`)` closing the grouping labels")),
            }
        }
        Ok(if keyword == "by" { Grouping::By(labels) } else { Grouping::Without(labels) })
    }

    /// `call := func '(' (number ',')? expr ')'`
    fn call(&mut self, func: RangeFunc, func_pos: usize) -> Result<Expr, ParseError> {
        self.expect(&Token::LParen, "`(` opening the function call")?;
        let param = if func.takes_parameter() {
            let value = match self.next() {
                Some(Spanned { token: Token::Number(n), .. }) => n,
                Some(Spanned { token: Token::Minus, .. }) => match self.next() {
                    Some(Spanned { token: Token::Number(n), .. }) => -n,
                    _ => {
                        return Err(ParseError::new(
                            func_pos,
                            format!("{func} expects a scalar literal as its first argument"),
                        ));
                    }
                },
                _ => {
                    return Err(ParseError::new(
                        func_pos,
                        format!("{func} expects a scalar literal as its first argument"),
                    ));
                }
            };
            self.expect(&Token::Comma, &format!("`,` after the {func} parameter"))?;
            Some(value)
        } else {
            None
        };
        let arg = self.expression()?;
        self.expect(&Token::RParen, "`)` closing the function call")?;
        Ok(Expr::Call { func, param, arg: Box::new(arg) })
    }

    fn maybe_range(&mut self, selector: Selector) -> Result<Expr, ParseError> {
        if !matches!(self.peek(), Some(s) if s.token == Token::LBracket) {
            return Ok(Expr::Selector(selector));
        }
        self.index += 1;
        let window_ms = match self.next() {
            Some(Spanned { token: Token::Duration(ms), .. }) => ms,
            Some(s) => {
                return Err(ParseError::new(
                    s.pos,
                    format!("expected a duration like `5m`, found {}", s.token.describe()),
                ));
            }
            None => return Err(self.unexpected_end("a duration like `5m`")),
        };
        self.expect(&Token::RBracket, "`]` closing the range window")?;
        Ok(Expr::Range { selector, window_ms })
    }

    /// `selector := name? '{' matcher (',' matcher)* '}'` — `name` has already
    /// been consumed when `Some`.
    fn selector(&mut self, name: Option<String>) -> Result<Selector, ParseError> {
        let mut selector = Selector { name, matchers: Vec::new() };
        if !matches!(self.peek(), Some(s) if s.token == Token::LBrace) {
            return Ok(selector);
        }
        self.index += 1;
        loop {
            match self.next() {
                Some(Spanned { token: Token::RBrace, .. }) => break,
                Some(Spanned { token: Token::Ident(label), .. }) => {
                    let negated = match self.next() {
                        Some(Spanned { token: Token::Eq, .. }) => false,
                        Some(Spanned { token: Token::Ne, .. }) => true,
                        Some(s) => {
                            return Err(ParseError::new(
                                s.pos,
                                format!(
                                    "expected `=` or `!=` after label `{label}`, found {}",
                                    s.token.describe()
                                ),
                            ));
                        }
                        None => return Err(self.unexpected_end("`=` or `!=`")),
                    };
                    let value = match self.next() {
                        Some(Spanned { token: Token::Str(value), .. }) => value,
                        Some(s) => {
                            return Err(ParseError::new(
                                s.pos,
                                format!(
                                    "expected a quoted string value for label `{label}`, found {}",
                                    s.token.describe()
                                ),
                            ));
                        }
                        None => return Err(self.unexpected_end("a quoted string value")),
                    };
                    selector.matchers.push(match (negated, value.is_empty()) {
                        (false, _) => LabelMatch::Equals(label, value),
                        // `label!=""` canonicalises to the existence matcher.
                        (true, true) => LabelMatch::Exists(label),
                        (true, false) => LabelMatch::NotEquals(label, value),
                    });
                    match self.peek() {
                        Some(Spanned { token: Token::Comma, .. }) => {
                            self.index += 1;
                        }
                        Some(Spanned { token: Token::RBrace, .. }) => {}
                        Some(s) => {
                            return Err(ParseError::new(
                                s.pos,
                                format!(
                                    "expected `,` or `}}` in label matchers, found {}",
                                    s.token.describe()
                                ),
                            ));
                        }
                        None => return Err(self.unexpected_end("`}` closing the label matchers")),
                    }
                }
                Some(s) => {
                    return Err(ParseError::new(
                        s.pos,
                        format!("expected a label name, found {}", s.token.describe()),
                    ));
                }
                None => return Err(self.unexpected_end("`}` closing the label matchers")),
            }
        }
        Ok(selector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teemon_tsdb::AggregateOp;

    fn roundtrip(input: &str) -> Expr {
        let expr = parse(input).unwrap();
        let printed = expr.to_string();
        assert_eq!(parse(&printed).unwrap(), expr, "`{input}` → `{printed}` must reparse equal");
        expr
    }

    #[test]
    fn parses_the_documented_subset() {
        roundtrip("sgx_nr_free_pages");
        roundtrip(r#"sgx_nr_free_pages{node="n1"}"#);
        roundtrip(r#"{node="n1", job!="x", pod!=""}"#);
        roundtrip("{}");
        roundtrip("rate(teemon_syscalls_total[5m])");
        roundtrip("increase(sgx_pages_evicted_total[1h30m])");
        roundtrip("avg_over_time(sgx_nr_free_pages[30s])");
        roundtrip("quantile_over_time(0.99, node_load1[10m])");
        roundtrip("sum by (node) (rate(teemon_syscalls_total[1m]))");
        roundtrip("max without (syscall, node) (teemon_syscalls_total)");
        roundtrip("count({job=\"sgx_exporter\"})");
        roundtrip("sgx_nr_free_pages / 24064 * 100");
        roundtrip("avg_over_time(sgx_nr_free_pages[5m]) < 512");
        roundtrip("sum(a) - sum(b) - sum(c)");
        roundtrip("node:syscalls:rate5m > 100");
    }

    #[test]
    fn parse_structures_match_expectations() {
        let expr = parse("sum by (node) (rate(m[1m]))").unwrap();
        let Expr::Aggregate { op, grouping, expr } = expr else { panic!("not an aggregate") };
        assert_eq!(op, AggregateOp::Sum);
        assert_eq!(grouping, Grouping::By(vec!["node".into()]));
        let Expr::Call { func, param, arg } = *expr else { panic!("not a call") };
        assert_eq!(func, RangeFunc::Rate);
        assert_eq!(param, None);
        assert_eq!(*arg, Expr::Range { selector: Selector::metric("m"), window_ms: 60_000 });
    }

    #[test]
    fn trailing_grouping_clause_is_accepted() {
        assert_eq!(
            parse("sum(rate(m[1m])) by (node)").unwrap(),
            parse("sum by (node) (rate(m[1m]))").unwrap()
        );
    }

    #[test]
    fn precedence_matches_arithmetic_convention() {
        assert_eq!(parse("1 + 2 * 3").unwrap(), parse("1 + (2 * 3)").unwrap());
        assert_eq!(parse("m > 1 + 2").unwrap(), parse("m > (1 + 2)").unwrap());
        assert_ne!(parse("(1 + 2) * 3").unwrap(), parse("1 + 2 * 3").unwrap());
        assert_eq!(parse("-5 + 2").unwrap().to_string(), "-5 + 2");
    }

    #[test]
    fn exists_matcher_canonicalises() {
        let expr = parse(r#"{pod!=""}"#).unwrap();
        assert_eq!(expr, Expr::Selector(Selector::all().with_label_present("pod")));
    }

    #[test]
    fn aggregation_names_still_work_as_metric_names() {
        // `count` not followed by `(`/`by`/`without` is an ordinary selector.
        assert_eq!(parse(r#"count{job="x"} + 1"#).unwrap().to_string(), r#"count{job="x"} + 1"#);
    }

    #[test]
    fn error_messages_name_the_problem_and_position() {
        let cases: [(&str, &str); 10] = [
            ("rate(", "expected an expression, found end of input"),
            ("rate(m[5m]", "expected `)` closing the function call"),
            ("foo{bar=}", "expected a quoted string value for label `bar`"),
            ("foo{bar}", "expected `=` or `!=` after label `bar`"),
            ("sum by (node", "expected `)` closing the grouping labels"),
            ("foo[5]", "expected a duration like `5m`"),
            ("quantile_over_time(m[5m])", "expects a scalar literal"),
            ("1 +", "expected an expression, found end of input"),
            ("foo bar", "unexpected identifier `bar` after complete expression"),
            ("-(m)", "unary `-` is only supported on number literals"),
        ];
        for (input, expected) in cases {
            let err = parse(input).unwrap_err();
            assert!(
                err.message.contains(expected),
                "for `{input}` expected message containing {expected:?}, got {:?}",
                err.message
            );
            assert!(err.pos <= input.chars().count(), "position in range for `{input}`");
        }
        // Positions point at the offending token.
        assert_eq!(parse("foo bar").unwrap_err().pos, 4);
        let display = parse("rate(").unwrap_err().to_string();
        assert!(display.starts_with("parse error at position 5:"), "{display}");
    }
}
