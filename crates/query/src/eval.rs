//! The TeeQL evaluator: instant and range queries over a [`TimeSeriesDb`].

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::OnceLock;

use teemon_metrics::Labels;
use teemon_obs::{probes, slow, Stopwatch};
use teemon_tsdb::{query, AggregateOp, Selector, SeriesSnapshot, TimeSeriesDb};

use crate::ast::{BinOp, Expr, Grouping, RangeFunc};
use crate::lexer::ParseError;
use crate::parser::parse;
use crate::stream;

/// One selected series with its key strings materialised once per query.
struct SelectedSeries {
    snapshot: SeriesSnapshot,
    name: String,
    labels: Labels,
}

/// Per-query cache of selector evaluations, keyed by the selector's address
/// inside the expression tree.  The `'e` lifetime ties the cache to the
/// expression being evaluated, so a cached address can never outlive (or be
/// reused after) the selector it identifies.
///
/// This is what makes reads zero-copy end to end: each selector hits the
/// database's inverted index once per query — not once per range step — and
/// every step after that walks the same `Arc`-shared chunks through the
/// snapshot cursor API.  Each selector's snapshots are immutable once taken,
/// so all steps of a range query see identical data for that selector
/// (distinct selectors in one expression may still snapshot at slightly
/// different instants under live ingestion).
#[derive(Default)]
struct SelectionCache<'e> {
    by_selector: HashMap<usize, Rc<Vec<SelectedSeries>>>,
    _expr: std::marker::PhantomData<&'e Selector>,
}

impl<'e> SelectionCache<'e> {
    fn selection(&mut self, db: &TimeSeriesDb, selector: &'e Selector) -> Rc<Vec<SelectedSeries>> {
        let key = selector as *const Selector as usize;
        if let Some(cached) = self.by_selector.get(&key) {
            return Rc::clone(cached);
        }
        let selected = Rc::new(
            db.select(selector)
                .into_iter()
                .map(|snapshot| SelectedSeries {
                    name: snapshot.name().to_string(),
                    labels: snapshot.to_labels(),
                    snapshot,
                })
                .collect::<Vec<_>>(),
        );
        self.by_selector.insert(key, Rc::clone(&selected));
        selected
    }
}

/// One sample of an instant vector.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorSample {
    /// Metric name, when the value still carries one (selectors keep it,
    /// functions and aggregations drop it, mirroring PromQL).
    pub name: Option<String>,
    /// Series labels.
    pub labels: Labels,
    /// The sample value.
    pub value: f64,
}

/// One series of a range (matrix) result.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeSeries {
    /// Metric name, when the series still carries one.
    pub name: Option<String>,
    /// Series labels.
    pub labels: Labels,
    /// `(timestamp_ms, value)` points in chronological order.
    pub points: Vec<(u64, f64)>,
}

impl RangeSeries {
    /// A display label for the series: `name{labels}`, `name`, or the labels
    /// alone when the name was dropped by the expression.
    pub fn display_name(&self) -> String {
        match (&self.name, self.labels.is_empty()) {
            (Some(name), true) => name.clone(),
            (Some(name), false) => format!("{name}{}", self.labels),
            (None, _) => self.labels.to_string(),
        }
    }
}

/// What one instrumented range evaluation did (the per-run view of the
/// `teemon_query_*` probes; `analyze` folds it into its report).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct RangeRun {
    /// Whether the streaming evaluator answered (vs the per-step fallback).
    pub streamed: bool,
    /// Measured wall time in seconds.
    pub wall_seconds: f64,
    /// Chunk samples decoded by the window machines (0 on the fallback
    /// path, which does not stream-decode).
    pub samples_decoded: u64,
    /// Drift-guard window rebuilds.
    pub window_rebuilds: u64,
}

/// The result of evaluating an expression at one instant.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar.
    Scalar(f64),
    /// An instant vector: one sample per matching series.
    Vector(Vec<VectorSample>),
    /// A range vector: per-series points over a window (only produced by a
    /// bare range selector like `m[5m]`).
    Matrix(Vec<RangeSeries>),
}

impl Value {
    /// The instant-vector samples, when this value is a vector.
    pub fn as_vector(&self) -> Option<&[VectorSample]> {
        match self {
            Value::Vector(samples) => Some(samples),
            _ => None,
        }
    }

    /// The scalar, when this value is a scalar.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Value::Scalar(v) => Some(*v),
            _ => None,
        }
    }
}

/// Why an evaluation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A range-vector function was applied to something that is not a range
    /// selector.
    RangeRequired(RangeFunc),
    /// A range vector appeared where an instant vector or scalar is needed.
    UnexpectedRange,
    /// The quantile parameter is outside `[0, 1]`.
    InvalidQuantile(f64),
    /// An aggregation was applied to a scalar.
    VectorRequired(&'static str),
    /// A range query was issued with `step_ms == 0`.
    ZeroStep,
    /// A vector-vector binary operation found several right-hand samples
    /// with the same label set, so matching would be ambiguous.
    ManyToOneMatch(Labels),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::RangeRequired(func) => {
                write!(f, "{func} expects a range vector argument like `metric[5m]`")
            }
            EvalError::UnexpectedRange => {
                write!(f, "range vectors are only valid as range-function arguments")
            }
            EvalError::InvalidQuantile(q) => {
                write!(f, "quantile must be between 0 and 1, got {q}")
            }
            EvalError::VectorRequired(what) => {
                write!(f, "{what} expects an instant vector operand")
            }
            EvalError::ZeroStep => write!(f, "range query step must be non-zero"),
            EvalError::ManyToOneMatch(labels) => {
                write!(f, "many-to-one matching: multiple right-hand series share {labels}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A parse or evaluation failure for string-level query entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The query parsed but could not be evaluated.
    Eval(EvalError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<EvalError> for QueryError {
    fn from(e: EvalError) -> Self {
        QueryError::Eval(e)
    }
}

/// Evaluates TeeQL expressions against a [`TimeSeriesDb`].
///
/// ```
/// use teemon_metrics::Labels;
/// use teemon_query::{QueryEngine, Value};
/// use teemon_tsdb::TimeSeriesDb;
///
/// let db = TimeSeriesDb::new();
/// for (t, v) in [(0u64, 0.0), (5_000, 100.0), (10_000, 200.0)] {
///     db.append("requests_total", &Labels::from_pairs([("node", "n1")]), t, v);
/// }
/// let engine = QueryEngine::new(db);
/// let value = engine.instant_query("rate(requests_total[10s])", 10_000).unwrap();
/// let Value::Vector(samples) = value else { panic!() };
/// assert_eq!(samples[0].value, 20.0); // 200 requests over 10 s
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine {
    db: TimeSeriesDb,
    lookback_ms: u64,
}

impl QueryEngine {
    /// Default staleness window for instant selectors: samples older than
    /// this (relative to the query time) are not returned.
    pub const DEFAULT_LOOKBACK_MS: u64 = 5 * 60 * 1000;

    /// Creates an engine over `db` with the default lookback window.
    pub fn new(db: TimeSeriesDb) -> Self {
        Self { db, lookback_ms: Self::DEFAULT_LOOKBACK_MS }
    }

    /// Overrides the instant-selector staleness window.
    #[must_use]
    pub fn with_lookback_ms(mut self, lookback_ms: u64) -> Self {
        self.lookback_ms = lookback_ms.max(1);
        self
    }

    /// The database queried.
    pub fn db(&self) -> &TimeSeriesDb {
        &self.db
    }

    /// The instant-selector staleness window in effect.
    pub fn lookback_ms(&self) -> u64 {
        self.lookback_ms
    }

    /// Parses and evaluates `query` at `at_ms`.
    ///
    /// # Errors
    ///
    /// Returns the parse error or the evaluation error.
    pub fn instant_query(&self, query: &str, at_ms: u64) -> Result<Value, QueryError> {
        Ok(self.instant(&parse(query)?, at_ms)?)
    }

    /// Parses and evaluates `query` at every step of `[start_ms, end_ms]`.
    ///
    /// # Errors
    ///
    /// Returns the parse error or the evaluation error.
    pub fn range_query(
        &self,
        query: &str,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> Result<Vec<RangeSeries>, QueryError> {
        Ok(self.range(&parse(query)?, start_ms, end_ms, step_ms)?)
    }

    /// Evaluates a parsed expression at one instant.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] when the expression is not well-typed (e.g. a
    /// range function over an instant vector).
    pub fn instant(&self, expr: &Expr, at_ms: u64) -> Result<Value, EvalError> {
        self.eval_instant(expr, at_ms, &mut SelectionCache::default())
    }

    fn eval_instant<'e>(
        &self,
        expr: &'e Expr,
        at_ms: u64,
        cache: &mut SelectionCache<'e>,
    ) -> Result<Value, EvalError> {
        match expr {
            Expr::Number(n) => Ok(Value::Scalar(*n)),
            Expr::Selector(selector) => {
                let oldest_live = at_ms.saturating_sub(self.lookback_ms);
                let selection = cache.selection(&self.db, selector);
                let mut samples = Vec::with_capacity(selection.len());
                for series in selection.iter() {
                    let Some(sample) = series.snapshot.at(at_ms) else { continue };
                    if sample.timestamp_ms < oldest_live {
                        continue;
                    }
                    samples.push(VectorSample {
                        name: Some(series.name.clone()),
                        labels: series.labels.clone(),
                        value: sample.value,
                    });
                }
                Ok(Value::Vector(samples))
            }
            Expr::Range { selector, window_ms } => {
                let start = at_ms.saturating_sub(*window_ms);
                let selection = cache.selection(&self.db, selector);
                let mut out = Vec::with_capacity(selection.len());
                for series in selection.iter() {
                    let points = series.snapshot.points_in(start, at_ms);
                    if points.is_empty() {
                        continue;
                    }
                    out.push(RangeSeries {
                        name: Some(series.name.clone()),
                        labels: series.labels.clone(),
                        points,
                    });
                }
                Ok(Value::Matrix(out))
            }
            Expr::Call { func, param, arg } => self.call(*func, *param, arg, at_ms, cache),
            Expr::Aggregate { op, grouping, expr } => {
                let Value::Vector(samples) = self.eval_instant(expr, at_ms, cache)? else {
                    return Err(EvalError::VectorRequired("aggregation"));
                };
                Ok(Value::Vector(aggregate_vector(&samples, *op, grouping)))
            }
            Expr::Binary { op, lhs, rhs } => {
                let lhs = self.eval_instant(lhs, at_ms, cache)?;
                let rhs = self.eval_instant(rhs, at_ms, cache)?;
                binary(*op, lhs, rhs)
            }
        }
    }

    /// Evaluates a parsed expression at every step of `[start_ms, end_ms]`.
    ///
    /// Expressions made of selectors, range functions, grouped aggregations
    /// and constant arithmetic/comparisons take the **streaming** path
    /// ([`crate::stream`]): per-series sliding-window state machines advance
    /// two monotone cursors across the steps and update the window aggregates
    /// incrementally, so the whole range costs `O(samples touched)` instead
    /// of `O(steps × window)`.  Everything else (vector-vector matching,
    /// type errors) falls back to [`QueryEngine::range_per_step`].
    ///
    /// With debug assertions enabled and `TEEMON_VERIFY_STREAM=1` in the
    /// environment, every streamed evaluation is cross-checked against the
    /// per-step oracle and panics on divergence (CI runs the test suite this
    /// way).
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::ZeroStep`] for a zero step and propagates the
    /// expression's evaluation errors.  A whole-query range selector
    /// (`m[5m]`) is not rangeable and yields [`EvalError::UnexpectedRange`].
    ///
    /// Selectors are resolved against the storage index once for the whole
    /// query; every step then reads the same immutable `Arc`-shared chunk
    /// snapshots, so concurrent ingestion cannot make one selector's data
    /// shift between steps.
    pub fn range(
        &self,
        expr: &Expr,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> Result<Vec<RangeSeries>, EvalError> {
        Ok(self.range_with_run(expr, start_ms, end_ms, step_ms)?.0)
    }

    /// The instrumented range funnel shared by [`QueryEngine::range`] and
    /// `analyze`: evaluates, feeds the `teemon_query_*` probes (mode
    /// counters, decode/rebuild counters, wall-time histogram, slow-query
    /// ring) and reports what the run did.
    pub(crate) fn range_with_run(
        &self,
        expr: &Expr,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> Result<(Vec<RangeSeries>, RangeRun), EvalError> {
        if step_ms == 0 {
            return Err(EvalError::ZeroStep);
        }
        if start_ms > end_ms {
            return Ok((Vec::new(), RangeRun::default()));
        }
        let watch = Stopwatch::start();
        let (result, mut run) =
            match stream::plan_or_reason(&self.db, self.lookback_ms, expr, start_ms, end_ms) {
                Ok(plan) => {
                    let (streamed, stats) = plan.run_with_stats(start_ms, end_ms, step_ms);
                    if cfg!(debug_assertions) && verify_stream_enabled() {
                        let oracle = self.range_per_step(expr, start_ms, end_ms, step_ms)?;
                        assert!(
                            stream::ranges_equivalent(&streamed, &oracle),
                            "streaming evaluation diverged from the per-step oracle for `{expr}` \
                             over [{start_ms}, {end_ms}] step {step_ms}\nstreamed: \
                             {streamed:?}\noracle: {oracle:?}"
                        );
                    }
                    probes::QUERY_STREAMED.inc();
                    probes::QUERY_SAMPLES_DECODED.add(stats.samples_decoded);
                    probes::QUERY_WINDOW_REBUILDS.add(stats.window_rebuilds);
                    let run = RangeRun {
                        streamed: true,
                        samples_decoded: stats.samples_decoded,
                        window_rebuilds: stats.window_rebuilds,
                        wall_seconds: 0.0,
                    };
                    (streamed, run)
                }
                Err(_reason) => {
                    probes::QUERY_FALLBACK.inc();
                    let result = self.range_per_step(expr, start_ms, end_ms, step_ms)?;
                    (result, RangeRun::default())
                }
            };
        let wall_ns = watch.elapsed_ns();
        run.wall_seconds = wall_ns as f64 / 1e9;
        probes::QUERY_NS.record_ns(wall_ns);
        // Only offenders pay for rendering the expression back to text.
        if wall_ns >= slow::threshold_ns() {
            slow::maybe_record(&expr.to_string(), wall_ns, run.samples_decoded, run.streamed);
        }
        Ok((result, run))
    }

    /// `true` when `expr` would take the streaming path for this range (a
    /// diagnostic for tests and benches; planning resolves the expression's
    /// selectors, so this is not free).
    pub fn streams_range(&self, expr: &Expr, start_ms: u64, end_ms: u64) -> bool {
        stream::plan(&self.db, self.lookback_ms, expr, start_ms, end_ms).is_some()
    }

    /// The per-step range evaluator: runs the full instant pipeline at every
    /// step and stitches the results into range series.  Retained as the
    /// fallback for expressions the streamer cannot handle, as the
    /// equivalence oracle for the streaming path, and as the baseline in the
    /// `micro/range_query` bench.
    ///
    /// Points are accumulated in slots keyed by a per-query series id: each
    /// distinct output identity resolves through the hash map once, and the
    /// per-step work is an id lookup plus a point push — not a `BTreeMap`
    /// walk comparing (and retaining clones of) name/label strings per step
    /// per series.  Name/labels are attached to the final [`RangeSeries`]
    /// only once, at the end.
    ///
    /// # Errors
    ///
    /// Same contract as [`QueryEngine::range`].
    pub fn range_per_step(
        &self,
        expr: &Expr,
        start_ms: u64,
        end_ms: u64,
        step_ms: u64,
    ) -> Result<Vec<RangeSeries>, EvalError> {
        if step_ms == 0 {
            return Err(EvalError::ZeroStep);
        }
        if start_ms > end_ms {
            return Ok(Vec::new());
        }
        let mut cache = SelectionCache::default();
        let mut slot_of: HashMap<(Option<String>, Labels), usize> = HashMap::new();
        let mut points: Vec<Vec<(u64, f64)>> = Vec::new();
        let mut push = |key: (Option<String>, Labels), t: u64, value: f64| {
            let slot = match slot_of.get(&key) {
                Some(&slot) => slot,
                None => {
                    points.push(Vec::new());
                    slot_of.insert(key, points.len() - 1);
                    points.len() - 1
                }
            };
            points[slot].push((t, value));
        };
        let mut t = start_ms;
        loop {
            match self.eval_instant(expr, t, &mut cache)? {
                Value::Scalar(v) => push((None, Labels::new()), t, v),
                Value::Vector(samples) => {
                    for sample in samples {
                        push((sample.name, sample.labels), t, sample.value);
                    }
                }
                Value::Matrix(_) => return Err(EvalError::UnexpectedRange),
            }
            let Some(next) = t.checked_add(step_ms) else { break };
            if next > end_ms {
                break;
            }
            t = next;
        }
        let mut keyed: Vec<((Option<String>, Labels), usize)> = slot_of.into_iter().collect();
        keyed.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(keyed
            .into_iter()
            .map(|((name, labels), slot)| RangeSeries {
                name,
                labels,
                points: std::mem::take(&mut points[slot]),
            })
            .collect())
    }

    fn call<'e>(
        &self,
        func: RangeFunc,
        param: Option<f64>,
        arg: &'e Expr,
        at_ms: u64,
        cache: &mut SelectionCache<'e>,
    ) -> Result<Value, EvalError> {
        let Value::Matrix(series) = self.eval_instant(arg, at_ms, cache)? else {
            return Err(EvalError::RangeRequired(func));
        };
        if let Some(q) = param {
            if !(0.0..=1.0).contains(&q) {
                return Err(EvalError::InvalidQuantile(q));
            }
        }
        let samples = series
            .into_iter()
            .filter_map(|s| {
                apply_range_func(func, param, &s.points).map(|value| VectorSample {
                    name: None,
                    labels: s.labels,
                    value,
                })
            })
            .collect();
        Ok(Value::Vector(samples))
    }
}

/// `TEEMON_VERIFY_STREAM=1` turns on the streaming-vs-oracle cross-check in
/// [`QueryEngine::range`] (debug builds only); checked once per process.
fn verify_stream_enabled() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| {
        std::env::var_os("TEEMON_VERIFY_STREAM").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
    })
}

fn apply_range_func(func: RangeFunc, param: Option<f64>, points: &[(u64, f64)]) -> Option<f64> {
    let values = || points.iter().map(|(_, v)| *v).collect::<Vec<f64>>();
    match func {
        RangeFunc::Rate => query::rate(points),
        RangeFunc::Increase => query::increase(points),
        RangeFunc::AvgOverTime => AggregateOp::Avg.apply(&values()),
        RangeFunc::MinOverTime => AggregateOp::Min.apply(&values()),
        RangeFunc::MaxOverTime => AggregateOp::Max.apply(&values()),
        RangeFunc::SumOverTime => AggregateOp::Sum.apply(&values()),
        RangeFunc::CountOverTime => AggregateOp::Count.apply(&values()),
        RangeFunc::QuantileOverTime => query::quantile_over_time(points, param.unwrap_or(0.5)),
        RangeFunc::LastOverTime => points.last().map(|(_, v)| *v),
    }
}

fn aggregate_vector(
    samples: &[VectorSample],
    op: AggregateOp,
    grouping: &Grouping,
) -> Vec<VectorSample> {
    let mut groups: BTreeMap<Labels, Vec<f64>> = BTreeMap::new();
    for sample in samples {
        groups.entry(grouping.key_for(&sample.labels)).or_default().push(sample.value);
    }
    groups
        .into_iter()
        .filter_map(|(labels, values)| {
            op.apply(&values).map(|value| VectorSample { name: None, labels, value })
        })
        .collect()
}

fn binary(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, EvalError> {
    match (lhs, rhs) {
        (Value::Matrix(_), _) | (_, Value::Matrix(_)) => Err(EvalError::UnexpectedRange),
        (Value::Scalar(a), Value::Scalar(b)) => Ok(Value::Scalar(op.apply(a, b))),
        (Value::Vector(v), Value::Scalar(s)) => Ok(Value::Vector(if op.is_comparison() {
            v.into_iter().filter(|sample| op.compare(sample.value, s)).collect()
        } else {
            v.into_iter()
                .map(|sample| VectorSample {
                    name: None,
                    labels: sample.labels,
                    value: op.apply(sample.value, s),
                })
                .collect()
        })),
        (Value::Scalar(s), Value::Vector(v)) => Ok(Value::Vector(if op.is_comparison() {
            v.into_iter().filter(|sample| op.compare(s, sample.value)).collect()
        } else {
            v.into_iter()
                .map(|sample| VectorSample {
                    name: None,
                    labels: sample.labels,
                    value: op.apply(s, sample.value),
                })
                .collect()
        })),
        (Value::Vector(lhs), Value::Vector(rhs)) => {
            // One-to-one matching on identical label sets (names ignored).
            // Several right-hand samples with the same labels would make the
            // match ambiguous, so that is an error rather than a silent pick.
            let mut by_labels: BTreeMap<&Labels, f64> = BTreeMap::new();
            for sample in &rhs {
                if by_labels.insert(&sample.labels, sample.value).is_some() {
                    return Err(EvalError::ManyToOneMatch(sample.labels.clone()));
                }
            }
            Ok(Value::Vector(if op.is_comparison() {
                lhs.into_iter()
                    .filter(|sample| {
                        by_labels
                            .get(&sample.labels)
                            .map(|other| op.compare(sample.value, *other))
                            .unwrap_or(false)
                    })
                    .collect()
            } else {
                lhs.into_iter()
                    .filter_map(|sample| {
                        by_labels.get(&sample.labels).map(|other| VectorSample {
                            name: None,
                            labels: sample.labels.clone(),
                            value: op.apply(sample.value, *other),
                        })
                    })
                    .collect()
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    /// 2 nodes × 2 syscalls of counters at 5 s resolution, plus a gauge.
    fn db() -> TimeSeriesDb {
        let db = TimeSeriesDb::new();
        for t in 0..13u64 {
            for (node, scale) in [("n1", 1.0), ("n2", 3.0)] {
                for (syscall, per_tick) in [("read", 100.0), ("futex", 20.0)] {
                    db.append(
                        "teemon_syscalls_total",
                        &Labels::from_pairs([("node", node), ("syscall", syscall)]),
                        t * 5_000,
                        t as f64 * per_tick * scale,
                    );
                }
                db.append(
                    "sgx_nr_free_pages",
                    &Labels::from_pairs([("node", node)]),
                    t * 5_000,
                    24_000.0 - t as f64 * 1_000.0 * scale,
                );
            }
        }
        db
    }

    fn vector(engine: &QueryEngine, q: &str, at: u64) -> Vec<VectorSample> {
        match engine.instant_query(q, at).unwrap() {
            Value::Vector(v) => v,
            other => panic!("expected vector for `{q}`, got {other:?}"),
        }
    }

    #[test]
    fn selectors_respect_matchers_and_lookback() {
        let engine = QueryEngine::new(db());
        assert_eq!(vector(&engine, "sgx_nr_free_pages", 60_000).len(), 2);
        let one = vector(&engine, r#"sgx_nr_free_pages{node="n2"}"#, 60_000);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].name.as_deref(), Some("sgx_nr_free_pages"));
        assert_eq!(one[0].value, 24_000.0 - 12.0 * 3_000.0);
        // Beyond the lookback window the series goes stale.
        let stale = QueryEngine::new(db()).with_lookback_ms(10_000);
        assert!(vector(&stale, "sgx_nr_free_pages", 500_000).is_empty());
    }

    #[test]
    fn rate_and_aggregation_by_node() {
        let engine = QueryEngine::new(db());
        // Each node's read counter grows 100·scale per 5 s → 20·scale per s;
        // futex adds 4·scale per s.
        let per_node = vector(&engine, "sum by (node) (rate(teemon_syscalls_total[30s]))", 60_000);
        assert_eq!(per_node.len(), 2);
        let value_of = |node: &str| {
            per_node.iter().find(|s| s.labels.get("node") == Some(node)).map(|s| s.value).unwrap()
        };
        assert!((value_of("n1") - 24.0).abs() < 1e-9);
        assert!((value_of("n2") - 72.0).abs() < 1e-9);
        // `without` keeps the complementary labels.
        let per_syscall =
            vector(&engine, "sum without (node) (rate(teemon_syscalls_total[30s]))", 60_000);
        assert_eq!(per_syscall.len(), 2);
        assert!(per_syscall.iter().all(|s| s.labels.get("syscall").is_some()));
        // Global sum collapses everything.
        let total = vector(&engine, "sum(rate(teemon_syscalls_total[30s]))", 60_000);
        assert_eq!(total.len(), 1);
        assert!(total[0].labels.is_empty());
        assert!((total[0].value - 96.0).abs() < 1e-9);
    }

    #[test]
    fn over_time_functions_summarise_windows() {
        let engine = QueryEngine::new(db());
        let q = r#"avg_over_time(sgx_nr_free_pages{node="n1"}[20s])"#;
        // Window [40s, 60s]: values at t=8..=12 → 24_000 - 1_000·{8..12}.
        let avg = vector(&engine, q, 60_000);
        assert!((avg[0].value - (24_000.0 - 10_000.0)).abs() < 1e-9);
        let max = vector(&engine, r#"max_over_time(sgx_nr_free_pages{node="n1"}[20s])"#, 60_000);
        assert_eq!(max[0].value, 16_000.0);
        let count = vector(&engine, "count_over_time(sgx_nr_free_pages[20s])", 60_000);
        assert_eq!(count.len(), 2);
        assert_eq!(count[0].value, 5.0);
        let median = vector(
            &engine,
            r#"quantile_over_time(0.5, sgx_nr_free_pages{node="n1"}[20s])"#,
            60_000,
        );
        assert_eq!(median[0].value, 14_000.0);
        let last = vector(&engine, r#"last_over_time(sgx_nr_free_pages{node="n1"}[20s])"#, 60_000);
        assert_eq!(last[0].value, 12_000.0);
    }

    #[test]
    fn arithmetic_and_comparisons_filter_vectors() {
        let engine = QueryEngine::new(db());
        // Scalar arithmetic on a vector.
        let pct = vector(&engine, "sgx_nr_free_pages / 24000 * 100", 0);
        assert_eq!(pct.len(), 2);
        assert!((pct[0].value - 100.0).abs() < 1e-9);
        assert_eq!(pct[0].name, None, "arithmetic drops the metric name");
        // Comparison keeps only matching samples (filter semantics).
        let low = vector(&engine, "sgx_nr_free_pages < 5000", 60_000);
        assert_eq!(low.len(), 1, "only n2 dropped below 5000 pages");
        assert_eq!(low[0].labels.get("node"), Some("n2"));
        assert_eq!(low[0].name.as_deref(), Some("sgx_nr_free_pages"));
        // Scalar-scalar comparison returns 0/1.
        assert_eq!(engine.instant_query("1 + 1 == 2", 0).unwrap(), Value::Scalar(1.0));
        // Vector-vector arithmetic matches on identical label sets.
        let ratio = vector(
            &engine,
            "sum by (node) (teemon_syscalls_total) / sum by (node) (sgx_nr_free_pages)",
            0,
        );
        assert_eq!(ratio.len(), 2);
    }

    #[test]
    fn range_queries_stitch_instant_steps() {
        let engine = QueryEngine::new(db());
        let series = engine
            .range_query("sum by (node) (rate(teemon_syscalls_total[30s]))", 30_000, 60_000, 15_000)
            .unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 3, "steps at 30, 45, 60 s");
            assert!(s.points.windows(2).all(|w| w[0].0 < w[1].0));
        }
        // Scalar expressions produce one label-less series.
        let scalar = engine.range_query("42", 0, 10_000, 5_000).unwrap();
        assert_eq!(scalar.len(), 1);
        assert_eq!(scalar[0].points, vec![(0, 42.0), (5_000, 42.0), (10_000, 42.0)]);
        assert_eq!(scalar[0].display_name(), "{}");
    }

    #[test]
    fn type_errors_are_reported() {
        let engine = QueryEngine::new(db());
        assert_eq!(
            engine.instant_query("rate(sgx_nr_free_pages)", 0),
            Err(QueryError::Eval(EvalError::RangeRequired(RangeFunc::Rate)))
        );
        assert_eq!(
            engine.instant_query("sum(1)", 0),
            Err(QueryError::Eval(EvalError::VectorRequired("aggregation")))
        );
        assert_eq!(
            engine.instant_query("sgx_nr_free_pages[5m] + 1", 0),
            Err(QueryError::Eval(EvalError::UnexpectedRange))
        );
        assert_eq!(
            engine.instant_query("quantile_over_time(1.5, sgx_nr_free_pages[5m])", 0),
            Err(QueryError::Eval(EvalError::InvalidQuantile(1.5)))
        );
        assert!(matches!(
            engine.range_query("up", 0, 1, 0),
            Err(QueryError::Eval(EvalError::ZeroStep))
        ));
        // An inverted range is empty, not a phantom sample at start_ms.
        assert_eq!(engine.range_query("sgx_nr_free_pages", 20_000, 10_000, 5_000), Ok(Vec::new()));
        assert!(matches!(engine.instant_query("up[", 0), Err(QueryError::Parse(_))));
        // A name-less rhs selector matching several metrics with identical
        // label sets is ambiguous, not a silent pick.
        let dup = TimeSeriesDb::new();
        let labels = Labels::from_pairs([("node", "n1")]);
        dup.append("metric_a", &labels, 0, 7.0);
        dup.append("metric_b", &labels, 0, 100.0);
        let dup_engine = QueryEngine::new(dup);
        assert!(matches!(
            dup_engine.instant_query(r#"metric_a + {node="n1"}"#, 0),
            Err(QueryError::Eval(EvalError::ManyToOneMatch(_)))
        ));
        let msg = EvalError::ManyToOneMatch(labels).to_string();
        assert!(msg.contains("many-to-one"), "{msg}");
        // Errors render readable messages.
        let msg = QueryError::from(EvalError::RangeRequired(RangeFunc::Rate)).to_string();
        assert!(msg.contains("rate"), "{msg}");
    }

    #[test]
    fn bare_range_selector_returns_a_matrix() {
        let engine = QueryEngine::new(db());
        let Value::Matrix(series) = engine.instant_query("sgx_nr_free_pages[10s]", 60_000).unwrap()
        else {
            panic!("expected matrix");
        };
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].points.len(), 3);
        assert_eq!(series[0].display_name(), "sgx_nr_free_pages{node=\"n1\"}");
    }
}
