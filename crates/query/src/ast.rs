//! The typed TeeQL abstract syntax tree.
//!
//! Every node's [`Display`](std::fmt::Display) rendering is valid TeeQL that
//! parses back to an equal tree (`parse(expr.to_string()) == expr`), which is
//! property-tested in `tests/roundtrip.rs`.  The only values that cannot make
//! the round trip are non-finite scalar literals (there is no literal syntax
//! for `inf`/`NaN`) and `LabelMatch::NotEquals(_, "")`, which canonicalises to
//! the `Exists` matcher.

use std::fmt;

use teemon_tsdb::{AggregateOp, Selector};

/// A binary operator: arithmetic or (filtering) comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
}

impl BinOp {
    /// `true` for the comparison operators (which filter vectors).
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Lt | BinOp::Ge | BinOp::Le)
    }

    /// Binding strength: comparisons bind loosest, `*`/`/` tightest.
    pub fn precedence(&self) -> u8 {
        match self {
            BinOp::Eq | BinOp::Ne | BinOp::Gt | BinOp::Lt | BinOp::Ge | BinOp::Le => 1,
            BinOp::Add | BinOp::Sub => 2,
            BinOp::Mul | BinOp::Div => 3,
        }
    }

    /// Applies the operator to two scalars.  Comparisons return `1.0`/`0.0`.
    pub fn apply(&self, lhs: f64, rhs: f64) -> f64 {
        match self {
            BinOp::Add => lhs + rhs,
            BinOp::Sub => lhs - rhs,
            BinOp::Mul => lhs * rhs,
            BinOp::Div => lhs / rhs,
            _ => {
                if self.compare(lhs, rhs) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Evaluates a comparison operator as a predicate.
    pub fn compare(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            BinOp::Eq => lhs == rhs,
            BinOp::Ne => lhs != rhs,
            BinOp::Gt => lhs > rhs,
            BinOp::Lt => lhs < rhs,
            BinOp::Ge => lhs >= rhs,
            BinOp::Le => lhs <= rhs,
            _ => unreachable!("compare called on arithmetic operator"),
        }
    }

    /// The operator's TeeQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Gt => ">",
            BinOp::Lt => "<",
            BinOp::Ge => ">=",
            BinOp::Le => "<=",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A function applied to a range vector (`rate(m[5m])` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeFunc {
    /// Per-second rate of a counter, reset-aware.
    Rate,
    /// Total increase of a counter over the window, reset-aware.
    Increase,
    /// Arithmetic mean of the window's samples.
    AvgOverTime,
    /// Minimum sample in the window.
    MinOverTime,
    /// Maximum sample in the window.
    MaxOverTime,
    /// Sum of the window's samples.
    SumOverTime,
    /// Number of samples in the window.
    CountOverTime,
    /// Exact interpolated quantile of the window's samples; takes the
    /// quantile as a leading scalar literal argument.
    QuantileOverTime,
    /// The newest sample in the window.
    LastOverTime,
}

impl RangeFunc {
    /// All functions, paired with their TeeQL names (used by the parser).
    pub const ALL: [(RangeFunc, &'static str); 9] = [
        (RangeFunc::Rate, "rate"),
        (RangeFunc::Increase, "increase"),
        (RangeFunc::AvgOverTime, "avg_over_time"),
        (RangeFunc::MinOverTime, "min_over_time"),
        (RangeFunc::MaxOverTime, "max_over_time"),
        (RangeFunc::SumOverTime, "sum_over_time"),
        (RangeFunc::CountOverTime, "count_over_time"),
        (RangeFunc::QuantileOverTime, "quantile_over_time"),
        (RangeFunc::LastOverTime, "last_over_time"),
    ];

    /// Looks a function up by its TeeQL name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().find(|(_, n)| *n == name).map(|(f, _)| *f)
    }

    /// The function's TeeQL name.
    pub fn name(&self) -> &'static str {
        Self::ALL.iter().find(|(f, _)| f == self).map(|(_, n)| *n).expect("listed in ALL")
    }

    /// `true` when the function takes a leading scalar parameter.
    pub fn takes_parameter(&self) -> bool {
        matches!(self, RangeFunc::QuantileOverTime)
    }
}

impl fmt::Display for RangeFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Label grouping of a cross-series aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grouping {
    /// Collapse everything into one group (no `by`/`without` clause).
    None,
    /// Keep only the listed labels (`sum by (node) (...)`).
    By(Vec<String>),
    /// Drop the listed labels, keep the rest (`sum without (cpu) (...)`).
    Without(Vec<String>),
}

impl Grouping {
    /// The aggregation-group key for a series carrying `labels`: empty for
    /// [`Grouping::None`], the kept labels for `by`, the complement for
    /// `without`.  The single definition shared by the per-step aggregator
    /// and the streaming planner — their group identities must never drift
    /// apart (the streaming path is cross-checked against the per-step
    /// oracle).
    pub fn key_for(&self, labels: &teemon_metrics::Labels) -> teemon_metrics::Labels {
        use teemon_metrics::Labels;
        match self {
            Grouping::None => Labels::new(),
            Grouping::By(keep) => {
                Labels::from_pairs(labels.iter().filter(|(k, _)| keep.iter().any(|want| want == k)))
            }
            Grouping::Without(drop) => Labels::from_pairs(
                labels.iter().filter(|(k, _)| !drop.iter().any(|want| want == k)),
            ),
        }
    }
}

impl fmt::Display for Grouping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (keyword, labels) = match self {
            Grouping::None => return Ok(()),
            Grouping::By(labels) => ("by", labels),
            Grouping::Without(labels) => ("without", labels),
        };
        write!(f, "{keyword} (")?;
        for (i, label) in labels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(label)?;
        }
        write!(f, ")")
    }
}

/// A TeeQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A scalar literal.
    Number(f64),
    /// An instant-vector selector (`sgx_nr_free_pages{node="n1"}`).
    Selector(Selector),
    /// A range-vector selector (`m[5m]`); only valid as a range-function
    /// argument or as a whole query.
    Range {
        /// The series selector.
        selector: Selector,
        /// Window length in milliseconds.
        window_ms: u64,
    },
    /// A range-vector function call.
    Call {
        /// The function.
        func: RangeFunc,
        /// Leading scalar parameter (the quantile of `quantile_over_time`).
        param: Option<f64>,
        /// The range-vector argument.
        arg: Box<Expr>,
    },
    /// A cross-series aggregation (`sum by (node) (...)`).
    Aggregate {
        /// The aggregation operator.
        op: AggregateOp,
        /// Label grouping.
        grouping: Grouping,
        /// The aggregated expression.
        expr: Box<Expr>,
    },
    /// A binary arithmetic or comparison expression.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// TeeQL spelling of an [`AggregateOp`].
pub fn aggregate_op_name(op: AggregateOp) -> &'static str {
    match op {
        AggregateOp::Sum => "sum",
        AggregateOp::Avg => "avg",
        AggregateOp::Min => "min",
        AggregateOp::Max => "max",
        AggregateOp::Count => "count",
    }
}

/// Looks an [`AggregateOp`] up by its TeeQL name.
pub fn aggregate_op_from_name(name: &str) -> Option<AggregateOp> {
    match name {
        "sum" => Some(AggregateOp::Sum),
        "avg" => Some(AggregateOp::Avg),
        "min" => Some(AggregateOp::Min),
        "max" => Some(AggregateOp::Max),
        "count" => Some(AggregateOp::Count),
        _ => None,
    }
}

/// Renders a millisecond duration in the largest unit that divides it evenly
/// (`300000` → `"5m"`, `90000` → `"90s"`, `1500` → `"1500ms"`).
pub fn format_duration_ms(ms: u64) -> String {
    const UNITS: [(u64, &str); 5] =
        [(86_400_000, "d"), (3_600_000, "h"), (60_000, "m"), (1_000, "s"), (1, "ms")];
    if ms == 0 {
        return "0s".to_string();
    }
    for (scale, unit) in UNITS {
        if ms.is_multiple_of(scale) {
            return format!("{}{unit}", ms / scale);
        }
    }
    unreachable!("the 1ms unit divides everything")
}

impl Expr {
    /// Binding strength used to decide parenthesisation when printing.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary { op, .. } => op.precedence(),
            _ => u8::MAX,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Number(n) => write!(f, "{n}"),
            Expr::Selector(sel) => write!(f, "{sel}"),
            Expr::Range { selector, window_ms } => {
                write!(f, "{selector}[{}]", format_duration_ms(*window_ms))
            }
            Expr::Call { func, param, arg } => match param {
                Some(p) => write!(f, "{func}({p}, {arg})"),
                None => write!(f, "{func}({arg})"),
            },
            Expr::Aggregate { op, grouping, expr } => match grouping {
                Grouping::None => write!(f, "{}({expr})", aggregate_op_name(*op)),
                _ => write!(f, "{} {grouping} ({expr})", aggregate_op_name(*op)),
            },
            Expr::Binary { op, lhs, rhs } => {
                // Left-associative grammar: the left child may print bare at
                // equal precedence, the right child needs parentheses there.
                if lhs.precedence() < op.precedence() {
                    write!(f, "({lhs})")?;
                } else {
                    write!(f, "{lhs}")?;
                }
                write!(f, " {op} ")?;
                if rhs.precedence() <= op.precedence() {
                    write!(f, "({rhs})")
                } else {
                    write!(f, "{rhs}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_pick_the_largest_even_unit() {
        assert_eq!(format_duration_ms(0), "0s");
        assert_eq!(format_duration_ms(500), "500ms");
        assert_eq!(format_duration_ms(1_000), "1s");
        assert_eq!(format_duration_ms(90_000), "90s");
        assert_eq!(format_duration_ms(300_000), "5m");
        assert_eq!(format_duration_ms(7_200_000), "2h");
        assert_eq!(format_duration_ms(86_400_000), "1d");
        assert_eq!(format_duration_ms(1_500), "1500ms");
    }

    #[test]
    fn display_parenthesises_by_precedence() {
        let a = || Box::new(Expr::Selector(Selector::metric("a")));
        let b = || Box::new(Expr::Number(2.0));
        // (a + 2) * 2 keeps its parentheses; a + 2 * 2 prints bare.
        let sum = Expr::Binary { op: BinOp::Add, lhs: a(), rhs: b() };
        let scaled = Expr::Binary { op: BinOp::Mul, lhs: Box::new(sum.clone()), rhs: b() };
        assert_eq!(scaled.to_string(), "(a + 2) * 2");
        let bare = Expr::Binary {
            op: BinOp::Add,
            lhs: a(),
            rhs: Box::new(Expr::Binary { op: BinOp::Mul, lhs: b(), rhs: b() }),
        };
        assert_eq!(bare.to_string(), "a + 2 * 2");
        // Right-nested same-precedence operands keep their parentheses.
        let right = Expr::Binary { op: BinOp::Sub, lhs: a(), rhs: Box::new(sum) };
        assert_eq!(right.to_string(), "a - (a + 2)");
    }

    #[test]
    fn display_of_calls_and_aggregations() {
        let range = Expr::Range {
            selector: Selector::metric("m").with_label("node", "n1"),
            window_ms: 300_000,
        };
        let rate = Expr::Call { func: RangeFunc::Rate, param: None, arg: Box::new(range) };
        assert_eq!(rate.to_string(), "rate(m{node=\"n1\"}[5m])");
        let summed = Expr::Aggregate {
            op: AggregateOp::Sum,
            grouping: Grouping::By(vec!["node".into()]),
            expr: Box::new(rate),
        };
        assert_eq!(summed.to_string(), "sum by (node) (rate(m{node=\"n1\"}[5m]))");
        let quantile = Expr::Call {
            func: RangeFunc::QuantileOverTime,
            param: Some(0.9),
            arg: Box::new(Expr::Range { selector: Selector::metric("m"), window_ms: 60_000 }),
        };
        assert_eq!(quantile.to_string(), "quantile_over_time(0.9, m[1m])");
    }
}
