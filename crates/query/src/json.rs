//! Prometheus-HTTP-API-style JSON rendering of query results.
//!
//! The serving edge answers TeeQL queries over HTTP; this module is the
//! serialisation boundary: it turns [`Value`]s and [`RangeSeries`] into the
//! response envelope Prometheus' `/api/v1/query` and `/api/v1/query_range`
//! made conventional —
//!
//! ```json
//! {"status":"success","data":{"resultType":"vector","result":[
//!   {"metric":{"__name__":"up","job":"sgx_exporter"},"value":[5.0,"1"]}
//! ]}}
//! ```
//!
//! Sample values are rendered as **strings** (`"1"`, `"NaN"`, `"+Inf"`),
//! exactly like the exposition format, because JSON numbers cannot carry the
//! IEEE specials; timestamps are seconds as JSON numbers.

use serde::Value as Json;
use teemon_metrics::exposition::format_value;
use teemon_metrics::Labels;

use crate::eval::{RangeSeries, Value};

/// `{"__name__": name?, ...labels}` — the `metric` object of one series.
fn metric_object(name: Option<&str>, labels: &Labels) -> Json {
    let mut entries: Vec<(String, Json)> = Vec::with_capacity(labels.len() + 1);
    if let Some(name) = name {
        entries.push(("__name__".to_string(), Json::String(name.to_string())));
    }
    for (k, v) in labels.iter() {
        entries.push((k.to_string(), Json::String(v.to_string())));
    }
    Json::Object(entries)
}

/// `[seconds, "value"]` — one sample pair.
fn sample_pair(timestamp_ms: u64, value: f64) -> Json {
    Json::Array(vec![Json::Number(timestamp_ms as f64 / 1e3), Json::String(format_value(value))])
}

/// Wraps a `data` payload in the success envelope.
fn success(result_type: &str, result: Json) -> String {
    let data = Json::Object(vec![
        ("resultType".to_string(), Json::String(result_type.to_string())),
        ("result".to_string(), result),
    ]);
    let envelope = Json::Object(vec![
        ("status".to_string(), Json::String("success".to_string())),
        ("data".to_string(), data),
    ]);
    render(&envelope)
}

/// Serialises an envelope; `serde_json::to_string` over a [`Json`] tree
/// cannot fail, so the fallback body is unreachable.
fn render(envelope: &Json) -> String {
    serde_json::to_string(envelope).unwrap_or_else(|_| {
        r#"{"status":"error","errorType":"internal","error":"serialize"}"#.to_string()
    })
}

/// Renders an instant-query [`Value`] as a success response.  Scalars become
/// `resultType: "scalar"`, vectors `"vector"`, and bare range selectors
/// `"matrix"`; `at_ms` stamps scalar and vector samples (they carry no
/// timestamp of their own).
pub fn instant_response(value: &Value, at_ms: u64) -> String {
    match value {
        Value::Scalar(v) => success("scalar", sample_pair(at_ms, *v)),
        Value::Vector(samples) => {
            let result = samples
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("metric".to_string(), metric_object(s.name.as_deref(), &s.labels)),
                        ("value".to_string(), sample_pair(at_ms, s.value)),
                    ])
                })
                .collect();
            success("vector", Json::Array(result))
        }
        Value::Matrix(series) => success("matrix", matrix_result(series)),
    }
}

/// Renders a range-query result as a `resultType: "matrix"` success
/// response.
pub fn range_response(series: &[RangeSeries]) -> String {
    success("matrix", matrix_result(series))
}

fn matrix_result(series: &[RangeSeries]) -> Json {
    Json::Array(
        series
            .iter()
            .map(|s| {
                let values =
                    s.points.iter().map(|&(t, v)| sample_pair(t, v)).collect::<Vec<Json>>();
                Json::Object(vec![
                    ("metric".to_string(), metric_object(s.name.as_deref(), &s.labels)),
                    ("values".to_string(), Json::Array(values)),
                ])
            })
            .collect(),
    )
}

/// Renders an error response: `{"status":"error","errorType":...,
/// "error":...}`.  `error_type` follows the Prometheus vocabulary —
/// `"bad_data"` for malformed queries, `"internal"` for engine failures.
pub fn error_response(error_type: &str, message: &str) -> String {
    let envelope = Json::Object(vec![
        ("status".to_string(), Json::String("error".to_string())),
        ("errorType".to_string(), Json::String(error_type.to_string())),
        ("error".to_string(), Json::String(message.to_string())),
    ]);
    render(&envelope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::VectorSample;

    fn parse(text: &str) -> Json {
        serde_json::from_str(text).expect("rendered JSON must reparse")
    }

    #[test]
    fn vector_response_has_the_prometheus_shape() {
        let value = Value::Vector(vec![VectorSample {
            name: Some("up".to_string()),
            labels: Labels::from_pairs([("job", "sgx_exporter")]),
            value: 1.0,
        }]);
        let json = parse(&instant_response(&value, 5_000));
        assert_eq!(json.get("status").and_then(Json::as_str), Some("success"));
        let data = json.get("data").expect("data");
        assert_eq!(data.get("resultType").and_then(Json::as_str), Some("vector"));
        let result = data.get("result").and_then(Json::as_array).expect("result array");
        let metric = result[0].get("metric").expect("metric");
        assert_eq!(metric.get("__name__").and_then(Json::as_str), Some("up"));
        assert_eq!(metric.get("job").and_then(Json::as_str), Some("sgx_exporter"));
        let pair = result[0].get("value").and_then(Json::as_array).expect("value pair");
        assert_eq!(pair[0].as_f64(), Some(5.0));
        assert_eq!(pair[1].as_str(), Some("1"));
    }

    #[test]
    fn scalar_and_specials_render_as_strings() {
        let json = parse(&instant_response(&Value::Scalar(f64::INFINITY), 1_000));
        let pair = json
            .get("data")
            .and_then(|d| d.get("result"))
            .and_then(Json::as_array)
            .expect("scalar pair");
        assert_eq!(pair[1].as_str(), Some("+Inf"));
        assert_eq!(
            json.get("data").and_then(|d| d.get("resultType")).and_then(Json::as_str),
            Some("scalar")
        );
    }

    #[test]
    fn range_response_lists_per_series_values() {
        let series = vec![RangeSeries {
            name: None,
            labels: Labels::from_pairs([("node", "n1")]),
            points: vec![(5_000, 1.5), (10_000, 2.5)],
        }];
        let json = parse(&range_response(&series));
        let data = json.get("data").expect("data");
        assert_eq!(data.get("resultType").and_then(Json::as_str), Some("matrix"));
        let result = data.get("result").and_then(Json::as_array).expect("result");
        let metric = result[0].get("metric").expect("metric");
        assert!(metric.get("__name__").is_none(), "dropped names stay dropped");
        let values = result[0].get("values").and_then(Json::as_array).expect("values");
        assert_eq!(values.len(), 2);
        assert_eq!(values[1].as_array().and_then(|p| p[0].as_f64()), Some(10.0));
        assert_eq!(values[1].as_array().and_then(|p| p[1].as_str()), Some("2.5"));
    }

    #[test]
    fn error_response_carries_type_and_message() {
        let json = parse(&error_response("bad_data", "parse error at 1:3"));
        assert_eq!(json.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(json.get("errorType").and_then(Json::as_str), Some("bad_data"));
        assert_eq!(json.get("error").and_then(Json::as_str), Some("parse error at 1:3"));
    }
}
