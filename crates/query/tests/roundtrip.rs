//! Property test: for generated ASTs, `parse(expr.to_string()) == expr`.
//!
//! The generator covers every expression form (selectors with all matcher
//! kinds, range windows, all range functions including the quantile
//! parameter, aggregations with `by`/`without` grouping, nested binary
//! arithmetic and comparisons) while avoiding the two documented
//! non-round-trippable values: non-finite scalar literals and
//! `NotEquals(_, "")` matchers (which canonicalise to `Exists`).

use proptest::TestRng;
use teemon_query::{parse, BinOp, Expr, Grouping, RangeFunc};
use teemon_tsdb::{AggregateOp, LabelMatch, Selector};

const METRIC_NAMES: [&str; 6] =
    ["sgx_nr_free_pages", "teemon_syscalls_total", "up", "node:syscalls:rate5m", "_hidden", "m0"];
const LABEL_NAMES: [&str; 5] = ["node", "syscall", "job", "instance", "pod_name"];
const LABEL_VALUES: [&str; 6] =
    ["n1", "redis-server", "", "with \"quotes\"", "back\\slash", "multi\nline"];
const AGG_OPS: [AggregateOp; 5] =
    [AggregateOp::Sum, AggregateOp::Avg, AggregateOp::Min, AggregateOp::Max, AggregateOp::Count];
const BIN_OPS: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Gt,
    BinOp::Lt,
    BinOp::Ge,
    BinOp::Le,
];
const WINDOWS_MS: [u64; 6] = [250, 1_000, 30_000, 90_000, 300_000, 5_400_000];

fn pick<T: Copy>(rng: &mut TestRng, options: &[T]) -> T {
    options[rng.below(options.len() as u64) as usize]
}

fn gen_number(rng: &mut TestRng) -> f64 {
    // Finite, mixed-sign, mixed-precision scalars (Rust's `Display` for f64
    // round-trips any finite value through `parse`).
    let raw = rng.below(2_000_000) as i64 - 1_000_000;
    raw as f64 / 128.0
}

fn gen_selector(rng: &mut TestRng) -> Selector {
    let name = if rng.below(5) == 0 { None } else { Some(pick(rng, &METRIC_NAMES).to_string()) };
    let matcher_count =
        if name.is_none() { 1 + rng.below(3) as usize } else { rng.below(3) as usize };
    let matchers = (0..matcher_count)
        .map(|_| {
            let label = pick(rng, &LABEL_NAMES).to_string();
            match rng.below(3) {
                0 => LabelMatch::Equals(label, pick(rng, &LABEL_VALUES).to_string()),
                1 => {
                    // Avoid NotEquals(_, "") — it canonicalises to Exists.
                    let value = loop {
                        let v = pick(rng, &LABEL_VALUES);
                        if !v.is_empty() {
                            break v;
                        }
                    };
                    LabelMatch::NotEquals(label, value.to_string())
                }
                _ => LabelMatch::Exists(label),
            }
        })
        .collect();
    Selector { name, matchers }
}

fn gen_range(rng: &mut TestRng) -> Expr {
    Expr::Range { selector: gen_selector(rng), window_ms: pick(rng, &WINDOWS_MS) }
}

fn gen_call(rng: &mut TestRng) -> Expr {
    let func = pick(
        rng,
        &[
            RangeFunc::Rate,
            RangeFunc::Increase,
            RangeFunc::AvgOverTime,
            RangeFunc::MinOverTime,
            RangeFunc::MaxOverTime,
            RangeFunc::SumOverTime,
            RangeFunc::CountOverTime,
            RangeFunc::QuantileOverTime,
            RangeFunc::LastOverTime,
        ],
    );
    let param = func.takes_parameter().then(|| rng.below(101) as f64 / 100.0);
    Expr::Call { func, param, arg: Box::new(gen_range(rng)) }
}

fn gen_grouping(rng: &mut TestRng) -> Grouping {
    let count = rng.below(3) as usize;
    let mut labels: Vec<String> = (0..count).map(|_| pick(rng, &LABEL_NAMES).to_string()).collect();
    labels.dedup();
    match rng.below(3) {
        0 => Grouping::None,
        1 => Grouping::By(labels),
        _ => Grouping::Without(labels),
    }
}

/// Generates an expression with bounded nesting depth.
fn gen_expr(rng: &mut TestRng, depth: u32) -> Expr {
    let choice = if depth == 0 { rng.below(3) } else { rng.below(6) };
    match choice {
        0 => Expr::Number(gen_number(rng)),
        1 => Expr::Selector(gen_selector(rng)),
        2 => gen_call(rng),
        3 => Expr::Aggregate {
            op: pick(rng, &AGG_OPS),
            grouping: gen_grouping(rng),
            expr: Box::new(gen_expr(rng, depth - 1)),
        },
        4 => gen_range(rng),
        _ => Expr::Binary {
            op: pick(rng, &BIN_OPS),
            lhs: Box::new(gen_expr(rng, depth - 1)),
            rhs: Box::new(gen_expr(rng, depth - 1)),
        },
    }
}

#[test]
fn generated_asts_round_trip_through_display() {
    let mut rng = TestRng::deterministic("teeql-ast-roundtrip");
    for case in 0..512 {
        let expr = gen_expr(&mut rng, 4);
        let printed = expr.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("case {case}: `{printed}` failed to parse: {err}"));
        assert_eq!(reparsed, expr, "case {case}: `{printed}` reparsed to a different tree");
        // Printing is a fixpoint: the reparsed tree prints identically.
        assert_eq!(reparsed.to_string(), printed, "case {case}");
    }
}

#[test]
fn generated_selectors_round_trip_through_display() {
    let mut rng = TestRng::deterministic("teeql-selector-roundtrip");
    for case in 0..512 {
        let selector = gen_selector(&mut rng);
        let printed = selector.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("case {case}: `{printed}` failed to parse: {err}"));
        assert_eq!(reparsed, Expr::Selector(selector), "case {case}: `{printed}`");
    }
}

proptest::proptest! {
    #[test]
    fn arbitrary_durations_round_trip(ms in 0u64..10_000_000) {
        let printed = teemon_query::format_duration_ms(ms);
        let query = format!("m[{printed}]");
        match parse(&query) {
            Ok(Expr::Range { window_ms, .. }) => proptest::prop_assert_eq!(window_ms, ms),
            other => panic!("`{query}` did not parse as a range: {other:?}"),
        }
    }
}
