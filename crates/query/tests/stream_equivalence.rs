//! Property test: the streaming range evaluator must be indistinguishable
//! (up to floating-point re-association in the running sums) from the
//! per-step oracle it replaced, over generated series contents, expressions,
//! ranges and step sizes.

use proptest::proptest;
use teemon_metrics::Labels;
use teemon_query::stream::{plan, ranges_equivalent};
use teemon_query::{parse, QueryEngine};
use teemon_tsdb::{TimeSeriesDb, TsdbConfig};

/// One generated series: metric selector, node selector and sample shapes.
type SeriesSpec = (u8, u8, Vec<(u8, u16)>);

/// Builds a database from generated per-series shapes.  `chunk_size` is kept
/// tiny so sealed (compressed) chunks are exercised, not just the head.
fn build_db(series_specs: &[SeriesSpec]) -> TimeSeriesDb {
    let db = TimeSeriesDb::with_config(TsdbConfig {
        chunk_size: 7,
        retention_ms: u64::MAX,
        raw_chunks: false,
    });
    for (i, (metric_kind, node, samples)) in series_specs.iter().enumerate() {
        let metric = ["requests_total", "queue_depth", "free_pages"][*metric_kind as usize % 3];
        let labels =
            Labels::from_pairs([("node", format!("n{}", node % 3)), ("idx", format!("{i}"))]);
        let mut ts = u64::from(*node % 3) * 1_700; // stagger the series
        let mut counter = 0.0f64;
        for (gap, raw) in samples {
            ts += u64::from(gap % 4) * 2_500; // gap 0 → duplicate timestamp
            let value = match metric_kind % 3 {
                0 => {
                    // Counter with occasional resets.
                    if raw % 17 == 0 {
                        counter = f64::from(raw % 5);
                    } else {
                        counter += f64::from(raw % 100);
                    }
                    counter
                }
                1 => f64::from(*raw) / 7.0 - 4_000.0, // gauge, negative values
                _ => f64::from(raw % 512) * 0.25,
            };
            db.append(metric, &labels, ts, value);
        }
    }
    db
}

/// The streamable expression pool; `pick` selects, `w`/`q` parameterise.
fn build_query(pick: u8, w: u8, q: u8) -> String {
    let window = ["7s", "20s", "45s", "2m"][w as usize % 4];
    let quantile = f64::from(q % 11) / 10.0;
    match pick % 14 {
        0 => "requests_total".to_string(),
        1 => format!("rate(requests_total[{window}])"),
        2 => format!("increase(requests_total[{window}])"),
        3 => format!("avg_over_time(queue_depth[{window}])"),
        4 => format!("min_over_time(queue_depth[{window}])"),
        5 => format!("max_over_time(queue_depth[{window}])"),
        6 => format!("sum_over_time(free_pages[{window}])"),
        7 => format!("count_over_time(queue_depth[{window}])"),
        8 => format!("last_over_time(free_pages[{window}])"),
        9 => format!("quantile_over_time({quantile}, queue_depth[{window}])"),
        10 => format!("sum by (node) (rate(requests_total[{window}]))"),
        11 => "max without (idx) (queue_depth) * 3 - 1".to_string(),
        12 => format!("avg(sum_over_time(free_pages[{window}])) > 100"),
        _ => format!("count by (node) (increase(requests_total[{window}])) + 0.5"),
    }
}

proptest! {
    #[test]
    fn streaming_matches_per_step_oracle(
        series_specs in proptest::collection::vec(
            (0u8..6, 0u8..6, proptest::collection::vec((0u8..8, 0u16..u16::MAX), 1..40)),
            1..6,
        ),
        pick in 0u8..56,
        w in 0u8..8,
        q in 0u8..22,
        start in 0u64..120_000,
        span in 1u64..300_000,
        step in 1u64..40_000,
    ) {
        let db = build_db(&series_specs);
        let engine = QueryEngine::new(db.clone());
        let query = build_query(pick, w, q);
        let expr = parse(&query).unwrap();
        let end = start + span;

        // Every template must actually exercise the streaming path.
        let streamed = plan(&db, QueryEngine::DEFAULT_LOOKBACK_MS, &expr, start, end)
            .unwrap_or_else(|| panic!("`{query}` must stream"))
            .run(start, end, step);
        assert_eq!(engine.range(&expr, start, end, step).as_deref(), Ok(&streamed[..]));

        let oracle = engine.range_per_step(&expr, start, end, step).unwrap();
        assert!(
            ranges_equivalent(&streamed, &oracle),
            "`{query}` over [{start}, {end}] step {step} diverged\n\
             streamed: {streamed:?}\noracle: {oracle:?}"
        );
    }
}
