//! EXPLAIN/ANALYZE accuracy: the counters `QueryEngine::analyze` reports
//! must match ground truth computed independently — the per-step oracle for
//! the result shape, and direct storage inspection for the decode counter.

use teemon_metrics::Labels;
use teemon_query::{parse, PlanChoice, QueryEngine};
use teemon_tsdb::{Selector, TimeSeriesDb};

const NODES: [&str; 3] = ["n1", "n2", "n3"];

/// Counters every 5 s for 100 s on three nodes.
fn db() -> TimeSeriesDb {
    let db = TimeSeriesDb::new();
    for t in 0..=20u64 {
        for (i, node) in NODES.iter().enumerate() {
            db.append(
                "requests_total",
                &Labels::from_pairs([("node", *node)]),
                t * 5_000,
                t as f64 * 10.0 * (i + 1) as f64,
            );
        }
    }
    db
}

/// Ground truth for the streaming decode counter: every stored sample in
/// `[start - window, end]` is admitted (decoded) exactly once per window
/// machine, and when `end` lands on the step grid no read-ahead extends
/// past it.
fn samples_in(db: &TimeSeriesDb, selector: &Selector, start: u64, end: u64) -> u64 {
    db.query_range(selector, start, end).iter().map(|r| r.points.len() as u64).sum()
}

#[test]
fn analyze_decode_counter_matches_storage_ground_truth() {
    let db = db();
    let engine = QueryEngine::new(db.clone());
    let (start, end, step, window) = (30_000, 90_000, 15_000, 30_000);
    let analyze = engine
        .analyze("sum by (node) (rate(requests_total[30s]))", start, end, step)
        .expect("query runs");
    assert_eq!(analyze.explain.choice, PlanChoice::Streamed);
    let expected = samples_in(&db, &Selector::metric("requests_total"), start - window, end);
    assert_eq!(
        analyze.samples_decoded, expected,
        "each stored sample in [start - window, end] decodes exactly once"
    );
    assert!(analyze.window_rebuilds <= analyze.samples_decoded);
}

#[test]
fn analyze_result_counters_match_the_per_step_oracle() {
    let engine = QueryEngine::new(db());
    let (start, end, step) = (30_000, 90_000, 15_000);
    for query in [
        "sum by (node) (rate(requests_total[30s]))",
        "requests_total",
        "avg(requests_total) * 2",
        "requests_total + requests_total", // vector-vector: fallback path
    ] {
        let analyze = engine.analyze(query, start, end, step).expect("query runs");
        let expr = parse(query).expect("query parses");
        let oracle = engine.range_per_step(&expr, start, end, step).expect("oracle runs");
        assert_eq!(analyze.series_returned(), oracle.len(), "`{query}` series count vs oracle");
        assert_eq!(
            analyze.points_returned(),
            oracle.iter().map(|s| s.points.len() as u64).sum::<u64>(),
            "`{query}` point count vs oracle"
        );
        assert!(
            teemon_query::stream::ranges_equivalent(&analyze.result, &oracle),
            "`{query}` result vs oracle"
        );
        assert!(analyze.wall_seconds > 0.0);
    }
}

#[test]
fn fallback_analyze_reports_zero_decodes_and_the_reason() {
    let engine = QueryEngine::new(db());
    let analyze =
        engine.analyze("requests_total + requests_total", 30_000, 90_000, 15_000).unwrap();
    let PlanChoice::FallbackPerStep { reason } = analyze.explain.choice else {
        panic!("vector-vector matching must fall back");
    };
    assert!(reason.contains("vector-vector"), "{reason}");
    assert_eq!(analyze.samples_decoded, 0, "the per-step path does not stream-decode");
    assert_eq!(analyze.series_returned(), NODES.len());
}

#[test]
fn explain_series_counts_resolve_against_the_live_index() {
    let db = db();
    let engine = QueryEngine::new(db.clone());
    let explain = engine.explain("rate(requests_total[30s])", 0, 100_000).unwrap();
    assert_eq!(explain.root.series, NODES.len());
    // A selector that matches nothing explains as zero series, not an error.
    let none = engine.explain("no_such_metric", 0, 100_000).unwrap();
    assert_eq!(none.root.series, 0);
}
