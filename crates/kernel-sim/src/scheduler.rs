//! A small CPU scheduler model producing context switches.
//!
//! Figure 11(e)/(f) of the paper report context switches per PID and per host.
//! The simulation does not need a cycle-accurate CFS model — it needs a
//! round-robin run queue that produces context switches whenever a process
//! blocks (voluntary switches, e.g. Redis waiting on `epoll_wait` with few
//! connections) or exhausts its time slice (involuntary switches under load),
//! with the counts attributable to the right PID.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use teemon_sim_core::SimDuration;

use crate::process::Pid;

/// Why a context switch happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchKind {
    /// The running task blocked (I/O wait, futex, sleep).
    Voluntary,
    /// The running task was preempted at the end of its time slice.
    Involuntary,
}

/// Per-PID scheduling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Voluntary context switches.
    pub voluntary: u64,
    /// Involuntary context switches.
    pub involuntary: u64,
}

impl SchedStats {
    /// Total switches of either kind.
    pub fn total(&self) -> u64 {
        self.voluntary + self.involuntary
    }
}

/// A single-CPU round-robin run queue.
#[derive(Debug, Default)]
pub struct RunQueue {
    runnable: VecDeque<Pid>,
    current: Option<Pid>,
    time_slice: SimDuration,
    slice_used: SimDuration,
    stats: std::collections::BTreeMap<Pid, SchedStats>,
    total_switches: u64,
}

impl RunQueue {
    /// Creates a run queue with the given scheduling time slice.
    pub fn new(time_slice: SimDuration) -> Self {
        Self { time_slice, ..Self::default() }
    }

    /// Creates a run queue with a Linux-like 4 ms default time slice.
    pub fn with_defaults() -> Self {
        Self::new(SimDuration::from_millis(4))
    }

    /// Adds a process to the runnable set (no-op if already queued or running).
    pub fn wake(&mut self, pid: Pid) {
        if self.current == Some(pid) || self.runnable.contains(&pid) {
            return;
        }
        self.runnable.push_back(pid);
    }

    /// The currently running process.
    pub fn current(&self) -> Option<Pid> {
        self.current
    }

    /// Accounts `ran_for` of CPU time to the current process and preempts it
    /// if the time slice expired and another task is waiting.  Returns the PID
    /// pair `(switched_out, switched_in)` when a switch happened.
    pub fn tick(&mut self, ran_for: SimDuration) -> Option<(Pid, Pid)> {
        self.slice_used += ran_for;
        if self.slice_used < self.time_slice || self.runnable.is_empty() {
            return None;
        }
        let prev = self.current?;
        let next = self.runnable.pop_front()?;
        self.runnable.push_back(prev);
        self.record_switch(prev, SwitchKind::Involuntary);
        self.current = Some(next);
        self.slice_used = SimDuration::ZERO;
        Some((prev, next))
    }

    /// Blocks the current process (it left the CPU voluntarily) and switches
    /// to the next runnable one, if any.  Returns the new current process.
    pub fn block_current(&mut self) -> Option<Pid> {
        let prev = self.current.take();
        if let Some(prev) = prev {
            self.record_switch(prev, SwitchKind::Voluntary);
        }
        self.slice_used = SimDuration::ZERO;
        self.current = self.runnable.pop_front();
        self.current
    }

    /// Dispatches the next runnable process when the CPU is idle.
    pub fn dispatch_if_idle(&mut self) -> Option<Pid> {
        if self.current.is_none() {
            self.current = self.runnable.pop_front();
            self.slice_used = SimDuration::ZERO;
        }
        self.current
    }

    /// Records a context switch for `pid` without moving queue state; used by
    /// the kernel façade when switches are derived from events rather than
    /// from explicit run-queue transitions (e.g. `ksgxswapd` wakeups).
    pub fn record_switch(&mut self, pid: Pid, kind: SwitchKind) {
        let entry = self.stats.entry(pid).or_default();
        match kind {
            SwitchKind::Voluntary => entry.voluntary += 1,
            SwitchKind::Involuntary => entry.involuntary += 1,
        }
        self.total_switches += 1;
    }

    /// Per-PID statistics.
    pub fn stats(&self, pid: Pid) -> SchedStats {
        self.stats.get(&pid).copied().unwrap_or_default()
    }

    /// Host-wide switch count.
    pub fn total_switches(&self) -> u64 {
        self.total_switches
    }

    /// Number of runnable (waiting) processes.
    pub fn runnable_len(&self) -> usize {
        self.runnable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Pid = Pid::from_raw(1);
    const B: Pid = Pid::from_raw(2);
    const C: Pid = Pid::from_raw(3);

    #[test]
    fn dispatch_and_block_cycle() {
        let mut rq = RunQueue::with_defaults();
        rq.wake(A);
        rq.wake(B);
        assert_eq!(rq.dispatch_if_idle(), Some(A));
        assert_eq!(rq.current(), Some(A));
        // A blocks on I/O → voluntary switch to B.
        assert_eq!(rq.block_current(), Some(B));
        assert_eq!(rq.stats(A).voluntary, 1);
        assert_eq!(rq.stats(B).total(), 0);
        assert_eq!(rq.total_switches(), 1);
    }

    #[test]
    fn time_slice_preemption_is_involuntary() {
        let mut rq = RunQueue::new(SimDuration::from_millis(1));
        rq.wake(A);
        rq.wake(B);
        rq.dispatch_if_idle();
        assert!(rq.tick(SimDuration::from_micros(500)).is_none());
        let switch = rq.tick(SimDuration::from_micros(600)).unwrap();
        assert_eq!(switch, (A, B));
        assert_eq!(rq.stats(A).involuntary, 1);
        assert_eq!(rq.current(), Some(B));
        // A went back to the runnable queue.
        assert_eq!(rq.runnable_len(), 1);
    }

    #[test]
    fn no_preemption_without_competition() {
        let mut rq = RunQueue::new(SimDuration::from_millis(1));
        rq.wake(A);
        rq.dispatch_if_idle();
        assert!(rq.tick(SimDuration::from_secs(1)).is_none());
        assert_eq!(rq.stats(A).total(), 0);
    }

    #[test]
    fn wake_is_idempotent() {
        let mut rq = RunQueue::with_defaults();
        rq.wake(A);
        rq.wake(A);
        rq.dispatch_if_idle();
        rq.wake(A);
        assert_eq!(rq.runnable_len(), 0, "running task must not be queued again");
        rq.wake(B);
        rq.wake(C);
        assert_eq!(rq.runnable_len(), 2);
    }

    #[test]
    fn explicit_switch_recording() {
        let mut rq = RunQueue::with_defaults();
        rq.record_switch(C, SwitchKind::Voluntary);
        rq.record_switch(C, SwitchKind::Involuntary);
        assert_eq!(rq.stats(C).total(), 2);
        assert_eq!(rq.total_switches(), 2);
    }

    #[test]
    fn block_with_empty_queue_idles_cpu() {
        let mut rq = RunQueue::with_defaults();
        rq.wake(A);
        rq.dispatch_if_idle();
        assert_eq!(rq.block_current(), None);
        assert_eq!(rq.current(), None);
        rq.wake(A);
        assert_eq!(rq.dispatch_if_idle(), Some(A));
    }
}
