//! System call inventory and base costs.
//!
//! The paper's Figure 6 hinges on observing the *mix* of system calls a
//! SCONE-compiled Redis issues: `clock_gettime` and `futex` dominating
//! `read`/`write` indicated the bottleneck that a later SCONE commit fixed by
//! handling `clock_gettime` inside the enclave.  The simulation therefore
//! needs a realistic syscall inventory with stable numbers (used as labels)
//! and per-call base costs (used by the cost model for native execution).

use serde::{Deserialize, Serialize};
use teemon_sim_core::SimDuration;

/// System calls the simulated applications and frameworks issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Syscall {
    Read,
    Write,
    Open,
    Close,
    Mmap,
    Munmap,
    Brk,
    Futex,
    ClockGettime,
    EpollWait,
    EpollCtl,
    Accept,
    Recvfrom,
    Sendto,
    Socket,
    Bind,
    Listen,
    Fsync,
    Nanosleep,
    SchedYield,
    Getpid,
    Gettimeofday,
    Writev,
    Readv,
    Poll,
    Select,
    Fcntl,
    Stat,
    Fstat,
    Clone,
    Exit,
}

impl Syscall {
    /// All syscalls known to the simulation.
    pub const ALL: [Syscall; 31] = [
        Syscall::Read,
        Syscall::Write,
        Syscall::Open,
        Syscall::Close,
        Syscall::Mmap,
        Syscall::Munmap,
        Syscall::Brk,
        Syscall::Futex,
        Syscall::ClockGettime,
        Syscall::EpollWait,
        Syscall::EpollCtl,
        Syscall::Accept,
        Syscall::Recvfrom,
        Syscall::Sendto,
        Syscall::Socket,
        Syscall::Bind,
        Syscall::Listen,
        Syscall::Fsync,
        Syscall::Nanosleep,
        Syscall::SchedYield,
        Syscall::Getpid,
        Syscall::Gettimeofday,
        Syscall::Writev,
        Syscall::Readv,
        Syscall::Poll,
        Syscall::Select,
        Syscall::Fcntl,
        Syscall::Stat,
        Syscall::Fstat,
        Syscall::Clone,
        Syscall::Exit,
    ];

    /// Linux x86-64 syscall number (used as the `syscall_nr` label so the
    /// exported metrics look like the real eBPF exporter's output).
    pub fn number(&self) -> u32 {
        match self {
            Syscall::Read => 0,
            Syscall::Write => 1,
            Syscall::Open => 2,
            Syscall::Close => 3,
            Syscall::Stat => 4,
            Syscall::Fstat => 5,
            Syscall::Poll => 7,
            Syscall::Mmap => 9,
            Syscall::Munmap => 11,
            Syscall::Brk => 12,
            Syscall::Writev => 20,
            Syscall::Readv => 19,
            Syscall::Select => 23,
            Syscall::SchedYield => 24,
            Syscall::Nanosleep => 35,
            Syscall::Getpid => 39,
            Syscall::Socket => 41,
            Syscall::Accept => 43,
            Syscall::Recvfrom => 45,
            Syscall::Sendto => 44,
            Syscall::Bind => 49,
            Syscall::Listen => 50,
            Syscall::Fcntl => 72,
            Syscall::Fsync => 74,
            Syscall::Gettimeofday => 96,
            Syscall::Futex => 202,
            Syscall::ClockGettime => 228,
            Syscall::Exit => 60,
            Syscall::Clone => 56,
            Syscall::EpollWait => 232,
            Syscall::EpollCtl => 233,
        }
    }

    /// Canonical lowercase name (label value in exported metrics).
    pub fn name(&self) -> &'static str {
        match self {
            Syscall::Read => "read",
            Syscall::Write => "write",
            Syscall::Open => "open",
            Syscall::Close => "close",
            Syscall::Mmap => "mmap",
            Syscall::Munmap => "munmap",
            Syscall::Brk => "brk",
            Syscall::Futex => "futex",
            Syscall::ClockGettime => "clock_gettime",
            Syscall::EpollWait => "epoll_wait",
            Syscall::EpollCtl => "epoll_ctl",
            Syscall::Accept => "accept",
            Syscall::Recvfrom => "recvfrom",
            Syscall::Sendto => "sendto",
            Syscall::Socket => "socket",
            Syscall::Bind => "bind",
            Syscall::Listen => "listen",
            Syscall::Fsync => "fsync",
            Syscall::Nanosleep => "nanosleep",
            Syscall::SchedYield => "sched_yield",
            Syscall::Getpid => "getpid",
            Syscall::Gettimeofday => "gettimeofday",
            Syscall::Writev => "writev",
            Syscall::Readv => "readv",
            Syscall::Poll => "poll",
            Syscall::Select => "select",
            Syscall::Fcntl => "fcntl",
            Syscall::Stat => "stat",
            Syscall::Fstat => "fstat",
            Syscall::Clone => "clone",
            Syscall::Exit => "exit",
        }
    }

    /// Looks a syscall up by its canonical name.
    pub fn from_name(name: &str) -> Option<Syscall> {
        Self::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Base in-kernel service time of the call when issued natively (without
    /// SGX transition overhead).  Calibrated to rough Linux magnitudes: a
    /// `clock_gettime` through the vDSO is tens of nanoseconds, socket I/O is
    /// a couple of microseconds, `fsync` is dominated by the device.
    pub fn base_cost(&self) -> SimDuration {
        let nanos = match self {
            Syscall::ClockGettime | Syscall::Gettimeofday | Syscall::Getpid => 40,
            Syscall::SchedYield => 300,
            Syscall::Futex => 800,
            Syscall::Brk | Syscall::Fcntl | Syscall::Stat | Syscall::Fstat => 500,
            Syscall::Read | Syscall::Write | Syscall::Readv | Syscall::Writev => 1_200,
            Syscall::Recvfrom | Syscall::Sendto => 1_300,
            Syscall::EpollWait | Syscall::Poll | Syscall::Select => 1_000,
            Syscall::EpollCtl => 700,
            Syscall::Accept | Syscall::Socket | Syscall::Bind | Syscall::Listen => 2_500,
            Syscall::Open | Syscall::Close => 1_500,
            Syscall::Mmap | Syscall::Munmap => 2_000,
            Syscall::Fsync => 50_000,
            Syscall::Nanosleep => 1_000,
            Syscall::Clone => 30_000,
            Syscall::Exit => 5_000,
        };
        SimDuration::from_nanos(nanos)
    }

    /// `true` when the call usually blocks awaiting external events, which
    /// matters for the scheduler model (blocking calls yield the CPU and cause
    /// voluntary context switches).
    pub fn is_blocking(&self) -> bool {
        matches!(
            self,
            Syscall::EpollWait
                | Syscall::Poll
                | Syscall::Select
                | Syscall::Accept
                | Syscall::Recvfrom
                | Syscall::Futex
                | Syscall::Nanosleep
                | Syscall::Read
        )
    }
}

impl std::fmt::Display for Syscall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A syscall statistics table: per-syscall invocation counts, as an eBPF
/// program attached to `raw_syscalls:sys_enter` would aggregate them.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallTable {
    counts: std::collections::BTreeMap<Syscall, u64>,
}

impl SyscallTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation.
    pub fn record(&mut self, syscall: Syscall) {
        *self.counts.entry(syscall).or_insert(0) += 1;
    }

    /// Records `n` invocations.
    pub fn record_n(&mut self, syscall: Syscall, n: u64) {
        *self.counts.entry(syscall).or_insert(0) += n;
    }

    /// Count for one syscall.
    pub fn count(&self, syscall: Syscall) -> u64 {
        self.counts.get(&syscall).copied().unwrap_or(0)
    }

    /// Total invocations across all syscalls.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates over `(syscall, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (Syscall, u64)> + '_ {
        self.counts.iter().map(|(s, c)| (*s, *c))
    }

    /// The syscall with the highest count, if any.
    pub fn dominant(&self) -> Option<(Syscall, u64)> {
        self.counts.iter().max_by_key(|(_, c)| **c).map(|(s, c)| (*s, *c))
    }

    /// Merges another table into this one.
    pub fn merge(&mut self, other: &SyscallTable) {
        for (syscall, count) in other.iter() {
            self.record_n(syscall, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_are_unique() {
        let mut numbers: Vec<u32> = Syscall::ALL.iter().map(|s| s.number()).collect();
        numbers.sort_unstable();
        numbers.dedup();
        assert_eq!(numbers.len(), Syscall::ALL.len());
    }

    #[test]
    fn names_round_trip() {
        for syscall in Syscall::ALL {
            assert_eq!(Syscall::from_name(syscall.name()), Some(syscall));
            assert_eq!(syscall.to_string(), syscall.name());
        }
        assert_eq!(Syscall::from_name("not_a_syscall"), None);
    }

    #[test]
    fn clock_gettime_is_cheap_fsync_is_expensive() {
        assert!(Syscall::ClockGettime.base_cost() < Syscall::Read.base_cost());
        assert!(Syscall::Fsync.base_cost() > Syscall::Write.base_cost().mul(10));
    }

    #[test]
    fn known_linux_numbers() {
        assert_eq!(Syscall::Read.number(), 0);
        assert_eq!(Syscall::Write.number(), 1);
        assert_eq!(Syscall::Futex.number(), 202);
        assert_eq!(Syscall::ClockGettime.number(), 228);
    }

    #[test]
    fn blocking_classification() {
        assert!(Syscall::EpollWait.is_blocking());
        assert!(Syscall::Futex.is_blocking());
        assert!(!Syscall::ClockGettime.is_blocking());
        assert!(!Syscall::Write.is_blocking());
    }

    #[test]
    fn table_counts_and_dominant() {
        let mut table = SyscallTable::new();
        table.record_n(Syscall::ClockGettime, 370_000);
        table.record_n(Syscall::Read, 23);
        table.record_n(Syscall::Write, 23);
        table.record(Syscall::Futex);
        assert_eq!(table.count(Syscall::Read), 23);
        assert_eq!(table.total(), 370_047);
        assert_eq!(table.dominant().unwrap().0, Syscall::ClockGettime);

        let mut other = SyscallTable::new();
        other.record_n(Syscall::Read, 7);
        table.merge(&other);
        assert_eq!(table.count(Syscall::Read), 30);
    }

    #[test]
    fn empty_table_has_no_dominant() {
        assert!(SyscallTable::new().dominant().is_none());
        assert_eq!(SyscallTable::new().total(), 0);
    }
}
