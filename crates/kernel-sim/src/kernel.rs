//! The host-kernel façade.
//!
//! [`Kernel`] is the single object framework and application models interact
//! with to "execute": issuing syscalls, causing page faults and cache
//! activity, switching contexts and touching enclave memory.  Every such
//! interaction fires the corresponding instrumentation hook so that attached
//! eBPF-style programs (and therefore the TEEMon exporters) observe exactly
//! the events a real kernel would produce.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use teemon_sgx_sim::{AccessOutcome, CostModel, EnclaveId, EpcConfig, SgxDriver};
use teemon_sim_core::{SimClock, SimDuration};

use crate::hooks::{HookEvent, HookPoint, HookRegistry, PerfEventKind};
use crate::process::{Pid, ProcessKind, ProcessTable};
use crate::scheduler::{RunQueue, SwitchKind};
use crate::syscall::{Syscall, SyscallTable};

/// Whether a page fault was taken in user or kernel mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// `exceptions:page_fault_user`
    User,
    /// `exceptions:page_fault_kernel`
    Kernel,
}

/// Page-cache operations observable through kprobes (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageCacheOp {
    /// `add_to_page_cache_lru`
    AddToPageCacheLru,
    /// `mark_page_accessed`
    MarkPageAccessed,
    /// `account_page_dirtied`
    AccountPageDirtied,
    /// `mark_buffer_dirty`
    MarkBufferDirty,
}

impl PageCacheOp {
    /// The kprobed kernel function name.
    pub fn function(&self) -> &'static str {
        match self {
            PageCacheOp::AddToPageCacheLru => "add_to_page_cache_lru",
            PageCacheOp::MarkPageAccessed => "mark_page_accessed",
            PageCacheOp::AccountPageDirtied => "account_page_dirtied",
            PageCacheOp::MarkBufferDirty => "mark_buffer_dirty",
        }
    }

    fn hook(&self) -> HookPoint {
        HookPoint::Kprobe(self.function().to_string())
    }
}

/// Static kernel cost configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Direct cost of one context switch in nanoseconds.
    pub context_switch_ns: u64,
    /// Cost of servicing a minor page fault in nanoseconds.
    pub minor_fault_ns: u64,
    /// Number of CPU cores on the host (used by utilisation accounting).
    pub cpu_cores: u32,
    /// Host memory in bytes (node-exporter style metrics).
    pub memory_bytes: u64,
    /// Cost charged per attached eBPF handler invocation, in nanoseconds.
    ///
    /// This is the mechanism behind the paper's Figure 5: with no programs
    /// attached ("Monitoring OFF") instrumentation is free; attaching the
    /// SME's programs makes every traced event slightly more expensive, which
    /// is "half of the performance drop" the paper attributes to eBPF.
    pub ebpf_overhead_ns_per_handler: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            context_switch_ns: 2_000,
            minor_fault_ns: 1_200,
            cpu_cores: 8,
            memory_bytes: 32 * 1024 * 1024 * 1024,
            ebpf_overhead_ns_per_handler: 160,
        }
    }
}

/// Host-wide event counters (what `/proc/stat` and friends would expose).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Total syscalls dispatched.
    pub syscalls: u64,
    /// Total context switches.
    pub context_switches: u64,
    /// User-mode page faults.
    pub page_faults_user: u64,
    /// Kernel-mode page faults.
    pub page_faults_kernel: u64,
    /// Last-level cache references.
    pub llc_references: u64,
    /// Last-level cache misses.
    pub llc_misses: u64,
    /// Page-cache operations observed by kprobes.
    pub page_cache_ops: u64,
}

impl KernelCounters {
    /// Total page faults of either kind.
    pub fn page_faults_total(&self) -> u64 {
        self.page_faults_user + self.page_faults_kernel
    }
}

/// Per-process counters (what the PID-filtered eBPF programs observe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PidCounters {
    /// Syscalls issued by this PID.
    pub syscalls: u64,
    /// Context switches involving this PID.
    pub context_switches: u64,
    /// Page faults attributed to this PID.
    pub page_faults: u64,
    /// LLC misses attributed to this PID.
    pub llc_misses: u64,
    /// LLC references attributed to this PID.
    pub llc_references: u64,
}

struct KernelInner {
    counters: KernelCounters,
    per_pid: BTreeMap<Pid, PidCounters>,
    syscall_tables: BTreeMap<Pid, SyscallTable>,
    run_queue: RunQueue,
}

/// The simulated host kernel.  Clones share all state.
#[derive(Clone)]
pub struct Kernel {
    clock: SimClock,
    config: KernelConfig,
    processes: ProcessTable,
    hooks: HookRegistry,
    sgx: SgxDriver,
    ksgxswapd: Pid,
    inner: Arc<Mutex<KernelInner>>,
}

impl Kernel {
    /// Creates a kernel with default configuration, a default-sized EPC and a
    /// fresh clock.
    pub fn new() -> Self {
        Self::with_config(
            SimClock::new(),
            KernelConfig::default(),
            EpcConfig::default(),
            CostModel::default(),
        )
    }

    /// Creates a kernel with explicit configuration.
    pub fn with_config(
        clock: SimClock,
        config: KernelConfig,
        epc: EpcConfig,
        sgx_costs: CostModel,
    ) -> Self {
        let processes = ProcessTable::new();
        let sgx = SgxDriver::with_config(clock.clone(), epc, sgx_costs);
        let ksgxswapd = processes.spawn("ksgxswapd", ProcessKind::KernelThread, 1, clock.now());
        Self {
            clock,
            config,
            processes,
            hooks: HookRegistry::new(),
            sgx,
            ksgxswapd,
            inner: Arc::new(Mutex::new(KernelInner {
                counters: KernelCounters::default(),
                per_pid: BTreeMap::new(),
                syscall_tables: BTreeMap::new(),
                run_queue: RunQueue::with_defaults(),
            })),
        }
    }

    /// The simulation clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The kernel configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// The hook registry exporters attach their programs to.
    pub fn hooks(&self) -> &HookRegistry {
        &self.hooks
    }

    /// The process table.
    pub fn processes(&self) -> &ProcessTable {
        &self.processes
    }

    /// The SGX driver backing enclave-related activity.
    pub fn sgx_driver(&self) -> &SgxDriver {
        &self.sgx
    }

    /// PID of the `ksgxswapd` kernel thread.
    pub fn ksgxswapd_pid(&self) -> Pid {
        self.ksgxswapd
    }

    /// Spawns a process.
    pub fn spawn_process(&self, name: &str, kind: ProcessKind, threads: u32) -> Pid {
        self.processes.spawn(name, kind, threads, self.clock.now())
    }

    fn comm_of(&self, pid: Pid) -> String {
        self.processes.get(pid).map(|p| p.name).unwrap_or_else(|| "unknown".to_string())
    }

    fn event(&self, pid: Pid) -> HookEvent {
        HookEvent::basic(self.clock.now(), pid, self.comm_of(pid))
    }

    /// Converts a number of invoked instrumentation handlers into the time the
    /// traced code path spent executing them.
    fn instrumentation_cost(&self, handlers_invoked: usize) -> SimDuration {
        SimDuration::from_nanos(handlers_invoked as u64 * self.config.ebpf_overhead_ns_per_handler)
    }

    /// Dispatches a system call from `pid` and returns its in-kernel service
    /// time.  `from_enclave` marks calls that originate from enclave-backed
    /// execution (the SGX frameworks); the kernel-side cost is identical, but
    /// the flag propagates into the hook events so monitoring can attribute
    /// them.
    pub fn syscall(&self, pid: Pid, syscall: Syscall, from_enclave: bool) -> SimDuration {
        {
            let mut inner = self.inner.lock();
            inner.counters.syscalls += 1;
            inner.per_pid.entry(pid).or_default().syscalls += 1;
            inner.syscall_tables.entry(pid).or_default().record(syscall);
        }
        let event = self.event(pid).with_syscall(syscall).from_enclave(from_enclave);
        let mut handlers = self.hooks.fire(&HookPoint::sys_enter(), &event);
        handlers += self.hooks.fire(&HookPoint::sys_exit(), &event);
        syscall.base_cost() + self.instrumentation_cost(handlers)
    }

    /// Records a context switch attributed to `pid` and returns its cost.
    pub fn context_switch(&self, pid: Pid, kind: SwitchKind) -> SimDuration {
        {
            let mut inner = self.inner.lock();
            inner.counters.context_switches += 1;
            inner.per_pid.entry(pid).or_default().context_switches += 1;
            inner.run_queue.record_switch(pid, kind);
        }
        let event = self.event(pid);
        let mut handlers = self.hooks.fire(&HookPoint::sched_switch(), &event);
        handlers +=
            self.hooks.fire(&HookPoint::PerfEvent(PerfEventKind::SwContextSwitches), &event);
        SimDuration::from_nanos(self.config.context_switch_ns) + self.instrumentation_cost(handlers)
    }

    /// Records a page fault and returns its service time.
    pub fn page_fault(&self, pid: Pid, kind: FaultKind, from_enclave: bool) -> SimDuration {
        {
            let mut inner = self.inner.lock();
            match kind {
                FaultKind::User => inner.counters.page_faults_user += 1,
                FaultKind::Kernel => inner.counters.page_faults_kernel += 1,
            }
            inner.per_pid.entry(pid).or_default().page_faults += 1;
        }
        let detail = match kind {
            FaultKind::User => "user",
            FaultKind::Kernel => "kernel",
        };
        let event = self.event(pid).from_enclave(from_enclave).with_detail(detail);
        let hook = match kind {
            FaultKind::User => HookPoint::page_fault_user(),
            FaultKind::Kernel => HookPoint::page_fault_kernel(),
        };
        let mut handlers = self.hooks.fire(&hook, &event);
        handlers += self.hooks.fire(&HookPoint::PerfEvent(PerfEventKind::SwPageFaults), &event);
        SimDuration::from_nanos(self.config.minor_fault_ns) + self.instrumentation_cost(handlers)
    }

    /// Records last-level-cache activity for `pid` and returns the stall time
    /// caused by the misses.  `in_epc` applies the MEE overhead.
    pub fn cache_access(
        &self,
        pid: Pid,
        references: u64,
        misses: u64,
        in_epc: bool,
    ) -> SimDuration {
        let misses = misses.min(references);
        {
            let mut inner = self.inner.lock();
            inner.counters.llc_references += references;
            inner.counters.llc_misses += misses;
            let per_pid = inner.per_pid.entry(pid).or_default();
            per_pid.llc_references += references;
            per_pid.llc_misses += misses;
        }
        let mut handlers = 0;
        if references > 0 {
            let event = self
                .event(pid)
                .with_value(references)
                .with_detail("references")
                .from_enclave(in_epc);
            handlers +=
                self.hooks.fire(&HookPoint::PerfEvent(PerfEventKind::HwCacheReferences), &event);
        }
        if misses > 0 {
            let event =
                self.event(pid).with_value(misses).with_detail("misses").from_enclave(in_epc);
            handlers +=
                self.hooks.fire(&HookPoint::PerfEvent(PerfEventKind::HwCacheMisses), &event);
        }
        self.sgx.costs().llc_miss(in_epc).mul(misses) + self.instrumentation_cost(handlers)
    }

    /// Records a page-cache operation (kprobe) for `pid` and returns the
    /// instrumentation cost (zero when no program is attached).
    pub fn page_cache_op(&self, pid: Pid, op: PageCacheOp) -> SimDuration {
        self.inner.lock().counters.page_cache_ops += 1;
        let event = self.event(pid).with_detail(op.function());
        let handlers = self.hooks.fire(&op.hook(), &event);
        self.instrumentation_cost(handlers)
    }

    /// Touches one page of enclave memory on behalf of `pid`.
    ///
    /// On an EPC miss this produces the full cascade a real access produces:
    /// an asynchronous enclave exit, a user-mode page fault, possible
    /// `ksgxswapd` activity to evict victim pages (visible as host context
    /// switches), a page reload, and the corresponding latency.
    ///
    /// # Errors
    ///
    /// Propagates [`teemon_sgx_sim::SgxError`] for unknown enclaves or
    /// out-of-range pages.
    pub fn enclave_page_access(
        &self,
        pid: Pid,
        enclave: EnclaveId,
        page: u64,
    ) -> Result<(AccessOutcome, SimDuration), teemon_sgx_sim::SgxError> {
        let outcome = self.sgx.access_page(enclave, page)?;
        let mut latency = outcome.latency;
        if outcome.faulted {
            latency += self.page_fault(pid, FaultKind::User, true);
        }
        if outcome.evicted > 0 {
            // ksgxswapd woke up to write back victim pages: that is a kernel
            // thread being scheduled, i.e. host-visible context switches.
            latency += self.context_switch(self.ksgxswapd, SwitchKind::Voluntary);
            for _ in 0..outcome.evicted {
                self.page_fault(self.ksgxswapd, FaultKind::Kernel, true);
            }
        }
        Ok((outcome, latency))
    }

    /// Polls EPC pressure the way the kernel's reclaim path would and lets
    /// `ksgxswapd` evict pages proactively.  Returns pages evicted.
    pub fn poll_epc_pressure(&self) -> u64 {
        let (evicted, _latency) = self.sgx.run_swapd();
        if evicted > 0 {
            self.context_switch(self.ksgxswapd, SwitchKind::Voluntary);
        }
        evicted
    }

    /// Host-wide counters.
    pub fn counters(&self) -> KernelCounters {
        self.inner.lock().counters
    }

    /// Counters for one PID.
    pub fn pid_counters(&self, pid: Pid) -> PidCounters {
        self.inner.lock().per_pid.get(&pid).copied().unwrap_or_default()
    }

    /// The per-PID syscall histogram.
    pub fn syscall_table(&self, pid: Pid) -> SyscallTable {
        self.inner.lock().syscall_tables.get(&pid).cloned().unwrap_or_default()
    }

    /// Merged syscall histogram across every PID.
    pub fn syscall_table_host(&self) -> SyscallTable {
        let inner = self.inner.lock();
        let mut merged = SyscallTable::new();
        for table in inner.syscall_tables.values() {
            merged.merge(table);
        }
        merged
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("counters", &self.counters())
            .field("processes", &self.processes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebpf::{EbpfVm, PidFilter};

    fn kernel_with_epc_mib(mib: u64) -> Kernel {
        Kernel::with_config(
            SimClock::new(),
            KernelConfig::default(),
            EpcConfig::with_usable_mib(mib),
            CostModel::default(),
        )
    }

    #[test]
    fn syscalls_update_counters_and_tables() {
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
        for _ in 0..5 {
            kernel.syscall(pid, Syscall::ClockGettime, true);
        }
        kernel.syscall(pid, Syscall::Read, true);
        assert_eq!(kernel.counters().syscalls, 6);
        assert_eq!(kernel.pid_counters(pid).syscalls, 6);
        let table = kernel.syscall_table(pid);
        assert_eq!(table.count(Syscall::ClockGettime), 5);
        assert_eq!(table.dominant().unwrap().0, Syscall::ClockGettime);
        assert_eq!(kernel.syscall_table_host().total(), 6);
    }

    #[test]
    fn hooks_fire_for_kernel_activity() {
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("nginx", ProcessKind::User, 4);
        let mut vm = EbpfVm::new(kernel.hooks().clone());
        let maps = vm.load_standard_programs(PidFilter::All);

        kernel.syscall(pid, Syscall::Sendto, false);
        kernel.context_switch(pid, SwitchKind::Voluntary);
        kernel.page_fault(pid, FaultKind::User, false);
        kernel.cache_access(pid, 100, 7, false);
        kernel.page_cache_op(pid, PageCacheOp::MarkPageAccessed);

        assert_eq!(maps[0].get("sendto"), Some(1));
        assert_eq!(maps[1].get("host_total"), Some(1));
        assert_eq!(maps[2].get("host_total"), Some(1));
        assert_eq!(maps[2].get("user"), Some(1));
        assert_eq!(maps[3].get("references"), Some(100));
        assert_eq!(maps[3].get("misses"), Some(7));
        assert_eq!(maps[3].get("mark_page_accessed"), Some(1));
    }

    #[test]
    fn enclave_access_within_epc_is_silent() {
        let kernel = kernel_with_epc_mib(64);
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
        let (enclave, _) =
            kernel.sgx_driver().create_enclave(pid.as_u32(), 16 * 1024 * 1024, 8).unwrap();
        for page in 0..100 {
            let (outcome, _) = kernel.enclave_page_access(pid, enclave, page).unwrap();
            assert!(!outcome.faulted);
        }
        assert_eq!(kernel.counters().page_faults_total(), 0);
    }

    #[test]
    fn enclave_thrashing_produces_faults_and_swapd_switches() {
        let kernel = kernel_with_epc_mib(8);
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 8);
        let (enclave, _) =
            kernel.sgx_driver().create_enclave(pid.as_u32(), 16 * 1024 * 1024, 8).unwrap();
        let pages = SgxDriver::pages_for(16 * 1024 * 1024);
        let mut total_latency = SimDuration::ZERO;
        for round in 0..2 {
            for page in 0..pages {
                let (_, latency) = kernel.enclave_page_access(pid, enclave, page).unwrap();
                total_latency += latency;
                let _ = round;
            }
        }
        let counters = kernel.counters();
        assert!(counters.page_faults_user > 0, "thrashing must fault");
        assert!(counters.page_faults_kernel > 0, "ksgxswapd writeback faults");
        assert!(kernel.pid_counters(kernel.ksgxswapd_pid()).context_switches > 0);
        assert!(total_latency > SimDuration::from_millis(1));
        assert!(kernel.sgx_driver().stats().epc_pages_evicted > 0);
    }

    #[test]
    fn cache_misses_capped_by_references() {
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("mongod", ProcessKind::User, 4);
        kernel.cache_access(pid, 10, 100, false);
        assert_eq!(kernel.counters().llc_misses, 10);
        assert_eq!(kernel.counters().llc_references, 10);
        assert_eq!(kernel.pid_counters(pid).llc_misses, 10);
    }

    #[test]
    fn epc_pressure_polling_accounts_to_ksgxswapd() {
        let kernel = kernel_with_epc_mib(4);
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 2);
        kernel.sgx_driver().create_enclave(pid.as_u32(), 4 * 1024 * 1024 - 64 * 1024, 2).unwrap();
        let evicted = kernel.poll_epc_pressure();
        assert!(evicted > 0);
        assert_eq!(kernel.pid_counters(kernel.ksgxswapd_pid()).context_switches, 1);
        // No pressure → no work.
        let kernel2 = kernel_with_epc_mib(64);
        assert_eq!(kernel2.poll_epc_pressure(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let kernel = Kernel::new();
        let clone = kernel.clone();
        let pid = clone.spawn_process("p", ProcessKind::User, 1);
        clone.syscall(pid, Syscall::Write, false);
        assert_eq!(kernel.counters().syscalls, 1);
    }

    #[test]
    fn enclave_syscall_cost_is_kernel_side_only() {
        // The kernel charges only its own service time; enclave transition
        // costs are the framework's responsibility.
        let kernel = Kernel::new();
        let pid = kernel.spawn_process("redis-server", ProcessKind::Enclave, 1);
        let native = kernel.syscall(pid, Syscall::Write, false);
        let enclave = kernel.syscall(pid, Syscall::Write, true);
        assert_eq!(native, enclave);
    }
}
