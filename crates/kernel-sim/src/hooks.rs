//! Kernel instrumentation points: tracepoints, kprobes and perf events.
//!
//! Table 2 of the paper lists the exact hooks the SME attaches to:
//!
//! | metric type      | method            | field                                  |
//! |-------------------|-------------------|----------------------------------------|
//! | system calls      | kernel tracepoint | `raw_syscalls:sys_enter` / `sys_exit`  |
//! | cache metrics     | kprobes           | `add_to_page_cache_lru`, `mark_page_accessed`, `account_page_dirtied`, `mark_buffer_dirty` |
//! | cache metrics     | perf events       | `PERF_COUNT_HW_CACHE_MISSES`, `PERF_COUNT_HW_CACHE_REFERENCES` |
//! | context switches  | perf events       | `PERF_COUNT_SW_CONTEXT_SWITCHES`       |
//! | context switches  | kernel tracepoint | `sched:sched_switch`                   |
//! | page faults       | perf events       | `PERF_COUNT_SW_PAGE_FAULTS`            |
//! | page faults       | kernel tracepoints| `exceptions:page_fault_user` / `page_fault_kernel` |
//!
//! [`HookRegistry`] lets eBPF-style programs attach to these hook points; the
//! simulated [`crate::Kernel`] fires the hooks as the corresponding activity
//! happens.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_sim_core::SimTime;

use crate::process::Pid;
use crate::syscall::Syscall;

/// Hardware / software perf event kinds used by the SME.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerfEventKind {
    /// `PERF_COUNT_HW_CACHE_MISSES`
    HwCacheMisses,
    /// `PERF_COUNT_HW_CACHE_REFERENCES`
    HwCacheReferences,
    /// `PERF_COUNT_SW_CONTEXT_SWITCHES`
    SwContextSwitches,
    /// `PERF_COUNT_SW_PAGE_FAULTS`
    SwPageFaults,
}

impl PerfEventKind {
    /// The perf constant name (used in metric labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            PerfEventKind::HwCacheMisses => "PERF_COUNT_HW_CACHE_MISSES",
            PerfEventKind::HwCacheReferences => "PERF_COUNT_HW_CACHE_REFERENCES",
            PerfEventKind::SwContextSwitches => "PERF_COUNT_SW_CONTEXT_SWITCHES",
            PerfEventKind::SwPageFaults => "PERF_COUNT_SW_PAGE_FAULTS",
        }
    }
}

/// A kernel instrumentation point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HookPoint {
    /// A kernel tracepoint such as `raw_syscalls:sys_enter`.
    Tracepoint(String),
    /// A kprobe on a kernel function such as `add_to_page_cache_lru`.
    Kprobe(String),
    /// A perf hardware/software counter event.
    PerfEvent(PerfEventKind),
}

impl HookPoint {
    /// `raw_syscalls:sys_enter`
    pub fn sys_enter() -> Self {
        HookPoint::Tracepoint("raw_syscalls:sys_enter".into())
    }
    /// `raw_syscalls:sys_exit`
    pub fn sys_exit() -> Self {
        HookPoint::Tracepoint("raw_syscalls:sys_exit".into())
    }
    /// `sched:sched_switch`
    pub fn sched_switch() -> Self {
        HookPoint::Tracepoint("sched:sched_switch".into())
    }
    /// `exceptions:page_fault_user`
    pub fn page_fault_user() -> Self {
        HookPoint::Tracepoint("exceptions:page_fault_user".into())
    }
    /// `exceptions:page_fault_kernel`
    pub fn page_fault_kernel() -> Self {
        HookPoint::Tracepoint("exceptions:page_fault_kernel".into())
    }
    /// Kprobe on `add_to_page_cache_lru`.
    pub fn add_to_page_cache_lru() -> Self {
        HookPoint::Kprobe("add_to_page_cache_lru".into())
    }
    /// Kprobe on `mark_page_accessed`.
    pub fn mark_page_accessed() -> Self {
        HookPoint::Kprobe("mark_page_accessed".into())
    }
    /// Kprobe on `account_page_dirtied`.
    pub fn account_page_dirtied() -> Self {
        HookPoint::Kprobe("account_page_dirtied".into())
    }
    /// Kprobe on `mark_buffer_dirty`.
    pub fn mark_buffer_dirty() -> Self {
        HookPoint::Kprobe("mark_buffer_dirty".into())
    }

    /// Human readable name of the hook (`tracepoint:...`, `kprobe:...`, …).
    pub fn name(&self) -> String {
        match self {
            HookPoint::Tracepoint(n) => format!("tracepoint:{n}"),
            HookPoint::Kprobe(n) => format!("kprobe:{n}"),
            HookPoint::PerfEvent(k) => format!("perf_event:{}", k.as_str()),
        }
    }
}

/// The payload delivered to programs when a hook fires.
#[derive(Debug, Clone, PartialEq)]
pub struct HookEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Process the event is attributed to (0 for pure kernel context).
    pub pid: Pid,
    /// Command name of the process, when known.
    pub comm: String,
    /// Syscall involved, for syscall tracepoints.
    pub syscall: Option<Syscall>,
    /// Generic numeric payload: count of occurrences this event represents
    /// (perf counters may batch), bytes, etc.
    pub value: u64,
    /// `true` when the event originated from enclave-backed execution, which
    /// lets programs separate SGX-induced activity from native activity.
    pub from_enclave: bool,
    /// Hook-specific detail: the perf counter sub-kind (`"misses"`,
    /// `"references"`) or the kprobed function name.
    pub detail: Option<String>,
}

impl HookEvent {
    /// Creates a minimal event for `pid` at `at` with `value == 1`.
    pub fn basic(at: SimTime, pid: Pid, comm: impl Into<String>) -> Self {
        Self {
            at,
            pid,
            comm: comm.into(),
            syscall: None,
            value: 1,
            from_enclave: false,
            detail: None,
        }
    }

    /// Sets the syscall field.
    #[must_use]
    pub fn with_syscall(mut self, syscall: Syscall) -> Self {
        self.syscall = Some(syscall);
        self
    }

    /// Sets the value field.
    #[must_use]
    pub fn with_value(mut self, value: u64) -> Self {
        self.value = value;
        self
    }

    /// Marks the event as originating from enclave execution.
    #[must_use]
    pub fn from_enclave(mut self, yes: bool) -> Self {
        self.from_enclave = yes;
        self
    }

    /// Attaches a hook-specific detail string.
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }
}

/// A callback attached to a hook point.
pub type HookHandler = Arc<dyn Fn(&HookEvent) + Send + Sync>;

/// Registry of hook attachments.
///
/// Attaching is cheap and detaching is supported so the exporters can be
/// stopped (the "Monitoring OFF" configurations of §6.3 detach everything).
#[derive(Clone, Default)]
pub struct HookRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Default)]
struct RegistryInner {
    next_id: u64,
    handlers: HashMap<HookPoint, Vec<(u64, HookHandler)>>,
    fired: HashMap<HookPoint, u64>,
}

/// Identifier of one attachment, used for detaching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttachmentId(u64);

impl HookRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `handler` to `hook` and returns an id usable for detaching.
    pub fn attach(&self, hook: HookPoint, handler: HookHandler) -> AttachmentId {
        let mut inner = self.inner.write();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.handlers.entry(hook).or_default().push((id, handler));
        AttachmentId(id)
    }

    /// Detaches a previously attached handler.  Returns `true` when found.
    pub fn detach(&self, id: AttachmentId) -> bool {
        let mut inner = self.inner.write();
        let mut found = false;
        for handlers in inner.handlers.values_mut() {
            let before = handlers.len();
            handlers.retain(|(hid, _)| *hid != id.0);
            if handlers.len() != before {
                found = true;
            }
        }
        found
    }

    /// Detaches every handler (monitoring fully off).
    pub fn detach_all(&self) {
        self.inner.write().handlers.clear();
    }

    /// Number of handlers currently attached to `hook`.
    pub fn attached_count(&self, hook: &HookPoint) -> usize {
        self.inner.read().handlers.get(hook).map(|h| h.len()).unwrap_or(0)
    }

    /// Total number of attached handlers.
    pub fn total_attached(&self) -> usize {
        self.inner.read().handlers.values().map(Vec::len).sum()
    }

    /// Fires `hook` with `event`, invoking every attached handler.  Returns
    /// the number of handlers invoked (0 when nothing is attached — firing an
    /// unobserved hook is free, which is what keeps the "Monitoring OFF"
    /// baseline from paying instrumentation costs).
    pub fn fire(&self, hook: &HookPoint, event: &HookEvent) -> usize {
        let handlers: Vec<HookHandler> = {
            let mut inner = self.inner.write();
            *inner.fired.entry(hook.clone()).or_insert(0) += 1;
            match inner.handlers.get(hook) {
                Some(list) => list.iter().map(|(_, h)| Arc::clone(h)).collect(),
                None => Vec::new(),
            }
        };
        for handler in &handlers {
            handler(event);
        }
        handlers.len()
    }

    /// Number of times `hook` has fired since the registry was created.
    pub fn fire_count(&self, hook: &HookPoint) -> u64 {
        self.inner.read().fired.get(hook).copied().unwrap_or(0)
    }
}

impl std::fmt::Debug for HookRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HookRegistry").field("attached", &self.total_attached()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hook_names_match_table2() {
        assert_eq!(HookPoint::sys_enter().name(), "tracepoint:raw_syscalls:sys_enter");
        assert_eq!(HookPoint::add_to_page_cache_lru().name(), "kprobe:add_to_page_cache_lru");
        assert_eq!(
            HookPoint::PerfEvent(PerfEventKind::HwCacheMisses).name(),
            "perf_event:PERF_COUNT_HW_CACHE_MISSES"
        );
        assert_eq!(
            HookPoint::PerfEvent(PerfEventKind::SwContextSwitches).name(),
            "perf_event:PERF_COUNT_SW_CONTEXT_SWITCHES"
        );
    }

    #[test]
    fn attach_fire_detach() {
        let registry = HookRegistry::new();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        let id = registry.attach(
            HookPoint::sys_enter(),
            Arc::new(move |ev| {
                c2.fetch_add(ev.value, Ordering::Relaxed);
            }),
        );
        let event = HookEvent::basic(SimTime::ZERO, Pid::from_raw(1), "redis-server")
            .with_syscall(Syscall::Read)
            .with_value(3);
        assert_eq!(registry.fire(&HookPoint::sys_enter(), &event), 1);
        assert_eq!(count.load(Ordering::Relaxed), 3);
        assert_eq!(registry.fire_count(&HookPoint::sys_enter()), 1);

        assert!(registry.detach(id));
        assert!(!registry.detach(id));
        assert_eq!(registry.fire(&HookPoint::sys_enter(), &event), 0);
        assert_eq!(count.load(Ordering::Relaxed), 3);
        // Fires are still counted even with nothing attached.
        assert_eq!(registry.fire_count(&HookPoint::sys_enter()), 2);
    }

    #[test]
    fn multiple_handlers_all_fire() {
        let registry = HookRegistry::new();
        let count = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let c = count.clone();
            registry.attach(
                HookPoint::sched_switch(),
                Arc::new(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert_eq!(registry.attached_count(&HookPoint::sched_switch()), 3);
        registry.fire(
            &HookPoint::sched_switch(),
            &HookEvent::basic(SimTime::ZERO, Pid::from_raw(7), "nginx"),
        );
        assert_eq!(count.load(Ordering::Relaxed), 3);
        registry.detach_all();
        assert_eq!(registry.total_attached(), 0);
    }

    #[test]
    fn firing_unattached_hook_is_free_and_counted() {
        let registry = HookRegistry::new();
        let ev = HookEvent::basic(SimTime::ZERO, Pid::from_raw(1), "x");
        assert_eq!(registry.fire(&HookPoint::page_fault_user(), &ev), 0);
        assert_eq!(registry.fire_count(&HookPoint::page_fault_user()), 1);
        assert_eq!(registry.fire_count(&HookPoint::page_fault_kernel()), 0);
    }

    #[test]
    fn event_builder_sets_fields() {
        let ev = HookEvent::basic(SimTime::from_secs(1), Pid::from_raw(9), "mongod")
            .with_syscall(Syscall::Futex)
            .with_value(11)
            .from_enclave(true);
        assert_eq!(ev.syscall, Some(Syscall::Futex));
        assert_eq!(ev.value, 11);
        assert!(ev.from_enclave);
        assert_eq!(ev.comm, "mongod");
    }
}
