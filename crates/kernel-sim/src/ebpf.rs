//! A small eBPF-like execution environment.
//!
//! The real SME loads restricted C programs into the kernel's eBPF virtual
//! machine; they run on each hook invocation and aggregate into `BPF_MAP`
//! key/value stores that user-space exporters read (§3.3, §5.1).  The
//! simulation keeps the same architecture — programs attached to hooks,
//! aggregating into maps, read by exporters — but expresses the programs as
//! Rust closures operating on [`BpfMap`]s.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hooks::{HookEvent, HookPoint, HookRegistry, PerfEventKind};
use crate::process::Pid;

/// A generic key/value aggregation map shared between "kernel-side" programs
/// and "user-space" exporters, mirroring `BPF_MAP_TYPE_HASH` with `u64`
/// values.
#[derive(Debug, Clone, Default)]
pub struct BpfMap {
    name: String,
    entries: Arc<RwLock<BTreeMap<String, u64>>>,
}

impl BpfMap {
    /// Creates an empty named map.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), entries: Arc::new(RwLock::new(BTreeMap::new())) }
    }

    /// The map's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `delta` to `key` (creating it at zero first).
    pub fn add(&self, key: impl Into<String>, delta: u64) {
        *self.entries.write().entry(key.into()).or_insert(0) += delta;
    }

    /// Sets `key` to `value`.
    pub fn set(&self, key: impl Into<String>, value: u64) {
        self.entries.write().insert(key.into(), value);
    }

    /// Reads the value at `key`.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.entries.read().get(key).copied()
    }

    /// Returns all entries (the user-space read of the whole map).
    pub fn dump(&self) -> BTreeMap<String, u64> {
        self.entries.read().clone()
    }

    /// Sum of all values.
    pub fn total(&self) -> u64 {
        self.entries.read().values().sum()
    }

    /// Removes every entry.
    pub fn clear(&self) {
        self.entries.write().clear();
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }
}

/// A BPF program's handler body: reacts to a hook event by updating a map.
pub type BpfHandler = Arc<dyn Fn(&HookEvent, &BpfMap) + Send + Sync>;

/// A program attached to one or more hooks, aggregating into maps.
pub struct BpfProgram {
    /// Program name (mirrors the object file name in the real eBPF exporter).
    pub name: String,
    /// The hooks the program attaches to.
    pub hooks: Vec<HookPoint>,
    /// The handler body.
    pub body: BpfHandler,
    /// The map the program aggregates into.
    pub map: BpfMap,
}

impl std::fmt::Debug for BpfProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BpfProgram")
            .field("name", &self.name)
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

/// Optional PID filter compiled into the programs.
///
/// §6.3 notes that the eBPF overhead "can be reduced by … filtering metrics
/// like system calls and context switches to only a specified PID.  To
/// facilitate filtering, we provide a macro for some of the programs which can
/// be set in the eBPF configuration file"; [`PidFilter`] is that macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PidFilter {
    /// Observe every process (the default).
    #[default]
    All,
    /// Observe only the given PID.
    Only(Pid),
}

impl PidFilter {
    /// `true` when `pid` passes the filter.
    pub fn accepts(&self, pid: Pid) -> bool {
        match self {
            PidFilter::All => true,
            PidFilter::Only(only) => *only == pid,
        }
    }
}

/// The collection of loaded eBPF programs plus their attachment handles.
pub struct EbpfVm {
    registry: HookRegistry,
    programs: Vec<BpfProgram>,
    attachments: Vec<crate::hooks::AttachmentId>,
}

impl EbpfVm {
    /// Creates a VM that will attach programs to `registry`.
    pub fn new(registry: HookRegistry) -> Self {
        Self { registry, programs: Vec::new(), attachments: Vec::new() }
    }

    /// Loads a program and attaches it to its hooks.  Returns the program's
    /// map so callers can read the aggregation results.
    pub fn load(&mut self, program: BpfProgram) -> BpfMap {
        let map = program.map.clone();
        for hook in &program.hooks {
            let body = Arc::clone(&program.body);
            let map = program.map.clone();
            let id = self
                .registry
                .attach(hook.clone(), Arc::new(move |ev: &HookEvent| (body)(ev, &map)));
            self.attachments.push(id);
        }
        self.programs.push(program);
        map
    }

    /// Number of loaded programs.
    pub fn program_count(&self) -> usize {
        self.programs.len()
    }

    /// Names of loaded programs.
    pub fn program_names(&self) -> Vec<String> {
        self.programs.iter().map(|p| p.name.clone()).collect()
    }

    /// Returns the map of the program with the given name.
    pub fn map_of(&self, program_name: &str) -> Option<BpfMap> {
        self.programs.iter().find(|p| p.name == program_name).map(|p| p.map.clone())
    }

    /// Detaches every program (turning system-metric collection off).
    pub fn unload_all(&mut self) {
        for id in self.attachments.drain(..) {
            self.registry.detach(id);
        }
        self.programs.clear();
    }

    /// Loads the standard TEEMon program set (Table 2): syscall counts,
    /// context switches, page faults and cache statistics, optionally filtered
    /// to one PID.  Returns the maps in the order
    /// `[syscalls, context_switches, page_faults, cache]`.
    pub fn load_standard_programs(&mut self, filter: PidFilter) -> Vec<BpfMap> {
        let mut maps = Vec::new();

        // Program 1: per-syscall counters keyed by syscall name.
        maps.push(self.load(BpfProgram {
            name: "syscall_counts".into(),
            hooks: vec![HookPoint::sys_enter()],
            map: BpfMap::new("syscall_counts"),
            body: Arc::new(move |ev, map| {
                if !filter.accepts(ev.pid) {
                    return;
                }
                if let Some(syscall) = ev.syscall {
                    map.add(syscall.name(), ev.value);
                }
            }),
        }));

        // Program 2: context switches keyed by pid and a host-wide total.
        //
        // The paper instruments both the `sched:sched_switch` tracepoint and
        // the software perf counter; to avoid double counting, the program
        // aggregates only the tracepoint (the perf counter remains available
        // for custom programs).
        maps.push(self.load(BpfProgram {
            name: "context_switches".into(),
            hooks: vec![HookPoint::sched_switch()],
            map: BpfMap::new("context_switches"),
            body: Arc::new(move |ev, map| {
                // The host-wide total ignores the PID filter (Figure 11f is a
                // per-node metric); the per-PID keys respect it (Figure 11e).
                map.add("host_total", ev.value);
                if filter.accepts(ev.pid) {
                    map.add(format!("pid:{}", ev.pid), ev.value);
                }
            }),
        }));

        // Program 3: page faults split by user/kernel and enclave origin.
        maps.push(self.load(BpfProgram {
            name: "page_faults".into(),
            hooks: vec![HookPoint::page_fault_user(), HookPoint::page_fault_kernel()],
            map: BpfMap::new("page_faults"),
            body: Arc::new(move |ev, map| {
                map.add("host_total", ev.value);
                if let Some(detail) = &ev.detail {
                    map.add(detail.clone(), ev.value);
                }
                if ev.from_enclave {
                    map.add("enclave", ev.value);
                }
                if filter.accepts(ev.pid) {
                    map.add(format!("pid:{}", ev.pid), ev.value);
                }
            }),
        }));

        // Program 4: LLC references/misses plus page-cache kprobes, keyed by
        // the event detail ("misses", "references", kprobed function name).
        maps.push(self.load(BpfProgram {
            name: "cache_stats".into(),
            hooks: vec![
                HookPoint::PerfEvent(PerfEventKind::HwCacheMisses),
                HookPoint::PerfEvent(PerfEventKind::HwCacheReferences),
                HookPoint::add_to_page_cache_lru(),
                HookPoint::mark_page_accessed(),
                HookPoint::account_page_dirtied(),
                HookPoint::mark_buffer_dirty(),
            ],
            map: BpfMap::new("cache_stats"),
            body: Arc::new(move |ev, map| {
                let key = ev.detail.clone().unwrap_or_else(|| "other".to_string());
                map.add(key, ev.value);
            }),
        }));

        maps
    }
}

impl std::fmt::Debug for EbpfVm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EbpfVm").field("programs", &self.program_count()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall::Syscall;
    use teemon_sim_core::SimTime;

    fn ev(pid: u32) -> HookEvent {
        HookEvent::basic(SimTime::ZERO, Pid::from_raw(pid), "redis-server")
    }

    #[test]
    fn bpf_map_basic_operations() {
        let map = BpfMap::new("m");
        assert!(map.is_empty());
        map.add("read", 2);
        map.add("read", 3);
        map.set("write", 7);
        assert_eq!(map.get("read"), Some(5));
        assert_eq!(map.get("write"), Some(7));
        assert_eq!(map.get("missing"), None);
        assert_eq!(map.total(), 12);
        assert_eq!(map.len(), 2);
        assert_eq!(map.name(), "m");
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn map_clones_share_entries() {
        let map = BpfMap::new("shared");
        let clone = map.clone();
        clone.add("k", 1);
        assert_eq!(map.get("k"), Some(1));
    }

    #[test]
    fn standard_syscall_program_counts_by_name() {
        let registry = HookRegistry::new();
        let mut vm = EbpfVm::new(registry.clone());
        let maps = vm.load_standard_programs(PidFilter::All);
        let syscall_map = &maps[0];

        registry.fire(&HookPoint::sys_enter(), &ev(1).with_syscall(Syscall::ClockGettime));
        registry.fire(&HookPoint::sys_enter(), &ev(1).with_syscall(Syscall::ClockGettime));
        registry.fire(&HookPoint::sys_enter(), &ev(2).with_syscall(Syscall::Read));
        assert_eq!(syscall_map.get("clock_gettime"), Some(2));
        assert_eq!(syscall_map.get("read"), Some(1));
        assert_eq!(vm.program_count(), 4);
        assert!(vm.program_names().contains(&"page_faults".to_string()));
        assert!(vm.map_of("cache_stats").is_some());
        assert!(vm.map_of("nope").is_none());
    }

    #[test]
    fn pid_filter_limits_per_pid_keys() {
        let registry = HookRegistry::new();
        let mut vm = EbpfVm::new(registry.clone());
        let maps = vm.load_standard_programs(PidFilter::Only(Pid::from_raw(1)));
        let switches = &maps[1];

        registry.fire(&HookPoint::sched_switch(), &ev(1));
        registry.fire(&HookPoint::sched_switch(), &ev(2));
        assert_eq!(switches.get("pid:1"), Some(1));
        assert_eq!(switches.get("pid:2"), None);
        // Host total sees both.
        assert_eq!(switches.get("host_total"), Some(2));
    }

    #[test]
    fn page_fault_program_tracks_enclave_share() {
        let registry = HookRegistry::new();
        let mut vm = EbpfVm::new(registry.clone());
        let maps = vm.load_standard_programs(PidFilter::All);
        let faults = &maps[2];

        registry.fire(&HookPoint::page_fault_user(), &ev(1).from_enclave(true));
        registry.fire(&HookPoint::page_fault_user(), &ev(1));
        registry.fire(&HookPoint::page_fault_kernel(), &ev(0));
        assert_eq!(faults.get("host_total"), Some(3));
        assert_eq!(faults.get("enclave"), Some(1));
        assert_eq!(faults.get("pid:1"), Some(2));
    }

    #[test]
    fn unload_all_detaches_programs() {
        let registry = HookRegistry::new();
        let mut vm = EbpfVm::new(registry.clone());
        let maps = vm.load_standard_programs(PidFilter::All);
        assert!(registry.total_attached() > 0);
        vm.unload_all();
        assert_eq!(registry.total_attached(), 0);
        assert_eq!(vm.program_count(), 0);
        registry.fire(&HookPoint::sys_enter(), &ev(1).with_syscall(Syscall::Read));
        assert!(maps[0].is_empty(), "detached program must not observe events");
    }

    #[test]
    fn custom_program_can_be_loaded() {
        let registry = HookRegistry::new();
        let mut vm = EbpfVm::new(registry.clone());
        let map = vm.load(BpfProgram {
            name: "futex_only".into(),
            hooks: vec![HookPoint::sys_enter()],
            map: BpfMap::new("futex_only"),
            body: Arc::new(|ev, map| {
                if ev.syscall == Some(Syscall::Futex) {
                    map.add("futex", ev.value);
                }
            }),
        });
        registry.fire(&HookPoint::sys_enter(), &ev(3).with_syscall(Syscall::Futex));
        registry.fire(&HookPoint::sys_enter(), &ev(3).with_syscall(Syscall::Read));
        assert_eq!(map.get("futex"), Some(1));
        assert_eq!(map.len(), 1);
    }
}
