//! Process and thread bookkeeping for the simulated host.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use teemon_sim_core::SimTime;

/// A process identifier on the simulated host.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Pid(u32);

impl Pid {
    /// Constructs a PID from its raw value.
    pub const fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// Raw numeric value.
    pub const fn as_u32(&self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Classification of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessKind {
    /// Ordinary user-space process.
    User,
    /// User-space process whose main work runs inside an SGX enclave.
    Enclave,
    /// Kernel thread (e.g. `ksgxswapd`, `kswapd0`).
    KernelThread,
}

/// Metadata about a simulated process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessInfo {
    /// The process id.
    pub pid: Pid,
    /// Command name (what `/proc/<pid>/comm` would show).
    pub name: String,
    /// Process classification.
    pub kind: ProcessKind,
    /// Number of threads.
    pub threads: u32,
    /// Creation time.
    pub started_at: SimTime,
    /// Whether the process is still alive.
    pub alive: bool,
}

/// The host's process table.  Clones share state.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    inner: Arc<RwLock<ProcessTableInner>>,
}

#[derive(Debug, Default)]
struct ProcessTableInner {
    next_pid: u32,
    processes: BTreeMap<Pid, ProcessInfo>,
}

impl ProcessTable {
    /// Creates an empty process table; PIDs start at 100 to leave room for
    /// "well known" kernel threads registered explicitly.
    pub fn new() -> Self {
        let table = Self::default();
        table.inner.write().next_pid = 100;
        table
    }

    /// Registers a new process and returns its PID.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        kind: ProcessKind,
        threads: u32,
        now: SimTime,
    ) -> Pid {
        let mut inner = self.inner.write();
        let pid = Pid::from_raw(inner.next_pid);
        inner.next_pid += 1;
        inner.processes.insert(
            pid,
            ProcessInfo {
                pid,
                name: name.into(),
                kind,
                threads: threads.max(1),
                started_at: now,
                alive: true,
            },
        );
        pid
    }

    /// Marks a process as exited.  Returns `false` for unknown PIDs.
    pub fn exit(&self, pid: Pid) -> bool {
        match self.inner.write().processes.get_mut(&pid) {
            Some(p) => {
                p.alive = false;
                true
            }
            None => false,
        }
    }

    /// Looks up process metadata.
    pub fn get(&self, pid: Pid) -> Option<ProcessInfo> {
        self.inner.read().processes.get(&pid).cloned()
    }

    /// Finds the first live process with the given command name.
    pub fn find_by_name(&self, name: &str) -> Option<ProcessInfo> {
        self.inner.read().processes.values().find(|p| p.alive && p.name == name).cloned()
    }

    /// All live processes.
    pub fn live(&self) -> Vec<ProcessInfo> {
        self.inner.read().processes.values().filter(|p| p.alive).cloned().collect()
    }

    /// Total number of processes ever registered.
    pub fn len(&self) -> usize {
        self.inner.read().processes.len()
    }

    /// `true` when no process has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_increasing_pids() {
        let table = ProcessTable::new();
        let a = table.spawn("redis-server", ProcessKind::Enclave, 8, SimTime::ZERO);
        let b = table.spawn("nginx", ProcessKind::User, 4, SimTime::from_secs(1));
        assert!(b > a);
        assert_eq!(table.get(a).unwrap().name, "redis-server");
        assert_eq!(table.get(b).unwrap().threads, 4);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn exit_marks_dead_but_keeps_record() {
        let table = ProcessTable::new();
        let pid = table.spawn("memtier", ProcessKind::User, 8, SimTime::ZERO);
        assert!(table.exit(pid));
        assert!(!table.get(pid).unwrap().alive);
        assert!(table.live().is_empty());
        assert!(!table.exit(Pid::from_raw(9999)));
    }

    #[test]
    fn find_by_name_ignores_dead_processes() {
        let table = ProcessTable::new();
        let first = table.spawn("redis-server", ProcessKind::Enclave, 8, SimTime::ZERO);
        table.exit(first);
        assert!(table.find_by_name("redis-server").is_none());
        let second = table.spawn("redis-server", ProcessKind::Enclave, 8, SimTime::ZERO);
        assert_eq!(table.find_by_name("redis-server").unwrap().pid, second);
    }

    #[test]
    fn threads_are_at_least_one() {
        let table = ProcessTable::new();
        let pid = table.spawn("ksgxswapd", ProcessKind::KernelThread, 0, SimTime::ZERO);
        assert_eq!(table.get(pid).unwrap().threads, 1);
    }

    #[test]
    fn clones_share_state() {
        let table = ProcessTable::new();
        let clone = table.clone();
        clone.spawn("p", ProcessKind::User, 1, SimTime::ZERO);
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }
}
