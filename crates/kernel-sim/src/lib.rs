//! Linux kernel substrate simulation.
//!
//! TEEMon's System Metrics Exporter (SME) attaches small eBPF programs to
//! kernel tracepoints, kprobes and perf events (Table 2 of the paper) and
//! aggregates the resulting events in BPF maps.  This crate reproduces the
//! kernel-side machinery those programs need:
//!
//! * [`Kernel`] — the host-kernel façade: process table, syscall dispatch,
//!   context switches, page faults, cache accesses and page-cache operations,
//!   each of which fires the corresponding [`hooks::HookPoint`],
//! * [`syscall::Syscall`] — the syscall inventory with per-call base costs,
//! * [`hooks`] — the tracepoint / kprobe / perf-event registry,
//! * [`ebpf`] — a small eBPF-like execution environment: programs attached to
//!   hooks, aggregating into [`ebpf::BpfMap`]s that user-space exporters read,
//! * [`scheduler`] — a round-robin run-queue model that produces context
//!   switches with realistic voluntary/involuntary split.
//!
//! The simulated kernel also understands enclave-backed processes: syscalls
//! issued from inside an enclave are charged the enclave-transition cost and
//! paging activity from the [`teemon_sgx_sim::SgxDriver`] surfaces as page
//! faults and `ksgxswapd` context switches at host scope, exactly the coupling
//! the paper's Figure 11 relies on.

#![warn(missing_docs)]

pub mod ebpf;
pub mod hooks;
pub mod kernel;
pub mod process;
pub mod scheduler;
pub mod syscall;

pub use ebpf::{BpfMap, BpfProgram, EbpfVm};
pub use hooks::{HookEvent, HookPoint, HookRegistry, PerfEventKind};
pub use kernel::{FaultKind, Kernel, KernelConfig, KernelCounters, PageCacheOp};
pub use process::{Pid, ProcessInfo, ProcessTable};
pub use scheduler::{RunQueue, SwitchKind};
pub use syscall::{Syscall, SyscallTable};
