//! End-to-end integration tests spanning the whole stack:
//! workload → kernel/SGX simulation → exporters → scraper → TSDB → analysis →
//! dashboards.

use teemon::{HostMonitor, MonitorBuilder, MonitoringMode};
use teemon_analysis::BottleneckKind;
use teemon_apps::{Application, RedisApp};
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams, SconeVersion};
use teemon_tsdb::{query, Selector};

fn run_workload(host: &HostMonitor, value_bytes: u64, requests: u64) -> Deployment {
    let app = RedisApp::paper_config(value_bytes);
    let mut deployment = Deployment::deploy(
        host.kernel(),
        FrameworkParams::scone(SconeVersion::Commit09fea91),
        app.name(),
        app.memory_bytes(),
        app.threads(),
        99,
    )
    .expect("deploy");
    let request = app.request(8, 320);
    let batches = 8;
    for _ in 0..batches {
        for _ in 0..(requests / batches) {
            deployment.execute(&request, 320);
        }
        host.scrape_tick();
    }
    deployment
}

#[test]
fn full_pipeline_from_workload_to_dashboard() {
    let host = MonitorBuilder::new("it-node").mode(MonitoringMode::Full).build();
    let deployment = run_workload(&host, 64, 2_400);

    // The aggregation database holds series from all four exporters.
    let db = host.db();
    assert!(db.series_count() > 20, "expected a rich series set, got {}", db.series_count());
    for metric in [
        "teemon_syscalls_total",
        "teemon_context_switches_total",
        "teemon_page_faults_total",
        "sgx_nr_free_pages",
        "sgx_pages_evicted_total",
        "node_memory_MemTotal_bytes",
        "up",
    ] {
        assert!(
            !db.query_instant(&Selector::metric(metric), u64::MAX).is_empty(),
            "metric {metric} missing from the TSDB"
        );
    }

    // Counter series are monotonically non-decreasing (scrapes of counters).
    let syscall_series = db.query_range(&Selector::metric("teemon_syscalls_total"), 0, u64::MAX);
    for series in &syscall_series {
        assert!(
            series.points.windows(2).all(|w| w[1].1 >= w[0].1),
            "counter series {} went backwards",
            series.labels
        );
    }

    // The per-second rate over the monitored window is positive.
    let totals: Vec<(u64, f64)> =
        query::aggregate_over_time(&syscall_series, query::AggregateOp::Sum);
    assert!(query::rate(&totals).unwrap_or(0.0) > 0.0);

    // The 105 MB database exceeds the EPC: the SGX exporter must have seen
    // evictions, and they must match what the driver reports.
    let evicted_metric: f64 = db
        .query_instant(&Selector::metric("sgx_pages_evicted_total"), u64::MAX)
        .iter()
        .map(|r| r.points.last().map(|(_, v)| *v).unwrap_or(0.0))
        .sum();
    let evicted_driver = host.kernel().sgx_driver().stats().epc_pages_evicted as f64;
    assert!(evicted_metric > 0.0);
    assert!(evicted_metric <= evicted_driver);

    // Dashboards render non-trivially from the scraped data.
    let sgx_dashboard = host.render_dashboard("SGX", 60).unwrap();
    assert!(sgx_dashboard.contains("EPC free pages"));
    assert!(sgx_dashboard.contains("System calls by type"));

    // PMAN sees the EPC thrashing.
    let findings = host.analyzer().diagnose_all(deployment.totals().requests as f64, 0, u64::MAX);
    assert!(
        findings.iter().any(|f| f.kind == BottleneckKind::EpcThrashing),
        "expected an EPC thrashing diagnosis, got {findings:?}"
    );
}

#[test]
fn small_database_produces_no_epc_findings() {
    let host = MonitorBuilder::new("it-node").mode(MonitoringMode::Full).build();
    let deployment = run_workload(&host, 32, 1_200);
    let findings = host.analyzer().diagnose_all(deployment.totals().requests as f64, 0, u64::MAX);
    assert!(
        !findings.iter().any(|f| f.kind == BottleneckKind::EpcThrashing),
        "78 MB database fits the EPC; found {findings:?}"
    );
}

#[test]
fn monitoring_off_observes_nothing_but_workload_still_runs() {
    let host = MonitorBuilder::new("it-node").mode(MonitoringMode::Off).build();
    let deployment = run_workload(&host, 32, 600);
    assert_eq!(deployment.totals().requests, 600 / 8 * 8);
    assert_eq!(host.db().series_count(), 0, "monitoring off must not collect anything");
    // The kernel still counted activity (it just was not exported).
    assert!(host.kernel().counters().syscalls > 0);
}

#[test]
fn framework_transparency_same_monitoring_for_all_frameworks() {
    // TEEMon's design goal 3: framework-agnostic.  The same monitoring stack
    // observes every framework without reconfiguration.
    for kind in FrameworkKind::ALL {
        let host = MonitorBuilder::new("it-node").mode(MonitoringMode::Full).build();
        let app = RedisApp::paper_config(32);
        let mut deployment = Deployment::deploy(
            host.kernel(),
            FrameworkParams::for_kind(kind),
            app.name(),
            app.memory_bytes(),
            app.threads(),
            3,
        )
        .unwrap();
        let request = app.request(8, 320);
        for _ in 0..400 {
            deployment.execute(&request, 320);
        }
        host.scrape_tick();
        let observed =
            host.db().query_instant(&Selector::metric("teemon_syscalls_total"), u64::MAX).len();
        assert!(observed > 0, "{kind}: no syscalls observed");
        // Enclave frameworks also show up in the SGX exporter.
        let enclaves: f64 = host
            .db()
            .query_instant(&Selector::metric("sgx_nr_enclaves"), u64::MAX)
            .iter()
            .map(|r| r.points.last().unwrap().1)
            .sum();
        assert_eq!(enclaves > 0.0, kind.uses_enclave(), "{kind}: enclave count mismatch");
    }
}
