//! Integration test for the TeeQL subsystem: a dashboard panel, a recording
//! rule and an alert rule all exercised through `MonitorBuilder` against a
//! live monitored workload.

use teemon_repro::analysis::Severity;
use teemon_repro::dashboard::Panel;
use teemon_repro::query::{parse, sgx_default_alerts, QueryEngine, RecordingRule, RuleGroup};
use teemon_repro::teemon::{MonitorBuilder, MonitoringMode};
use teemon_repro::tsdb::Selector;

#[test]
fn teeql_panel_recording_and_alert_rules_through_the_builder() {
    let mut rules = RuleGroup::new("teeql", 5_000).with_rule(RecordingRule::new(
        "node:syscalls:rate30s",
        parse("sum by (node) (rate(teemon_syscalls_total[30s]))").unwrap(),
    ));
    // The legacy SGX thresholds, compiled to TeeQL alert rules.  The
    // syscall-flood and eviction rules watch derived `*_per_second` metrics
    // the simulation does not emit, so only `epc_free_pages_low` can match
    // series here — and the host has far more than 512 free pages, so
    // nothing should fire.  A synthetic always-true alert proves firing.
    for alert in sgx_default_alerts(30_000) {
        rules = rules.with_rule(alert);
    }
    rules = rules.with_rule(
        teemon_repro::teemon::AlertRule::new(
            "pages_exist",
            parse("avg_over_time(sgx_nr_free_pages[30s]) > 0").unwrap(),
            Severity::Info,
        )
        .with_for_ms(10_000)
        .with_hint("synthetic: free pages observed"),
    );

    let host = MonitorBuilder::new("it-node")
        .mode(MonitoringMode::Full)
        .scrape_interval_ms(5_000)
        .with_rules(rules)
        .build();

    // Drive syscall activity through the monitored kernel.
    let pid = host.kernel().spawn_process(
        "redis-server",
        teemon_repro::kernel_sim::process::ProcessKind::Enclave,
        4,
    );
    for _ in 0..10 {
        for _ in 0..100 {
            host.kernel().syscall(pid, teemon_repro::kernel_sim::Syscall::Read, true);
        }
        host.run_scrape_loop(1);
    }

    // Recording rule: the derived series exists and is itself queryable.
    let derived = host.db().query_range(&Selector::metric("node:syscalls:rate30s"), 0, u64::MAX);
    assert_eq!(derived.len(), 1);
    assert_eq!(derived[0].labels.get("node"), Some("it-node"));
    let engine = QueryEngine::new(host.db().clone());
    let now = host.kernel().clock().now_millis();
    let requeried = engine.instant_query("max_over_time(node:syscalls:rate30s[30s])", now).unwrap();
    let samples = requeried.as_vector().expect("vector").to_vec();
    assert_eq!(samples.len(), 1);
    assert!(samples[0].value > 0.0, "derived rate is positive: {}", samples[0].value);

    // Alert rules: the synthetic rule held its `for` duration and fires; the
    // compiled SGX defaults stay quiet on a healthy host.
    let firing = host.rules().firing_alerts();
    assert_eq!(firing.len(), 1, "{firing:?}");
    assert_eq!(firing[0].rule, "pages_exist");
    assert!(firing[0].since_ms <= now.saturating_sub(10_000));

    // Dashboard panel in TeeQL expression mode over the same database.
    let panel =
        Panel::teeql("Syscall rate by node", "sum by (node) (rate(teemon_syscalls_total[30s]))")
            .with_unit("calls/s")
            .with_step_ms(5_000);
    let data = panel.evaluate(host.db(), 0, u64::MAX);
    assert!(!data.is_empty());
    assert!(data.current.unwrap() > 0.0);
    assert!(data.render(60).contains("Syscall rate by node"));

    // The standard SGX dashboard ships a TeeQL panel and renders end to end.
    let rendered = host.render_dashboard("SGX", 60).unwrap();
    assert!(rendered.contains("EPC eviction rate by node"));
}
