//! Failure-injection integration tests: failing scrape targets, counter
//! resets, node churn and misbehaving exporters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use teemon::ClusterMonitor;
use teemon_metrics::{FamilySnapshot, Labels, Registry};
use teemon_orchestrator::{Cluster, Node};
use teemon_tsdb::{
    query, MetricsEndpoint, ScrapeError, ScrapeTargetConfig, Scraper, Selector, TimeSeriesDb,
};

/// A typed endpoint that can be switched into a failing state at runtime.
struct FlakyEndpoint {
    registry: Registry,
    failing: Arc<AtomicBool>,
}

impl MetricsEndpoint for FlakyEndpoint {
    fn scrape(&self) -> Result<Vec<FamilySnapshot>, ScrapeError> {
        if self.failing.load(Ordering::Relaxed) {
            Err(ScrapeError::Unreachable("connection timed out".to_string()))
        } else {
            Ok(self.registry.gather())
        }
    }
}

#[test]
fn scraper_survives_target_failures_and_recovers() {
    let db = TimeSeriesDb::new();
    let scraper = Scraper::new(db.clone());
    let registry = Registry::new();
    let counter = registry.counter_family("events_total", "events");
    let failing = Arc::new(AtomicBool::new(false));
    scraper.add_target(
        ScrapeTargetConfig::new("flaky", "node-1:9999"),
        Arc::new(FlakyEndpoint { registry: registry.clone(), failing: failing.clone() }),
    );

    // Healthy scrapes.
    for round in 0..3u64 {
        counter.default_instance().inc_by(5.0);
        scraper.scrape_once(round * 5_000);
    }
    assert!(scraper.unhealthy_instances(15_000).is_empty());

    // The target starts failing: `up` flips to 0 but the scraper keeps going.
    failing.store(true, Ordering::Relaxed);
    for round in 3..6u64 {
        let outcomes = scraper.scrape_once(round * 5_000);
        assert!(!outcomes[0].up);
    }
    assert_eq!(scraper.unhealthy_instances(30_000), vec!["node-1:9999".to_string()]);

    // Recovery: data flows again, and previously collected data is intact.
    failing.store(false, Ordering::Relaxed);
    counter.default_instance().inc_by(5.0);
    scraper.scrape_once(30_000);
    assert!(scraper.unhealthy_instances(30_000).is_empty());
    let series = db.query_range(&Selector::metric("events_total"), 0, u64::MAX);
    assert_eq!(series.len(), 1);
    assert!(series[0].points.len() >= 4);
}

#[test]
fn counter_resets_are_handled_by_rate() {
    // A monitored process restarts: its counters reset to zero.  The stored
    // series reflects the reset and `rate`/`increase` still report the true
    // total increase.
    let db = TimeSeriesDb::new();
    let labels = Labels::from_pairs([("syscall", "read")]);
    let samples =
        [(0u64, 0.0), (5_000, 1_000.0), (10_000, 2_000.0), (15_000, 50.0), (20_000, 450.0)];
    for (ts, value) in samples {
        db.append("teemon_syscalls_total", &labels, ts, value);
    }
    let series = db.query_range(&Selector::metric("teemon_syscalls_total"), 0, u64::MAX);
    let increase = query::increase(&series[0].points).unwrap();
    assert_eq!(increase, 1_000.0 + 1_000.0 + 50.0 + 400.0);
}

#[test]
fn malformed_exporter_output_does_not_poison_the_db() {
    // An external target that only speaks the wire format feeds the scraper
    // through the text edge; its garbage must not poison typed ingestion.
    let db = TimeSeriesDb::new();
    let scraper = Scraper::new(db.clone());
    scraper.add_text_source(
        ScrapeTargetConfig::new("broken", "node-2:1234"),
        Arc::new(|| Ok("garbage {{{ not metrics".to_string())),
    );
    let registry = Registry::new();
    registry.gauge_family("good_metric", "fine").default_instance().set(1.0);
    scraper.add_target(
        ScrapeTargetConfig::new("good", "node-3:9100"),
        Arc::new(move || Ok(registry.gather())),
    );

    let outcomes = scraper.scrape_once(1_000);
    assert_eq!(outcomes.iter().filter(|o| o.up).count(), 1);
    assert_eq!(outcomes.iter().filter(|o| !o.up).count(), 1);
    // The good target's data made it in; the broken one contributed nothing
    // but its `up == 0` marker.
    assert_eq!(db.query_instant(&Selector::metric("good_metric"), u64::MAX).len(), 1);
    assert!(db.query_instant(&Selector::metric("garbage"), u64::MAX).is_empty());
}

#[test]
fn cluster_monitor_handles_node_churn() {
    let cluster = Cluster::with_nodes(3, 0);
    let mut monitor = ClusterMonitor::install(cluster.clone());
    assert_eq!(monitor.hosts().len(), 3);
    let baseline_endpoints = monitor.endpoints().len();

    // Two nodes die, one new node joins.
    cluster.set_ready("sgx-0", false);
    cluster.remove_node("sgx-1");
    cluster.add_node(Node::sgx("sgx-replacement"));
    let (added, removed) = monitor.reconcile();
    assert_eq!(added, 1);
    assert_eq!(removed, 2);
    assert_eq!(monitor.hosts().len(), 2);
    assert!(monitor.endpoints().len() < baseline_endpoints);

    // Everything that remains is scrapable: four exporters plus the
    // engine's own self-telemetry target per Full-mode host.
    assert_eq!(monitor.scrape_all(), monitor.hosts().len() * 5);

    // The failed node recovers.
    cluster.set_ready("sgx-0", true);
    let (added, removed) = monitor.reconcile();
    assert_eq!((added, removed), (1, 0));
    assert_eq!(monitor.hosts().len(), 3);
}
