//! Integration tests asserting the paper's headline quantitative claims hold
//! qualitatively in the reproduction (the "shape" checks of EXPERIMENTS.md).

use teemon::experiments;

const SAMPLES: u64 = 500;

#[test]
fn claim_overall_overhead_between_5_and_17_percent() {
    // §1/§6.3: "TEEMon's overhead ranges from 5% to 17%" — i.e. monitored
    // throughput between 83% and 95% of the unmonitored baseline.  Allow a
    // slightly wider band for the simulation's sampling noise.
    let rows = experiments::figure5(SAMPLES);
    for row in rows.iter().filter(|r| r.configuration == "Monitoring ON") {
        // MongoDB does far more application work per request, so its relative
        // overhead is the smallest both in the paper (≈5 %) and here (a few
        // percent); allow the band to extend slightly above 0.95 for it.
        assert!(
            (0.78..=0.985).contains(&row.normalized),
            "{}: monitored/unmonitored = {:.3}, expected roughly 0.83–0.95",
            row.app,
            row.normalized
        );
    }
    // And the eBPF programs account for a substantial part of the drop (§6.3
    // attributes about half of it to them).
    for app in ["mongodb", "nginx", "redis"] {
        let ebpf = rows
            .iter()
            .find(|r| r.app == app && r.configuration == "Monitoring OFF + eBPF ON")
            .unwrap()
            .normalized;
        let full = rows
            .iter()
            .find(|r| r.app == app && r.configuration == "Monitoring ON")
            .unwrap()
            .normalized;
        let ebpf_drop = 1.0 - ebpf;
        let full_drop = 1.0 - full;
        assert!(
            ebpf_drop >= 0.25 * full_drop,
            "{app}: eBPF share of the drop too small ({ebpf_drop:.3} of {full_drop:.3})"
        );
    }
}

#[test]
fn claim_framework_ranking_and_ratios() {
    // §6.5: SCONE ≈23% of native, SGX-LKL ≈10%, Graphene-SGX ≈1.6%.
    let rows = experiments::figure8_9(SAMPLES, &[320]);
    let kiops = |fw: &str| {
        rows.iter()
            .find(|r| r.framework == fw && r.database_mb == 78 && r.connections == 320)
            .unwrap()
            .kiops
    };
    let native = kiops("native");
    let scone = kiops("scone");
    let lkl = kiops("sgx-lkl");
    let graphene = kiops("graphene-sgx");

    let scone_ratio = scone / native;
    let lkl_ratio = lkl / native;
    let graphene_ratio = graphene / native;
    assert!((0.10..0.45).contains(&scone_ratio), "SCONE/native = {scone_ratio:.3}, paper ≈0.23");
    assert!((0.04..0.25).contains(&lkl_ratio), "SGX-LKL/native = {lkl_ratio:.3}, paper ≈0.10");
    assert!(graphene_ratio < 0.05, "Graphene/native = {graphene_ratio:.3}, paper ≈0.016");
    assert!(scone > lkl && lkl > graphene);
}

#[test]
fn claim_latency_ordering_at_320_connections() {
    // §6.5: at 320 connections, latency ≈2 ms native, ≈9 ms SCONE, ≈20 ms
    // SGX-LKL, ≈249 ms Graphene-SGX.  Check ordering and rough magnitudes.
    let rows = experiments::figure10(SAMPLES, &[320]);
    let latency = |fw: &str| rows.iter().find(|r| r.framework == fw).unwrap().latency_ms;
    let native = latency("native");
    let scone = latency("scone");
    let lkl = latency("sgx-lkl");
    let graphene = latency("graphene-sgx");
    assert!((0.5..6.0).contains(&native), "native latency {native:.2} ms, paper ≈2 ms");
    assert!((4.0..25.0).contains(&scone), "SCONE latency {scone:.2} ms, paper ≈9 ms");
    assert!((10.0..60.0).contains(&lkl), "SGX-LKL latency {lkl:.2} ms, paper ≈20 ms");
    assert!(graphene > 100.0, "Graphene latency {graphene:.2} ms, paper ≈249 ms");
    assert!(native < scone && scone < lkl && lkl < graphene);
}

#[test]
fn claim_clock_gettime_fix_doubles_redis_throughput() {
    // §6.4: commit 09fea91 handles clock_gettime inside the enclave and Redis
    // throughput goes from ≈268 K to ≈622 K IOP/s (≈2.3×).
    let rows = experiments::figure7(SAMPLES);
    let old = rows.iter().find(|r| r.configuration == "572bd1a5").unwrap().throughput_iops;
    let new = rows.iter().find(|r| r.configuration == "09fea91").unwrap().throughput_iops;
    let speedup = new / old;
    assert!((1.4..3.5).contains(&speedup), "speedup {speedup:.2}, paper ≈2.3×");
}

#[test]
fn claim_graphene_context_switch_blowup() {
    // §6.5 / Figure 11f: Graphene-SGX's host-wide context switches are up to
    // ~12× those of the other frameworks.
    let rows = experiments::figure11(SAMPLES);
    let cs = |fw: &str| {
        rows.iter()
            .find(|r| r.framework == fw && r.connections == 580 && r.database_mb == 105)
            .unwrap()
            .rates
            .context_switches_host
    };
    let graphene = cs("graphene-sgx");
    assert!(graphene > 3.0 * cs("native"));
    assert!(graphene > 3.0 * cs("scone"));
    assert!(graphene > 3.0 * cs("sgx-lkl"));
}
