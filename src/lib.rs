//! Umbrella crate for the TEEMon reproduction.
//!
//! This crate re-exports every workspace member so that the examples under
//! `examples/` and the integration tests under `tests/` can exercise the whole
//! stack through a single dependency.  Library users should depend on the
//! individual crates (most importantly [`teemon`]) directly.

pub use teemon;
pub use teemon_analysis as analysis;
pub use teemon_apps as apps;
pub use teemon_dashboard as dashboard;
pub use teemon_exporters as exporters;
pub use teemon_frameworks as frameworks;
pub use teemon_kernel_sim as kernel_sim;
pub use teemon_metrics as metrics;
pub use teemon_obs as obs;
pub use teemon_orchestrator as orchestrator;
pub use teemon_query as query;
pub use teemon_sgx_sim as sgx_sim;
pub use teemon_sim_core as sim_core;
pub use teemon_tsdb as tsdb;
