//! Minimal offline shim of `serde_json`: formats and parses the serde shim's
//! [`Value`] tree as JSON text.

pub use serde::{Error, Value};

/// Serialises a value as compact JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Never fails in this shim; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected {:?} at byte {}", byte as char, self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number {text:?} at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"name":"teemon","ok":true,"values":[1,2.5,null],"nested":{"x":-3}}"#;
        let value: Value = from_str(text).unwrap();
        assert_eq!(value.get("name").and_then(Value::as_str), Some("teemon"));
        assert_eq!(value.get("values").and_then(Value::as_array).map(<[Value]>::len), Some(3));
        let rendered = to_string(&value).unwrap();
        let reparsed: Value = from_str(&rendered).unwrap();
        assert_eq!(value, reparsed);
    }

    #[test]
    fn pretty_output_is_indented_and_reparsable() {
        let value = Value::Object(vec![
            ("a".into(), Value::Number(1.0)),
            ("b".into(), Value::Array(vec![Value::String("x\n\"y".into())])),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
