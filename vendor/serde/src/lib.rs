//! Minimal offline shim of the `serde` facade used by this workspace.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim routes
//! everything through a JSON-shaped [`Value`] tree: `Serialize` renders a
//! value into a [`Value`], `Deserialize` rebuilds one from it.  The
//! `serde_json` shim then merely formats and parses [`Value`]s.  This is
//! slower than real serde but behaviourally equivalent for the configuration
//! and experiment-row types this workspace serialises.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the number when this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a dynamic value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a dynamic value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- Serialize impls for primitives and std containers ---------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_number {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(*n as $ty),
                    other => Err(Error::custom(format!(
                        concat!("expected number for ", stringify!($ty), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )+};
}

impl_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

/// Renders a map key: string-valued keys pass through, any other key type
/// falls back to its compact JSON rendering (mirroring serde_json's
/// requirement that object keys be strings).
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{}", n as i64)
            } else {
                format!("{n}")
            }
        }
        Value::Bool(b) => b.to_string(),
        other => format!("{other:?}"),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (key_string(k), v.to_value())).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_string(k), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// --- Deserialize impls ------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::custom("expected 3-element array")),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::String(k.clone()))?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Helper used by derived `Deserialize` impls to look up an object field.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert_eq!(Vec::<f64>::from_value(&vec![1.0, 2.5].to_value()).unwrap(), vec![1.0, 2.5]);
        assert_eq!(Option::<bool>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn maps_use_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let v = m.to_value();
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(BTreeMap::<String, u64>::from_value(&v).unwrap(), m);
    }
}
