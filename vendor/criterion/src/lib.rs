//! Minimal offline shim of the `criterion` bench harness.
//!
//! Implements the subset of the API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `sample_size`,
//! the `criterion_group!`/`criterion_main!` macros) with straightforward
//! wall-clock timing: each sample times one batch of iterations, batches are
//! sized adaptively so fast bodies still get a measurable sample, and the
//! min / mean / max over samples is printed in criterion's familiar format.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level bench configuration and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _criterion: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this shim).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter rendering.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }
}

/// Passed to the bench closure; [`Bencher::iter`] times the body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    batch: u64,
}

impl Bencher {
    /// Times `body`, collecting the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and size the batch so one sample lasts ≥ ~100 µs.
        let warmup = Instant::now();
        black_box(body());
        let once = warmup.elapsed();
        self.batch = if once < Duration::from_micros(100) {
            (Duration::from_micros(100).as_nanos() / once.as_nanos().max(1)) as u64 + 1
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(body());
            }
            self.samples.push(start.elapsed() / self.batch as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { sample_size, samples: Vec::new(), batch: 1 };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty samples");
    let max = bencher.samples.iter().max().expect("non-empty samples");
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{name:<48} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max)
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a bench group function, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(3).bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group
            .bench_with_input(BenchmarkId::new("param", 7), &7, |b, v| b.iter(|| black_box(v * 2)));
        group.finish();
    }
}
