//! Minimal offline shim of `proptest`: deterministic pseudo-random sampling
//! for the strategy shapes this workspace uses (numeric ranges, simple
//! character-class string patterns, tuples and `collection::vec`).
//!
//! Each `proptest!` test runs a fixed number of cases from a seed derived
//! from the test name, so failures are reproducible run to run.

use std::ops::Range;

/// Number of cases each property test executes.
pub const CASES: usize = 64;

/// Deterministic xorshift64* RNG.
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG seeded from an arbitrary string (e.g. the test name).
    pub fn deterministic(seed: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in seed.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        Self(state | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of pseudo-random values of one type.
pub trait Strategy {
    /// The generated type.
    type Output;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Output = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span.max(1)) as $ty
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Output = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String strategy from a simplified regex pattern of the form
/// `[class]{min,max}` (e.g. `"[a-z_]{1,12}"`).  A bare `[class]` generates a
/// single character.  Classes support ranges (`a-z`, ` -~`) and literals.
impl Strategy for &str {
    type Output = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

fn parse_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let bytes: Vec<char> = pattern.chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    // Character class.
    if bytes.get(i) == Some(&'[') {
        i += 1;
        while i < bytes.len() && bytes[i] != ']' {
            if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' {
                let (lo, hi) = (bytes[i] as u32, bytes[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        chars.push(c);
                    }
                }
                i += 3;
            } else {
                chars.push(bytes[i]);
                i += 1;
            }
        }
        i += 1; // closing ']'
    } else {
        // Literal pattern: generate exactly that string.
        return (bytes.clone(), bytes.len(), bytes.len());
    }
    if chars.is_empty() {
        chars.push('a');
    }
    // Repetition.
    let rest: String = bytes[i..].iter().collect();
    if let Some(stripped) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
        let mut parts = stripped.splitn(2, ',');
        let min = parts.next().and_then(|p| p.trim().parse().ok()).unwrap_or(1);
        let max = parts.next().and_then(|p| p.trim().parse().ok()).unwrap_or(min);
        (chars, min, max.max(min))
    } else {
        (chars, 1, 1)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Output = (A::Output, B::Output);
    fn sample(&self, rng: &mut TestRng) -> Self::Output {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Output = (A::Output, B::Output, C::Output);
    fn sample(&self, rng: &mut TestRng) -> Self::Output {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Output = Vec<S::Output>;
        fn sample(&self, rng: &mut TestRng) -> Self::Output {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                    $body
                }
            }
        )+
    };
}

/// Asserts a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::deterministic("strings");
        for _ in 0..200 {
            let s = "[a-z_]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            let printable = "[ -~]{0,24}".sample(&mut rng);
            assert!(printable.len() <= 24);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #[test]
        fn macro_generates_cases(v in 0u8..4, items in collection::vec(0u64..10, 1..5)) {
            prop_assert!(v < 4);
            prop_assert!(!items.is_empty() && items.len() < 5);
            prop_assert_eq!(items.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }
}
