//! Dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim.
//!
//! The macros parse the item declaration with a small hand-rolled token
//! walker (no `syn`/`quote`) and emit impls of the shim's value-tree traits:
//!
//! * structs serialize to JSON objects keyed by field name (newtype structs
//!   are transparent, other tuple structs become arrays);
//! * enums use serde's externally-tagged representation: unit variants are
//!   plain strings, payload variants are single-key objects.
//!
//! The only container/field attribute honoured is `#[serde(default)]`;
//! everything else inside `#[serde(...)]` is rejected at compile time so a
//! silently ignored attribute can never change wire behaviour.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("valid compile_error tokens")
}

/// Scans an attribute `#[...]` group: returns `Ok(true)` when it is
/// `#[serde(default)]`, `Ok(false)` for non-serde attributes, and an error
/// for any other `#[serde(...)]` content.
fn classify_attr(group: &proc_macro::Group) -> Result<bool, String> {
    let mut inner = group.stream().into_iter();
    let head = match inner.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Ok(false),
    };
    if head != "serde" {
        return Ok(false);
    }
    match inner.next() {
        Some(TokenTree::Group(args)) => {
            let body = args.stream().to_string();
            if body.trim() == "default" {
                Ok(true)
            } else {
                Err(format!("unsupported serde attribute: #[serde({body})]"))
            }
        }
        _ => Err("unsupported bare #[serde] attribute".to_string()),
    }
}

/// Consumes leading attributes from `tokens[*pos]`, reporting whether any of
/// them was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<bool, String> {
    let mut default = false;
    while *pos + 1 < tokens.len() {
        match (&tokens[*pos], &tokens[*pos + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                default |= classify_attr(g)?;
                *pos += 2;
            }
            _ => break,
        }
    }
    Ok(default)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past one type (or expression) until a top-level comma, tracking
/// `<...>` nesting so commas inside generics do not split fields.
fn skip_to_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth <= 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found {other}")),
            None => break,
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected ':' after field {name}")),
        }
        skip_to_comma(&tokens, &mut pos);
        pos += 1; // the comma itself
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(group: &proc_macro::Group) -> Result<usize, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return Ok(0);
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        // Field attributes would carry #[serde(...)] we do not support here.
        skip_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
    }
    Ok(count)
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found {other}")),
            None => break,
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g)?)
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_to_comma(&tokens, &mut pos);
        pos += 1;
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!("generic type {name} is not supported by the serde shim derive"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g)?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unsupported struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g)? })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for {other}")),
    }
}

// --- Serialize --------------------------------------------------------------

fn serialize_body(item: &Item) -> String {
    match item {
        Item::Struct { shape: Shape::Unit, .. } => "::serde::Value::Null".to_string(),
        Item::Struct { shape: Shape::Tuple(1), .. } => {
            "::serde::Serialize::to_value(&self.0)".to_string()
        }
        Item::Struct { shape: Shape::Tuple(n), .. } => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Item::Struct { shape: Shape::Named(fields), .. } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.shape {
                    Shape::Unit => format!(
                        "{name}::{v} => ::serde::Value::String({vs:?}.to_string()),",
                        v = v.name,
                        vs = v.name
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![({vs:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),",
                        v = v.name,
                        vs = v.name
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![({vs:?}\
                             .to_string(), ::serde::Value::Array(vec![{vals}]))]),",
                            v = v.name,
                            vs = v.name,
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![({vs:?}\
                             .to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                            v = v.name,
                            vs = v.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    }
}

// --- Deserialize ------------------------------------------------------------

fn named_fields_ctor(fields: &[Field], source: &str, context: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{name}: match ::serde::field({source}, {name_str:?}) {{ \
                     Some(v) => ::serde::Deserialize::from_value(v)?, \
                     None => ::core::default::Default::default() }},",
                    name = f.name,
                    name_str = f.name,
                )
            } else {
                format!(
                    "{name}: match ::serde::field({source}, {name_str:?}) {{ \
                     Some(v) => ::serde::Deserialize::from_value(v)?, \
                     None => ::serde::Deserialize::from_value(&::serde::Value::Null).map_err(\
                     |_| ::serde::Error::custom(concat!(\"missing field `\", {name_str:?}, \
                     \"` in \", {context:?})))? }},",
                    name = f.name,
                    name_str = f.name,
                    context = context,
                )
            }
        })
        .collect();
    inits.join("\n")
}

fn deserialize_body(item: &Item) -> String {
    match item {
        Item::Struct { name, shape: Shape::Unit } => format!("Ok({name})"),
        Item::Struct { name, shape: Shape::Tuple(1) } => {
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Item::Struct { name, shape: Shape::Tuple(n) } => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = value.as_array().ok_or_else(|| ::serde::Error::custom(\
                 concat!(\"expected array for \", {name:?})))?;\n\
                 if items.len() != {n} {{ return Err(::serde::Error::custom(concat!(\
                 \"wrong tuple arity for \", {name:?}))); }}\n\
                 Ok({name}({elems}))",
                elems = elems.join(", ")
            )
        }
        Item::Struct { name, shape: Shape::Named(fields) } => {
            format!(
                "let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(\
                 concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{ {inits} }})",
                inits = named_fields_ctor(fields, "entries", name)
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("{vs:?} => return Ok({name}::{v}),", v = v.name, vs = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.shape {
                    Shape::Unit => None,
                    Shape::Tuple(1) => Some(format!(
                        "{vs:?} => return Ok({name}::{v}(::serde::Deserialize::from_value(\
                         payload)?)),",
                        v = v.name,
                        vs = v.name
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{vs:?} => {{ let items = payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload\"))?; \
                             if items.len() != {n} {{ return Err(::serde::Error::custom(\
                             \"wrong payload arity\")); }} \
                             return Ok({name}::{v}({elems})); }}",
                            v = v.name,
                            vs = v.name,
                            elems = elems.join(", ")
                        ))
                    }
                    Shape::Named(fields) => Some(format!(
                        "{vs:?} => {{ let entries = payload.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object payload\"))?; \
                         return Ok({name}::{v} {{ {inits} }}); }}",
                        v = v.name,
                        vs = v.name,
                        inits = named_fields_ctor(fields, "entries", name)
                    )),
                })
                .collect();
            format!(
                "if let ::serde::Value::String(tag) = value {{\n\
                     match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
                 }}\n\
                 if let Some(entries) = value.as_object() {{\n\
                     if let [(tag, payload)] = entries {{\n\
                         match tag.as_str() {{ {payload_arms} _ => {{}} }}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::custom(format!(concat!(\"no variant of \", {name:?}, \
                 \" matches {{:?}}\"), value)))",
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n"),
            )
        }
    }
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

/// Derives the shim's `serde::Serialize` (value-tree rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = item_name(&item),
        body = serialize_body(&item)
    );
    code.parse().unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}")))
}

/// Derives the shim's `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, \
             ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item_name(&item),
        body = deserialize_body(&item)
    );
    code.parse().unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}")))
}
