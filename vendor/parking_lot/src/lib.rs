//! Minimal offline shim of the `parking_lot` API surface used by this
//! workspace, backed by `std::sync`.  Poisoning is ignored (a panicked writer
//! does not poison the lock), matching parking_lot semantics closely enough
//! for the monitoring code paths here.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A reader-writer lock with parking_lot's non-poisoning `read`/`write` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
