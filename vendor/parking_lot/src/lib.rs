//! Minimal offline shim of the `parking_lot` API surface used by this
//! workspace, backed by `std::sync`.  Poisoning is ignored (a panicked writer
//! does not poison the lock), matching parking_lot semantics closely enough
//! for the monitoring code paths here.
//!
//! # Lock auditing (`--cfg lock_audit`)
//!
//! Because every lock in the workspace goes through this shim, it doubles as
//! the instrumentation point of the dynamic lock-order / deadlock detector.
//! Compiled with `RUSTFLAGS="--cfg lock_audit"`, every acquisition and
//! release is recorded by the [`audit`] module:
//!
//! * locks carry a registered [`LockClass`] (name, instance id, and the
//!   `ordered` / `no_alloc` class rules) via [`Mutex::named`] /
//!   [`RwLock::named`]; anonymous locks get a unique per-instance node,
//! * per-thread acquisition stacks feed a global lock-order graph; an
//!   acquisition that would close a cycle (a potential deadlock) panics
//!   immediately with the offending chain,
//! * re-acquiring a lock already held by the same thread panics (guaranteed
//!   deadlock under `std::sync`),
//! * holding two locks of an `ordered` class simultaneously panics unless
//!   the thread is inside [`audit::ordered_section`] *and* instance ids
//!   ascend — the rule behind "never hold two storage shards unordered",
//! * while an exclusive guard of a `no_alloc` class is held,
//!   [`audit::alloc_armed`] reports `true` (unless an
//!   [`audit::allow_alloc`] scope marks a documented cold path), which a
//!   counting global allocator in the test suite turns into an
//!   "allocation under shard lock" check.
//!
//! Without the cfg, the audit metadata is dropped at construction and the
//! lock types compile down to the plain `std::sync` wrappers below — the
//! same API in both modes.
//!
//! # Contention telemetry (always on)
//!
//! Orthogonally to the audit, every *named* lock records cheap contention
//! statistics into the [`contention`] module's fixed static table:
//! acquisition counts on the uncontended path (one relaxed `fetch_add`) and
//! contended-acquire counts plus a log-linear wait-time histogram when a
//! `try_lock` fails and the thread has to park.  `teemon_obs` exports these
//! per-class counters as engine self-metrics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard, TryLockError,
};

#[cfg(lock_audit)]
pub mod audit;
pub mod contention;

/// The audited identity of a lock: a class name shared by every lock that
/// plays the same role (e.g. all 16 storage shards are `tsdb.shard`), an
/// instance id distinguishing the locks within the class, and the class
/// rules the [`audit`] module enforces.  Ignored entirely unless the
/// workspace is compiled with `--cfg lock_audit`.
#[derive(Debug, Clone, Copy)]
pub struct LockClass {
    name: &'static str,
    instance: u32,
    ordered: bool,
    no_alloc: bool,
}

impl LockClass {
    /// A class identified by `name`.  All locks constructed with the same
    /// name share one node in the lock-order graph.
    pub const fn new(name: &'static str) -> Self {
        Self { name, instance: 0, ordered: false, no_alloc: false }
    }

    /// Distinguishes this lock from its class siblings (e.g. the shard id).
    #[must_use]
    pub const fn instance(mut self, instance: u32) -> Self {
        self.instance = instance;
        self
    }

    /// Marks the class as *ordered*: a thread may hold two locks of this
    /// class at once only inside [`audit::ordered_section`], and only in
    /// ascending instance order.
    #[must_use]
    pub const fn ordered(mut self) -> Self {
        self.ordered = true;
        self
    }

    /// Marks the class as *allocation-free under exclusive hold*: while a
    /// write/lock guard of this class is held, [`audit::alloc_armed`]
    /// reports `true` outside [`audit::allow_alloc`] scopes.
    #[must_use]
    pub const fn no_alloc(mut self) -> Self {
        self.no_alloc = true;
        self
    }

    /// The class name (`""` for anonymous locks).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// The instance id within the class.
    pub const fn instance_id(&self) -> u32 {
        self.instance
    }

    /// Whether the class is ordered.
    pub const fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// Whether the class forbids allocation under exclusive hold.
    pub const fn is_no_alloc(&self) -> bool {
        self.no_alloc
    }
}

/// Read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(lock_audit)]
    token: audit::HeldToken,
    inner: StdRwLockReadGuard<'a, T>,
}

/// Write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(lock_audit)]
    token: audit::HeldToken,
    inner: StdRwLockWriteGuard<'a, T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(lock_audit)]
    token: audit::HeldToken,
    inner: StdMutexGuard<'a, T>,
}

macro_rules! impl_guard {
    ($guard:ident, $std:ident, mutable) => {
        impl<T: ?Sized> Deref for $guard<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                &self.inner
            }
        }

        impl<T: ?Sized> DerefMut for $guard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                &mut self.inner
            }
        }

        impl_guard!(@common $guard);
    };
    ($guard:ident, $std:ident, readonly) => {
        impl<T: ?Sized> Deref for $guard<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                &self.inner
            }
        }

        impl_guard!(@common $guard);
    };
    (@common $guard:ident) => {
        impl<T: ?Sized + fmt::Debug> fmt::Debug for $guard<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                (**self).fmt(f)
            }
        }

        #[cfg(lock_audit)]
        impl<T: ?Sized> Drop for $guard<'_, T> {
            fn drop(&mut self) {
                audit::on_release(self.token);
            }
        }
    };
}

impl_guard!(RwLockReadGuard, StdRwLockReadGuard, readonly);
impl_guard!(RwLockWriteGuard, StdRwLockWriteGuard, mutable);
impl_guard!(MutexGuard, StdMutexGuard, mutable);

/// A reader-writer lock with parking_lot's non-poisoning `read`/`write` API.
pub struct RwLock<T: ?Sized> {
    #[cfg(lock_audit)]
    audit: audit::LockAudit,
    telemetry: contention::Recorder,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock (anonymous audit class).
    pub fn new(value: T) -> Self {
        Self::named(value, LockClass::new(""))
    }

    /// Creates a new unlocked lock registered under `class` in the lock
    /// audit and the always-on [`contention`] telemetry.  Without
    /// `--cfg lock_audit` only the class *name* is retained (for the
    /// contention slot); the audit rules are dropped.
    pub fn named(value: T, class: LockClass) -> Self {
        Self {
            #[cfg(lock_audit)]
            audit: audit::LockAudit::register(class),
            telemetry: contention::Recorder::for_class(class.name()),
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(lock_audit)]
        let token = self.audit.on_acquire(audit::Kind::Read);
        let inner = match self.inner.try_read() {
            Ok(guard) => {
                self.telemetry.on_uncontended();
                guard
            }
            Err(TryLockError::Poisoned(e)) => {
                self.telemetry.on_uncontended();
                e.into_inner()
            }
            Err(TryLockError::WouldBlock) => {
                let started = self.telemetry.on_contended_start();
                let guard = self.inner.read().unwrap_or_else(|e| e.into_inner());
                self.telemetry.on_contended_end(started);
                guard
            }
        };
        RwLockReadGuard {
            #[cfg(lock_audit)]
            token,
            inner,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(lock_audit)]
        let token = self.audit.on_acquire(audit::Kind::Exclusive);
        let inner = match self.inner.try_write() {
            Ok(guard) => {
                self.telemetry.on_uncontended();
                guard
            }
            Err(TryLockError::Poisoned(e)) => {
                self.telemetry.on_uncontended();
                e.into_inner()
            }
            Err(TryLockError::WouldBlock) => {
                let started = self.telemetry.on_contended_start();
                let guard = self.inner.write().unwrap_or_else(|e| e.into_inner());
                self.telemetry.on_contended_end(started);
                guard
            }
        };
        RwLockWriteGuard {
            #[cfg(lock_audit)]
            token,
            inner,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock` API.
pub struct Mutex<T: ?Sized> {
    #[cfg(lock_audit)]
    audit: audit::LockAudit,
    telemetry: contention::Recorder,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex (anonymous audit class).
    pub fn new(value: T) -> Self {
        Self::named(value, LockClass::new(""))
    }

    /// Creates a new unlocked mutex registered under `class` in the lock
    /// audit and the always-on [`contention`] telemetry.  Without
    /// `--cfg lock_audit` only the class *name* is retained (for the
    /// contention slot); the audit rules are dropped.
    pub fn named(value: T, class: LockClass) -> Self {
        Self {
            #[cfg(lock_audit)]
            audit: audit::LockAudit::register(class),
            telemetry: contention::Recorder::for_class(class.name()),
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(lock_audit)]
        let token = self.audit.on_acquire(audit::Kind::Exclusive);
        let inner = match self.inner.try_lock() {
            Ok(guard) => {
                self.telemetry.on_uncontended();
                guard
            }
            Err(TryLockError::Poisoned(e)) => {
                self.telemetry.on_uncontended();
                e.into_inner()
            }
            Err(TryLockError::WouldBlock) => {
                let started = self.telemetry.on_contended_start();
                let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                self.telemetry.on_contended_end(started);
                guard
            }
        };
        MutexGuard {
            #[cfg(lock_audit)]
            token,
            inner,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn named_locks_behave_like_plain_ones() {
        let class = LockClass::new("test.class").instance(3).ordered().no_alloc();
        let lock = RwLock::named(7, class);
        assert_eq!(*lock.read(), 7);
        let m = Mutex::named(String::from("x"), LockClass::new("test.mutex"));
        m.lock().push('y');
        assert_eq!(m.into_inner(), "xy");
    }

    #[test]
    fn named_locks_count_acquisitions() {
        let m = Mutex::named(0u32, LockClass::new("test.contention.count"));
        let before = acquires_of("test.contention.count");
        for _ in 0..5 {
            *m.lock() += 1;
        }
        assert_eq!(acquires_of("test.contention.count") - before, 5);
    }

    #[test]
    fn contended_acquisitions_record_waits() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::named((), LockClass::new("test.contention.wait")));
        let held = m.lock();
        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock();
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        waiter.join().expect("waiter");
        let mut contended = 0;
        let mut bucketed = 0;
        contention::for_each(&mut |c| {
            if c.name == "test.contention.wait" {
                contended = c.contended;
                bucketed = c.wait_buckets.iter().sum();
                assert!(c.wait_ns_sum > 0, "waited a measurable time");
            }
        });
        assert_eq!(contended, 1);
        assert_eq!(bucketed, 1);
    }

    fn acquires_of(name: &str) -> u64 {
        let mut n = 0;
        contention::for_each(&mut |c| {
            if c.name == name {
                n = c.acquires;
            }
        });
        n
    }
}
