//! Dynamic lock-order and allocation auditing, compiled only under
//! `--cfg lock_audit`.
//!
//! Every acquisition records the lock's graph node on a per-thread held
//! stack and inserts "held → acquired" edges into a global lock-order graph.
//! Violations panic at the acquisition site with a description of the
//! offending chain — strictly stronger than an at-exit report, because the
//! failing test names the exact call path.  [`report`] still renders the
//! accumulated graph for humans.
//!
//! Checks enforced on every acquisition:
//!
//! 1. **Recursive re-acquisition** of a lock the thread already holds
//!    (a guaranteed self-deadlock under `std::sync`).
//! 2. **Unordered same-class multi-hold** for classes marked
//!    [`LockClass::ordered`]: a second lock of the class is only legal
//!    inside an [`ordered_section`] and with a strictly ascending instance
//!    id.
//! 3. **Lock-order cycles**: if adding the new "held → acquired" edge would
//!    close a cycle in the class graph, two call paths disagree about the
//!    acquisition order — a potential deadlock.  The offending edge is *not*
//!    inserted, so a deliberately provoked violation (as in the tests) does
//!    not poison the graph for later checks.
//!
//! The allocation check is cooperative: [`alloc_armed`] reports whether the
//! current thread holds an exclusive guard of a [`LockClass::no_alloc`]
//! class outside an [`allow_alloc`] scope, and the test suite's counting
//! global allocator panics when an allocation arrives while armed.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

use crate::LockClass;

/// Which access the guard grants; read guards never arm the no-alloc check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Read,
    Exclusive,
}

/// Identifies one acquisition on the per-thread held stack; stored in the
/// guard and redeemed by [`on_release`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeldToken(u64);

/// Per-lock audit identity, embedded in every `Mutex`/`RwLock`.
#[derive(Debug)]
pub(crate) struct LockAudit {
    node: u32,
    instance: u32,
    ordered: bool,
    no_alloc: bool,
}

#[derive(Debug, Clone, Copy)]
struct Held {
    token: u64,
    node: u32,
    instance: u32,
    kind: Kind,
    no_alloc: bool,
    /// Address of the lock's `LockAudit`, stable while any guard borrows the
    /// lock; used only to detect same-instance re-acquisition.
    addr: usize,
}

#[derive(Default)]
struct Graph {
    /// `edges[from]` lists nodes acquired while `from` was held.
    edges: HashMap<u32, Vec<u32>>,
    /// Display name per node.
    names: HashMap<u32, String>,
    /// Named class → shared node.
    classes: HashMap<&'static str, u32>,
    next_node: u32,
    acquisitions: u64,
}

static STATE: OnceLock<StdMutex<Graph>> = OnceLock::new();
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    /// Exclusive holds of `no_alloc` classes on this thread.
    static NO_ALLOC_HOLDS: Cell<u32> = const { Cell::new(0) };
    /// Depth of `allow_alloc` scopes.
    static ALLOW_ALLOC: Cell<u32> = const { Cell::new(0) };
    /// Depth of `ordered_section` scopes.
    static ORDERED: Cell<u32> = const { Cell::new(0) };
    /// True while audit bookkeeping itself runs (its own allocations must
    /// not trip the counting allocator).
    static IN_AUDIT: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag marking audit-internal work; restores the previous value even
/// when a check panics mid-bookkeeping.
struct InAudit(bool);

impl InAudit {
    fn enter() -> Self {
        let prev = IN_AUDIT.with(|c| c.replace(true));
        InAudit(prev)
    }
}

impl Drop for InAudit {
    fn drop(&mut self) {
        IN_AUDIT.with(|c| c.set(self.0));
    }
}

fn state() -> &'static StdMutex<Graph> {
    STATE.get_or_init(|| StdMutex::new(Graph::default()))
}

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    // A violation panic while the graph is locked poisons the std mutex;
    // the graph stays internally consistent (offending edges are never
    // inserted), so later checks ignore the poison.
    let mut graph = state().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut graph)
}

impl LockAudit {
    /// Registers a lock under `class` (empty name → fresh anonymous node,
    /// so unrelated unnamed locks never alias in the order graph).
    pub(crate) fn register(class: LockClass) -> Self {
        let _in_audit = InAudit::enter();
        let node = with_graph(|graph| {
            if class.name().is_empty() {
                let node = graph.next_node;
                graph.next_node += 1;
                graph.names.insert(node, format!("<anonymous #{node}>"));
                node
            } else if let Some(&node) = graph.classes.get(class.name()) {
                node
            } else {
                let node = graph.next_node;
                graph.next_node += 1;
                graph.classes.insert(class.name(), node);
                graph.names.insert(node, class.name().to_string());
                node
            }
        });
        LockAudit {
            node,
            instance: class.instance_id(),
            ordered: class.is_ordered(),
            no_alloc: class.is_no_alloc(),
        }
    }

    /// Records an acquisition *before* blocking on the underlying lock, so a
    /// real deadlock still leaves the violating order in the report.
    pub(crate) fn on_acquire(&self, kind: Kind) -> HeldToken {
        let _in_audit = InAudit::enter();
        let addr = self as *const LockAudit as usize;
        let name = node_name(self.node);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(prev) = held.iter().find(|h| h.addr == addr) {
                die(&format!(
                    "recursive acquisition: thread already holds {name} \
                     (instance {}) and is acquiring it again — guaranteed deadlock",
                    prev.instance
                ));
            }
            if self.ordered {
                if let Some(prev) =
                    held.iter().filter(|h| h.node == self.node).max_by_key(|h| h.instance)
                {
                    if ORDERED.with(Cell::get) == 0 {
                        die(&format!(
                            "two {name} locks held simultaneously outside an ordered \
                             section: holding instance {}, acquiring instance {}",
                            prev.instance, self.instance
                        ));
                    }
                    if self.instance <= prev.instance {
                        die(&format!(
                            "ordered section violated for {name}: acquiring instance {} \
                             while holding instance {} — instances must strictly ascend",
                            self.instance, prev.instance
                        ));
                    }
                }
            }
            with_graph(|graph| {
                graph.acquisitions += 1;
                for h in held.iter() {
                    if h.node != self.node {
                        add_edge(graph, h.node, self.node);
                    }
                }
            });
            let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            held.push(Held {
                token,
                node: self.node,
                instance: self.instance,
                kind,
                no_alloc: self.no_alloc,
                addr,
            });
            if self.no_alloc && kind == Kind::Exclusive {
                NO_ALLOC_HOLDS.with(|c| c.set(c.get() + 1));
            }
            HeldToken(token)
        })
    }
}

/// Pops the acquisition identified by `token` off the thread's held stack.
pub(crate) fn on_release(token: HeldToken) {
    let _in_audit = InAudit::enter();
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.token == token.0) {
            let h = held.remove(pos);
            if h.no_alloc && h.kind == Kind::Exclusive {
                NO_ALLOC_HOLDS.with(|c| c.set(c.get().saturating_sub(1)));
            }
        }
    });
}

/// Inserts `from → to`, panicking (without inserting) if the edge would
/// close a cycle — i.e. some call path already acquires these classes in the
/// opposite order.
fn add_edge(graph: &mut Graph, from: u32, to: u32) {
    if graph.edges.get(&from).is_some_and(|next| next.contains(&to)) {
        return;
    }
    if let Some(path) = find_path(graph, to, from) {
        let mut chain: Vec<String> = path.iter().map(|&node| node_name_in(graph, node)).collect();
        chain.push(node_name_in(graph, to));
        die(&format!(
            "lock-order cycle: acquiring {} while holding {} inverts the established \
             order {}",
            node_name_in(graph, to),
            node_name_in(graph, from),
            chain.join(" -> "),
        ));
    }
    graph.edges.entry(from).or_default().push(to);
}

/// Depth-first search for a path `from → … → to` in the established graph.
fn find_path(graph: &Graph, from: u32, to: u32) -> Option<Vec<u32>> {
    fn dfs(graph: &Graph, node: u32, to: u32, path: &mut Vec<u32>) -> bool {
        if path.contains(&node) {
            return false;
        }
        path.push(node);
        if node == to {
            return true;
        }
        if let Some(next) = graph.edges.get(&node) {
            for &n in next {
                if dfs(graph, n, to, path) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }
    let mut path = Vec::new();
    if dfs(graph, from, to, &mut path) {
        Some(path)
    } else {
        None
    }
}

fn node_name(node: u32) -> String {
    with_graph(|graph| node_name_in(graph, node))
}

fn node_name_in(graph: &Graph, node: u32) -> String {
    graph.names.get(&node).cloned().unwrap_or_else(|| format!("<node #{node}>"))
}

fn die(message: &str) -> ! {
    panic!("lock-audit violation: {message}");
}

/// True when an allocation on the current thread would violate the
/// "no allocation under an exclusive shard lock" rule.  Safe to call from a
/// global allocator: returns `false` while audit bookkeeping runs or when
/// thread-locals are unavailable (thread teardown).
pub fn alloc_armed() -> bool {
    let in_audit = IN_AUDIT.try_with(Cell::get).unwrap_or(true);
    if in_audit {
        return false;
    }
    let armed = NO_ALLOC_HOLDS.try_with(Cell::get).unwrap_or(0) > 0;
    armed && ALLOW_ALLOC.try_with(Cell::get).unwrap_or(1) == 0
}

/// Scope guard suspending the no-alloc check (documented cold paths such as
/// series creation or chunk sealing).  Not `Send`: the counters are
/// thread-local.
#[must_use = "the allow_alloc scope ends when the guard drops"]
pub struct AllowAllocGuard(PhantomData<*const ()>);

/// Enters an allocation-allowed scope on the current thread.
pub fn allow_alloc() -> AllowAllocGuard {
    ALLOW_ALLOC.with(|c| c.set(c.get() + 1));
    AllowAllocGuard(PhantomData)
}

impl Drop for AllowAllocGuard {
    fn drop(&mut self) {
        ALLOW_ALLOC.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Scope guard permitting ascending multi-hold of `ordered` classes
/// (`append_batch`'s sorted shard walk).  Not `Send`.
#[must_use = "the ordered section ends when the guard drops"]
pub struct OrderedSectionGuard(PhantomData<*const ()>);

/// Enters an ordered section on the current thread.
pub fn ordered_section() -> OrderedSectionGuard {
    ORDERED.with(|c| c.set(c.get() + 1));
    OrderedSectionGuard(PhantomData)
}

impl Drop for OrderedSectionGuard {
    fn drop(&mut self) {
        ORDERED.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// Renders the accumulated lock-order graph: total acquisitions, every
/// registered class, and the established `a -> b` order edges.
pub fn report() -> String {
    let _in_audit = InAudit::enter();
    with_graph(|graph| {
        let mut out = format!(
            "lock-audit report: {} acquisitions, {} nodes, {} order edges\n",
            graph.acquisitions,
            graph.names.len(),
            graph.edges.values().map(Vec::len).sum::<usize>(),
        );
        let mut edges: Vec<(String, String)> = Vec::new();
        for (&from, tos) in &graph.edges {
            for &to in tos {
                edges.push((node_name_in(graph, from), node_name_in(graph, to)));
            }
        }
        edges.sort();
        for (from, to) in edges {
            out.push_str(&format!("  {from} -> {to}\n"));
        }
        out
    })
}

/// Total acquisitions recorded so far (sanity hook for tests: proves the
/// instrumentation actually ran).
pub fn acquisition_count() -> u64 {
    let _in_audit = InAudit::enter();
    with_graph(|graph| graph.acquisitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mutex, RwLock};

    #[test]
    fn acquisitions_are_counted_and_released() {
        let a = RwLock::named(0u32, LockClass::new("audit.test.count"));
        let before = acquisition_count();
        drop(a.read());
        drop(a.write());
        assert!(acquisition_count() >= before + 2);
        HELD.with(|held| {
            assert!(
                !held.borrow().iter().any(|h| h.node == a.audit.node),
                "released guards must leave the held stack"
            );
        });
    }

    #[test]
    fn recursive_acquisition_panics() {
        let m = Mutex::named((), LockClass::new("audit.test.recursive"));
        let guard = m.lock();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _second = m.lock();
        }))
        .expect_err("second lock on the same thread must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("recursive acquisition"), "unexpected message: {msg}");
        drop(guard);
    }

    #[test]
    fn unordered_same_class_hold_panics_and_ordered_section_allows() {
        let shard = |i| RwLock::named(i, LockClass::new("audit.test.shard").instance(i).ordered());
        let (a, b) = (shard(0), shard(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g0 = a.write();
            let _g1 = b.write();
        }))
        .expect_err("unordered multi-hold must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("outside an ordered section"), "unexpected message: {msg}");

        // Ascending instances inside an ordered section are fine…
        {
            let _section = ordered_section();
            let _g0 = a.write();
            let _g1 = b.write();
        }
        // …but descending instances are not.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _section = ordered_section();
            let _g1 = b.write();
            let _g0 = a.write();
        }))
        .expect_err("descending instances must panic even inside an ordered section");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("strictly ascend"), "unexpected message: {msg}");
    }

    #[test]
    fn lock_order_cycle_panics_without_poisoning_the_graph() {
        let a = Mutex::named((), LockClass::new("audit.test.cycle.a"));
        let b = Mutex::named((), LockClass::new("audit.test.cycle.b"));
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // would establish b -> a: cycle
        }))
        .expect_err("order inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "unexpected message: {msg}");
        // The offending edge was not inserted: the same legal order still works.
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn no_alloc_arming_follows_write_guards_and_allow_scopes() {
        let shard = RwLock::named(0u32, LockClass::new("audit.test.noalloc").no_alloc());
        assert!(!alloc_armed());
        {
            let _read = shard.read();
            assert!(!alloc_armed(), "read guards must not arm the check");
        }
        {
            let _write = shard.write();
            assert!(alloc_armed(), "an exclusive no_alloc hold must arm the check");
            {
                let _allow = allow_alloc();
                assert!(!alloc_armed(), "allow_alloc scopes must disarm the check");
            }
            assert!(alloc_armed());
        }
        assert!(!alloc_armed());
    }

    #[test]
    fn report_lists_established_edges() {
        let a = Mutex::named((), LockClass::new("audit.test.report.a"));
        let b = Mutex::named((), LockClass::new("audit.test.report.b"));
        let _ga = a.lock();
        let _gb = b.lock();
        let report = report();
        assert!(
            report.contains("audit.test.report.a -> audit.test.report.b"),
            "report missing edge:\n{report}"
        );
    }
}
