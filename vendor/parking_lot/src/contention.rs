//! Always-on lock-contention telemetry.
//!
//! Unlike the [`crate::audit`] module (a heavyweight correctness checker
//! compiled only under `--cfg lock_audit`), this module is live in every
//! build: each [`crate::LockClass`] name owns one fixed slot in a static
//! table, and the lock wrappers record into it on every acquisition.
//!
//! The cost model is the whole point:
//!
//! * **uncontended** acquisitions (the `try_lock` succeeds immediately) cost
//!   a single relaxed `fetch_add` on the class's acquisition counter —
//!   nothing else, no wall-clock read, no allocation, ever,
//! * **contended** acquisitions (the try failed and the thread had to park)
//!   additionally time the wait and record it into the class's log-linear
//!   (power-of-two bucket) wait histogram — three more relaxed `fetch_add`s
//!   and two `Instant` reads, all off the fast path.
//!
//! Slots are fixed at compile time ([`MAX_CLASSES`] × [`WAIT_BUCKETS`]
//! counters), so registration and recording are allocation-free and the
//! counting-allocator proofs in the test suite hold with telemetry enabled.
//! Consumers read the table through [`for_each`] (allocation-free) or the
//! convenience [`classes`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of class slots in the static table.  Classes registered past the
/// capacity fall into the shared overflow slot named `"(overflow)"` rather
/// than being dropped silently.
pub const MAX_CLASSES: usize = 64;

/// Number of log-linear wait-time buckets.  Bucket `i` counts contended
/// waits with `floor(log2(wait_ns)) == i`, i.e. upper bound `2^(i+1) - 1`
/// nanoseconds; the last bucket absorbs everything longer (≥ ~2 s).
pub const WAIT_BUCKETS: usize = 31;

/// One class's counters.  All fields are written with relaxed ordering; a
/// snapshot is a statistically consistent view, not a linearisable one.
struct Slot {
    name: OnceLock<&'static str>,
    acquires: AtomicU64,
    contended: AtomicU64,
    wait_ns_sum: AtomicU64,
    wait_buckets: [AtomicU64; WAIT_BUCKETS],
}

impl Slot {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            name: OnceLock::new(),
            acquires: ZERO,
            contended: ZERO,
            wait_ns_sum: ZERO,
            wait_buckets: [ZERO; WAIT_BUCKETS],
        }
    }
}

static SLOTS: [Slot; MAX_CLASSES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY: Slot = Slot::new();
    [EMPTY; MAX_CLASSES]
};

/// Resolves the slot for a class name, registering it on first use.  Called
/// once per lock *construction* (never per acquisition).  Anonymous locks
/// (`name == ""`) get no slot and no telemetry.
fn resolve(name: &'static str) -> Option<&'static Slot> {
    if name.is_empty() {
        return None;
    }
    for (i, slot) in SLOTS.iter().enumerate() {
        if i == MAX_CLASSES - 1 {
            // Last slot doubles as the overflow bucket.
            let _ = slot.name.set("(overflow)");
            return Some(slot);
        }
        match slot.name.get() {
            Some(existing) if *existing == name => return Some(slot),
            Some(_) => continue,
            None => {
                if slot.name.set(name).is_ok() {
                    return Some(slot);
                }
                // Raced with another registration; re-check what won.
                if slot.name.get() == Some(&name) {
                    return Some(slot);
                }
            }
        }
    }
    None
}

/// Handle stored inside each named lock: records acquisitions for its slot.
#[derive(Clone, Copy)]
pub(crate) struct Recorder {
    slot: Option<&'static Slot>,
}

impl Recorder {
    pub(crate) fn for_class(name: &'static str) -> Self {
        Self { slot: resolve(name) }
    }

    /// The uncontended fast path: one relaxed fetch_add, nothing else.
    #[inline]
    pub(crate) fn on_uncontended(&self) {
        if let Some(slot) = self.slot {
            slot.acquires.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Called when a `try_lock` failed: returns the wait-start timestamp.
    /// Only reached on contention, so the `Instant` read is off the fast
    /// path.
    #[inline]
    pub(crate) fn on_contended_start(&self) -> Option<Instant> {
        self.slot.map(|_| Instant::now())
    }

    /// Called after a contended acquisition completes.
    #[inline]
    pub(crate) fn on_contended_end(&self, started: Option<Instant>) {
        let (Some(slot), Some(started)) = (self.slot, started) else { return };
        let wait_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        slot.acquires.fetch_add(1, Ordering::Relaxed);
        slot.contended.fetch_add(1, Ordering::Relaxed);
        slot.wait_ns_sum.fetch_add(wait_ns, Ordering::Relaxed);
        slot.wait_buckets[bucket_index(wait_ns)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Log-linear bucket index for a nanosecond wait: `floor(log2(ns))`, with
/// sub-nanosecond waits in bucket 0 and everything ≥ `2^WAIT_BUCKETS` ns in
/// the last bucket.
#[inline]
pub fn bucket_index(wait_ns: u64) -> usize {
    if wait_ns == 0 {
        return 0;
    }
    ((63 - wait_ns.leading_zeros()) as usize).min(WAIT_BUCKETS - 1)
}

/// Inclusive upper bound (in nanoseconds) of bucket `i`: `2^(i+1) - 1`.
/// The last bucket has no finite bound; this returns its lower edge.
pub fn bucket_upper_bound_ns(i: usize) -> u64 {
    if i >= WAIT_BUCKETS - 1 {
        1u64 << (WAIT_BUCKETS - 1)
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A copied-out view of one class's contention counters.
#[derive(Debug, Clone)]
pub struct ClassContention {
    /// The lock-class name (for example `tsdb.shard`).
    pub name: &'static str,
    /// Total acquisitions (contended + uncontended).
    pub acquires: u64,
    /// Acquisitions that found the lock held and had to wait.
    pub contended: u64,
    /// Total nanoseconds spent waiting in contended acquisitions.
    pub wait_ns_sum: u64,
    /// Log-linear wait histogram; bucket `i` counts waits with
    /// `floor(log2(ns)) == i` (see [`bucket_upper_bound_ns`]).
    pub wait_buckets: [u64; WAIT_BUCKETS],
}

/// Visits every registered class without allocating.  The visitor receives a
/// stack-copied [`ClassContention`] per class, in registration order.
pub fn for_each(visit: &mut dyn FnMut(&ClassContention)) {
    for slot in &SLOTS {
        let Some(name) = slot.name.get() else { continue };
        let mut snap = ClassContention {
            name,
            acquires: slot.acquires.load(Ordering::Relaxed),
            contended: slot.contended.load(Ordering::Relaxed),
            wait_ns_sum: slot.wait_ns_sum.load(Ordering::Relaxed),
            wait_buckets: [0; WAIT_BUCKETS],
        };
        for (dst, src) in snap.wait_buckets.iter_mut().zip(slot.wait_buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        visit(&snap);
    }
}

/// Convenience snapshot of every registered class (allocates).
pub fn classes() -> Vec<ClassContention> {
    let mut out = Vec::new();
    for_each(&mut |c| out.push(c.clone()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), WAIT_BUCKETS - 1);
    }
}
