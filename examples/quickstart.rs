//! Quickstart: monitor a Redis-like workload running under SCONE with full
//! TEEMon monitoring, then print what the monitoring stack observed.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use teemon::{MonitorBuilder, MonitoringMode};
use teemon_apps::{Application, RedisApp};
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
use teemon_tsdb::Selector;

fn main() {
    // 1. A simulated SGX host with the full TEEMon stack (SGX exporter, eBPF
    //    exporter, node exporter, cAdvisor, aggregation, analysis, dashboards),
    //    assembled through the monitor builder.  The scrape path is typed:
    //    exporters hand the aggregator structured snapshots, and OpenMetrics
    //    text only exists at the edges.
    let host = MonitorBuilder::new("worker-1")
        .mode(MonitoringMode::Full)
        .scrape_interval_ms(5_000)
        .exporter_interval_ms("cadvisor", 15_000) // container specs change rarely
        .build();

    // 2. Deploy a Redis-like application inside an enclave under SCONE.
    let app = RedisApp::paper_config(64); // ~105 MB database: exceeds the EPC.
    let mut deployment = Deployment::deploy(
        host.kernel(),
        FrameworkParams::for_kind(FrameworkKind::Scone),
        app.name(),
        app.memory_bytes(),
        app.threads(),
        42,
    )
    .expect("deployment");
    println!(
        "deployed {} under {} (enclave: {:?}, startup {})",
        app.name(),
        deployment.kind(),
        deployment.enclave(),
        deployment.startup_latency()
    );

    // 3. Drive load against it while TEEMon scrapes every 5 (virtual) seconds.
    let request = app.request(8, 320);
    for round in 0..10 {
        for _ in 0..500 {
            deployment.execute(&request, 320);
        }
        host.scrape_tick();
        let _ = round;
    }

    // 4. What did TEEMon see?
    let db = host.db();
    println!("\nTime-series stored: {:?}", db.stats());
    for metric in [
        "sgx_nr_free_pages",
        "sgx_pages_evicted_total",
        "teemon_syscalls_total",
        "teemon_page_faults_total",
    ] {
        let total: f64 = db
            .query_instant(&Selector::metric(metric), u64::MAX)
            .iter()
            .map(|r| r.points.last().map(|(_, v)| *v).unwrap_or(0.0))
            .sum();
        println!("  {metric:<32} latest total = {total:.0}");
    }

    // 5. Render the SGX dashboard (Figure 3 of the paper) as text.
    println!("\n{}", host.render_dashboard("SGX", 64).expect("SGX dashboard"));

    // 6. Ask PMAN whether it sees a bottleneck.
    let requests = deployment.totals().requests as f64;
    let findings = host.analyzer().diagnose_all(requests, 0, u64::MAX);
    if findings.is_empty() {
        println!("PMAN: no bottlenecks detected");
    } else {
        for finding in findings {
            println!("PMAN finding [{:?}]: {}", finding.kind, finding.explanation);
        }
    }
}
