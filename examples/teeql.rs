//! TeeQL end to end: monitor an enclave workload, query the database with
//! TeeQL expressions, derive a series with a recording rule, and watch an
//! alert rule go pending → firing inside the monitoring loop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example teeql
//! ```

use teemon::{AlertRule, MonitorBuilder, MonitoringMode, RecordingRule, RuleGroup};
use teemon_analysis::Severity;
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
use teemon_query::{parse, QueryEngine, Value};

fn main() {
    // 1. A fully monitored host with one TeeQL rule group evaluated every
    //    scrape: a recording rule deriving the per-node syscall rate, and an
    //    alert rule that must hold 15 s before firing.
    let host = MonitorBuilder::new("worker-1")
        .mode(MonitoringMode::Full)
        .scrape_interval_ms(5_000)
        .with_rules(
            RuleGroup::new("teeql-demo", 5_000)
                .with_rule(RecordingRule::new(
                    "node:syscalls:rate30s",
                    parse("sum by (node) (rate(teemon_syscalls_total[30s]))").unwrap(),
                ))
                .with_rule(
                    AlertRule::new(
                        "syscall_rate_high",
                        parse("sum(rate(teemon_syscalls_total[30s])) > 100").unwrap(),
                        Severity::Warning,
                    )
                    .with_for_ms(15_000)
                    .with_hint("workload is syscall-bound; every call exits the enclave"),
                ),
        )
        .build();

    // 2. Deploy a Redis-like enclave workload and drive load while the
    //    monitoring loop scrapes and evaluates rules.
    let mut deployment = Deployment::deploy(
        host.kernel(),
        FrameworkParams::for_kind(FrameworkKind::Scone),
        "redis-server",
        32 << 20,
        8,
        7,
    )
    .expect("deployment");
    let request = teemon_frameworks::RequestProfile::keyvalue_get(64, 8_000);
    for round in 0..12 {
        for _ in 0..400 {
            deployment.execute(&request, 320);
        }
        host.run_scrape_loop(1); // advance 5 s, scrape, evaluate rules
        let alerts = host.rules().active_alerts();
        if let Some(alert) = alerts.first() {
            println!(
                "t={:>3}s  alert {:<18} {:?} (value {:.0}/s, since t={}s)",
                (round + 1) * 5,
                alert.rule,
                alert.state,
                alert.value,
                alert.since_ms / 1000,
            );
        } else {
            println!("t={:>3}s  no active alerts", (round + 1) * 5);
        }
    }

    // 3. Ad-hoc TeeQL queries over everything the monitoring stack stored —
    //    including the series the recording rule derived.
    let engine = QueryEngine::new(host.db().clone());
    let now = host.kernel().clock().now_millis();
    println!("\nTeeQL instant queries at t={}s:", now / 1000);
    for query in [
        "sum(rate(teemon_syscalls_total[30s]))",
        "node:syscalls:rate30s",
        "avg_over_time(sgx_nr_free_pages[30s])",
        "quantile_over_time(0.9, node:syscalls:rate30s[1m])",
        "sum by (syscall) (rate(teemon_syscalls_total[30s]))",
    ] {
        match engine.instant_query(query, now) {
            Ok(Value::Vector(samples)) => {
                println!("  {query}");
                for sample in samples.iter().take(4) {
                    let label = match (&sample.name, sample.labels.is_empty()) {
                        (Some(name), true) => name.clone(),
                        (Some(name), false) => format!("{name}{}", sample.labels),
                        (None, _) => sample.labels.to_string(),
                    };
                    println!("    {label:<50} {:.1}", sample.value);
                }
            }
            Ok(other) => println!("  {query} -> {other:?}"),
            Err(err) => println!("  {query} -> error: {err}"),
        }
    }

    // 4. The alert also lands in the database as the ALERTS series, so
    //    dashboards can plot it like any other metric.
    let alerts_series = engine
        .instant_query("ALERTS", now)
        .ok()
        .and_then(|v| v.as_vector().map(<[teemon_query::VectorSample]>::len))
        .unwrap_or(0);
    println!("\nALERTS series currently exported: {alerts_series}");
    for alert in host.rules().firing_alerts() {
        println!("FIRING [{:?}] {}: {}", alert.severity, alert.rule, alert.hint);
    }
}
