//! Cluster-scale deployment (§5.4 of the paper): TEEMon installed through the
//! Helm chart onto a Kubernetes-like cluster, exporters placed as DaemonSets
//! on SGX nodes, service discovery following topology changes, and enclaves
//! monitored across nodes.
//!
//! ```text
//! cargo run --release --example cluster_monitoring
//! ```

use teemon::ClusterMonitor;
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
use teemon_orchestrator::{Cluster, HelmChart, Node};
use teemon_tsdb::Selector;

fn main() {
    // A cluster with 4 SGX nodes and 2 ordinary nodes.
    let cluster = Cluster::with_nodes(4, 2);
    println!("cluster: {} nodes ({} SGX-capable)", cluster.len(), 4);
    println!("helm chart:\n{}", HelmChart::teemon().to_json());

    // Install TEEMon: one HostMonitor per SGX node.
    let mut monitor = ClusterMonitor::install(cluster.clone());
    println!("\nservice discovery resolved {} scrape endpoints:", monitor.endpoints().len());
    for endpoint in monitor.endpoints() {
        println!("  {:<24} {}", endpoint.job, endpoint.instance);
    }

    // Start enclave workloads on every SGX node.
    let mut deployments = Vec::new();
    for host in monitor.hosts() {
        let mut d = Deployment::deploy(
            host.kernel(),
            FrameworkParams::for_kind(FrameworkKind::Scone),
            "redis-server",
            64 << 20,
            8,
            7,
        )
        .expect("deploy");
        let request = teemon_frameworks::RequestProfile::keyvalue_get(64, 16_000);
        for _ in 0..1_000 {
            d.execute(&request, 320);
        }
        deployments.push(d);
    }
    println!("\nactive enclaves across the cluster: {}", monitor.total_active_enclaves());

    // Scrape everything and summarise per node.
    let healthy = monitor.scrape_all();
    println!("healthy scrape targets: {healthy}");
    for host in monitor.hosts() {
        let evicted: f64 = host
            .db()
            .query_instant(&Selector::metric("sgx_pages_evicted_total"), u64::MAX)
            .iter()
            .map(|r| r.points.last().map(|(_, v)| *v).unwrap_or(0.0))
            .sum();
        let syscalls: f64 = host
            .db()
            .query_instant(&Selector::metric("teemon_syscalls_total"), u64::MAX)
            .iter()
            .map(|r| r.points.last().map(|(_, v)| *v).unwrap_or(0.0))
            .sum();
        println!(
            "  node {:<8} syscalls observed: {:>8.0}  EPC pages evicted: {:>6.0}",
            host.node(),
            syscalls,
            evicted
        );
    }

    // Topology change: a new SGX node joins, an old one drains.
    cluster.add_node(Node::sgx("sgx-burst"));
    cluster.set_ready("sgx-0", false);
    let (added, removed) = monitor.reconcile();
    println!("\ntopology change reconciled: {added} monitor(s) added, {removed} removed");
    println!("service discovery now resolves {} endpoints", monitor.endpoints().len());
}
