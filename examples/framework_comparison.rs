//! Head-to-head comparison of SGX frameworks (§6.5 of the paper).
//!
//! Benchmarks the Redis-like workload under native execution, SCONE, SGX-LKL
//! and Graphene-SGX at several connection counts and database sizes, printing
//! the Figure 8/9-style table plus the per-100-request metric rates that
//! explain the differences (Figure 11).
//!
//! ```text
//! cargo run --release --example framework_comparison
//! ```

use teemon_apps::{run_benchmark, MemtierConfig, NetworkModel, RedisApp};
use teemon_frameworks::{FrameworkKind, FrameworkParams};
use teemon_kernel_sim::Kernel;

fn main() {
    let network = NetworkModel::default();
    let connections = [8u32, 320, 580];
    let sizes = RedisApp::paper_database_sizes();

    println!(
        "{:<14} {:>7} {:>7} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "framework", "db MB", "conns", "KIOP/s", "latency ms", "user PF", "evicted", "cs host"
    );
    for kind in FrameworkKind::ALL {
        for (db_mb, app) in &sizes {
            for conns in connections {
                let config = MemtierConfig::paper_default(conns).with_samples(2_000);
                let result = run_benchmark(
                    &Kernel::new(),
                    FrameworkParams::for_kind(kind),
                    app,
                    &network,
                    &config,
                )
                .expect("benchmark");
                println!(
                    "{:<14} {:>7} {:>7} {:>10.1} {:>12.2} {:>10.3} {:>10.2} {:>10.2}",
                    kind.name(),
                    db_mb,
                    conns,
                    result.kiops(),
                    result.latency_ms,
                    result.rates.user_page_faults,
                    result.rates.evicted_epc_pages,
                    result.rates.context_switches_host
                );
            }
        }
        println!();
    }

    println!("Reading the table the way §6.5 does:");
    println!(" * native peaks at the 1 GbE network limit; every framework is far below it;");
    println!(" * SCONE reaches roughly a quarter of native and suffers most from EPC evictions");
    println!("   once the database exceeds ~94 MiB;");
    println!(" * SGX-LKL sits around a tenth of native;");
    println!(" * Graphene-SGX is fastest at 8 connections and degrades with concurrency,");
    println!("   with by far the highest host context-switch rate.");
}
