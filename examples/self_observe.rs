//! Self-observability end to end: the engine watches itself.
//!
//! A full TEEMon host monitors a workload while its own telemetry — scrape
//! round timings, storage shard heat, query plan choices, lock contention —
//! is scraped by the `teemon_self` target into the same database, rendered
//! on the built-in "Teemon Self" dashboard, and watched by the built-in
//! self-observe alert group.  `QueryEngine::explain`/`analyze` show the
//! plan tree and measured counters for individual queries.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example self_observe
//! ```

use teemon::{MonitorBuilder, MonitoringMode};
use teemon_apps::{Application, RedisApp};
use teemon_frameworks::{Deployment, FrameworkKind, FrameworkParams};
use teemon_query::QueryEngine;
use teemon_tsdb::Selector;

fn main() {
    // 1. A fully monitored host with the self-scrape target (registered by
    //    default in Full mode) and the built-in self-observe alert group.
    let host = MonitorBuilder::new("worker-1")
        .mode(MonitoringMode::Full)
        .scrape_interval_ms(5_000)
        .with_self_observe_alerts()
        .build();
    // Full-mode recount: sgx_exporter, node_exporter, cadvisor and
    // ebpf_exporter — four exporters — plus the `teemon_self` target the
    // engine scrapes itself through makes 5 targets on this host.
    assert_eq!(host.scraper().target_count(), 5);

    // 2. A workload to monitor, so the self-telemetry shows real ingest load.
    let app = RedisApp::paper_config(16);
    let mut deployment = Deployment::deploy(
        host.kernel(),
        FrameworkParams::for_kind(FrameworkKind::Scone),
        app.name(),
        app.memory_bytes(),
        app.threads(),
        42,
    )
    .expect("deployment");
    let request = app.request(8, 320);

    // Catch every query over 50 µs in the slow-query ring for the demo.
    teemon_obs::set_threshold_seconds(0.000_05);

    // 3. Drive load and run queries while the monitor scrapes — each round
    //    also snapshots the engine's probes through the self target.
    let engine = QueryEngine::new(host.db().clone());
    for _ in 0..12 {
        for _ in 0..300 {
            deployment.execute(&request, 320);
        }
        host.run_scrape_loop(1);
        let now = host.kernel().clock().now_millis();
        let start = now.saturating_sub(30_000);
        // A streamed query and a vector-vector one that falls back.
        let _ = engine.range_query(
            "sum by (node) (rate(teemon_syscalls_total[30s]))",
            start,
            now,
            5_000,
        );
        let _ =
            engine.range_query("teemon_syscalls_total + teemon_syscalls_total", start, now, 5_000);
    }

    // 4. EXPLAIN: the plan tree and streamed-vs-fallback choice, unexecuted.
    let now = host.kernel().clock().now_millis();
    let start = now.saturating_sub(30_000);
    for query in [
        "sum by (node) (rate(teemon_syscalls_total[30s]))",
        "teemon_syscalls_total + teemon_syscalls_total",
    ] {
        let explain = engine.explain(query, start, now).expect("query parses");
        println!("EXPLAIN {explain}\n");
    }

    // 5. ANALYZE: the same plan annotated with measured counters.
    let analyze = engine
        .analyze("sum by (node) (rate(teemon_syscalls_total[30s]))", start, now, 5_000)
        .expect("query runs");
    println!("ANALYZE {analyze}\n");

    // 6. The dogfooded dashboard over the self-scraped series.
    println!("{}", host.render_dashboard("Teemon Self", 64).expect("self dashboard"));

    // 7. The slow-query ring (newest first).
    println!("slow queries (threshold lowered to 50 µs for the demo):");
    for slow in teemon_obs::slow_queries().into_iter().take(5) {
        println!(
            "  {:>9.3} ms  {} decoded={} {}",
            slow.wall_seconds * 1e3,
            if slow.streamed { "streamed" } else { "fallback" },
            slow.samples_decoded,
            slow.query,
        );
    }

    // 8. Lock contention, straight from the vendored parking_lot shim.
    println!("\nlock contention by class:");
    parking_lot::contention::for_each(&mut |class| {
        println!(
            "  {:<24} acquires={:<8} contended={:<6} waited={:.3} ms",
            class.name,
            class.acquires,
            class.contended,
            class.wait_ns_sum as f64 / 1e6,
        );
    });

    // 9. Self-observe alerts (the fallback queries above make the
    //    fallback-rate alert fire once its window fills).
    let firing = host.rules().firing_alerts();
    if firing.is_empty() {
        println!("\nself-observe alerts: none firing");
    } else {
        println!("\nself-observe alerts firing:");
        for alert in firing {
            println!("  [{:?}] {} — {}", alert.severity, alert.rule, alert.hint);
        }
    }

    // The self job's series live in the same database as the workload's.
    let self_series =
        host.db().query_instant(&Selector::metric("teemon_scrape_rounds_total"), u64::MAX);
    println!(
        "\nself job ingested {} series for teemon_scrape_rounds_total (job={})",
        self_series.len(),
        self_series.first().and_then(|r| r.labels.get("job")).unwrap_or("?"),
    );
}
