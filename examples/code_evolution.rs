//! Continuous profiling during code evolution (§6.4 of the paper).
//!
//! Runs the Redis benchmark under two SCONE releases and shows how TEEMon's
//! syscall statistics reveal the `clock_gettime` bottleneck that the later
//! commit fixes — roughly doubling throughput.
//!
//! ```text
//! cargo run --release --example code_evolution
//! ```

use teemon::{MonitorBuilder, MonitoringMode};
use teemon_analysis::Analyzer;
use teemon_apps::{run_benchmark, MemtierConfig, NetworkModel, RedisApp};
use teemon_frameworks::{FrameworkParams, SconeVersion};
use teemon_tsdb::Selector;

fn main() {
    let app = RedisApp::paper_config(32);
    let network = NetworkModel::loopback();
    let config = MemtierConfig::paper_default(64).with_samples(4_000);

    for version in [SconeVersion::Commit572bd1a5, SconeVersion::Commit09fea91] {
        // A monitored host per run, like a CI job with TEEMon attached.
        let host = MonitorBuilder::new("ci-runner").mode(MonitoringMode::Full).build();
        let params = FrameworkParams::scone(version);
        let result =
            run_benchmark(host.kernel(), params, &app, &network, &config).expect("benchmark run");
        host.scrape_tick();

        println!("== SCONE commit {} ==", version.commit_hash());
        println!("  throughput : {:>12.0} IOP/s", result.throughput_iops);
        println!("  latency    : {:>12.2} ms", result.latency_ms);
        println!("  syscalls   : {:>12.1} per 100 requests", result.rates.syscalls);

        // The syscall mix TEEMon recorded (Figure 6).
        let db = host.db();
        let mut mix: Vec<(String, f64)> = db
            .query_instant(&Selector::metric("teemon_syscalls_total"), u64::MAX)
            .into_iter()
            .filter_map(|r| {
                let syscall = r.labels.get("syscall")?.to_string();
                Some((syscall, r.points.last().map(|(_, v)| *v).unwrap_or(0.0)))
            })
            .collect();
        mix.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("  top syscalls observed:");
        for (syscall, count) in mix.iter().take(5) {
            println!("    {syscall:<16} {count:>12.0}");
        }

        // PMAN's diagnosis.
        let analyzer: &Analyzer = host.analyzer();
        match analyzer.diagnose_syscall_mix("teemon_syscalls_total", 0, u64::MAX) {
            Some(finding) => println!("  PMAN: {}", finding.explanation),
            None => println!("  PMAN: syscall mix looks healthy (I/O-bound)"),
        }
        println!();
    }
}
