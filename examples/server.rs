//! The HTTP serving edge end to end, over real loopback sockets.
//!
//! A `teemon_server::Server` fronts a time-series database with the full
//! resilience stack (load shedding, deadlines, rate limiting, panic
//! shield).  This example pushes remote-write batches through it, runs a
//! TeeQL range query over HTTP, federates `/metrics` back out, provokes
//! the rate limiter into a 429, and finishes with a graceful drain.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example server
//! ```

use teemon_server::{http_get, http_post, percent_encode, Server, ServerConfig};
use teemon_tsdb::TimeSeriesDb;

fn main() {
    // 1. Bind the serving edge on an ephemeral loopback port.  The tight
    //    rate limit is for step 5; real deployments keep the default.
    let config = ServerConfig { rate_per_sec: 2.0, burst: 20.0, ..ServerConfig::default() };
    let server = Server::start("127.0.0.1:0", config, TimeSeriesDb::new()).expect("bind loopback");
    let addr = server.addr();
    println!("serving edge up on http://{addr}");

    // 2. Push three remote-write batches in text exposition format.
    for (t, v) in [(0u64, 100.0), (1, 140.0), (2, 180.0)] {
        let doc = format!(
            "# TYPE sgx_pages_evicted_total counter\nsgx_pages_evicted_total{{node=\"n1\"}} {v} {}\n",
            t * 5_000
        );
        let resp =
            http_post(addr, "/api/v1/write", "text/plain", doc.as_bytes()).expect("push batch");
        assert_eq!(resp.status, 200, "{}", resp.body_text());
        println!("pushed batch t={t}: {}", resp.body_text());
    }

    // 3. A TeeQL range query over HTTP, Prometheus response envelope.  Each
    //    push arrived on its own connection (own `instance` label), so sum
    //    away the instance axis to see one series per node.
    let q = percent_encode("sum by (node) (sgx_pages_evicted_total)");
    let resp = http_get(addr, &format!("/api/v1/query_range?query={q}&start=0&end=10&step=5"))
        .expect("range query");
    assert_eq!(resp.status, 200, "{}", resp.body_text());
    let body = resp.body_text();
    assert!(body.contains(r#""resultType":"matrix""#), "{body}");
    // By the last step every instance's point is in the staleness window,
    // so the sum reaches 100 + 140 + 180.
    assert!(body.contains("420"), "all three pushed points summed: {body}");
    println!("\nrange query sum by (node) (sgx_pages_evicted_total):\n{body}");

    // 4. The exposition edge federates the stored series back out.
    let resp = http_get(addr, "/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    println!("\nGET /metrics:\n{}", resp.body_text());

    // 5. Hammer one endpoint until the token bucket runs dry: the limiter
    //    answers 429 with a Retry-After hint instead of queueing the work.
    let mut limited = None;
    for attempt in 0..200 {
        let resp = http_get(addr, "/healthz").expect("healthz");
        if resp.status == 429 {
            limited = Some((attempt, resp));
            break;
        }
    }
    let (attempt, resp) = limited.expect("the rate limiter engages under the hammer");
    println!(
        "\nrate limited after {attempt} rapid requests: 429, Retry-After: {}",
        resp.header("retry-after").unwrap_or("?")
    );

    // 6. Graceful drain: stop accepting, finish in-flight work, flush the
    //    WAL.  `shutdown` reports whether the drain beat its deadline.
    let drained = server.shutdown();
    println!("\ngraceful drain complete (in-flight drained: {drained})");
    assert!(drained, "drain must beat its deadline");
}
